//! The autonomic story: the framework keeps a system dependable *as the
//! network changes*. Link qualities fluctuate mid-run; monitoring picks up
//! the new reality; the analyzer waits for stability, then redeploys again.
//!
//! ```sh
//! cargo run --example fluctuating_network
//! ```

use redep::framework::{AnalyzerConfig, CentralizedFramework, RuntimeConfig};
use redep::model::{Availability, Generator, GeneratorConfig};
use redep::netsim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(77))?;
    let mut fw = CentralizedFramework::new(
        system.model.clone(),
        system.initial.clone(),
        &RuntimeConfig::default(),
        AnalyzerConfig::default(),
    )?;

    let mut redeployments = Vec::new();
    let cycle_once = |fw: &mut CentralizedFramework, phase: &str, redeps: &mut Vec<String>| {
        let report = fw
            .cycle(
                &Availability,
                Duration::from_secs_f64(5.0),
                Duration::from_secs_f64(120.0),
            )
            .expect("cycle");
        if let Some(d) = &report.decision {
            if d.accepted {
                redeps.push(format!(
                    "t={:.0}s [{phase}] {} → availability {:.4}",
                    report.time_secs, d.algorithm, d.record.availability
                ));
            }
        }
        println!(
            "[{phase}] t={:>5.0}s measured availability {:.4}",
            report.time_secs, report.measured_availability
        );
    };

    println!("— phase 1: initial conditions —");
    for _ in 0..6 {
        cycle_once(&mut fw, "initial", &mut redeployments);
    }

    println!("\n— the environment shifts: the backbone degrades, a side link improves —");
    {
        let hosts: Vec<_> = fw.runtime().hosts().to_vec();
        let sim = fw.runtime_mut().sim_mut();
        // Invert the quality order of two links.
        if let Some(l) = sim.topology_mut().link_mut(hosts[0], hosts[1]) {
            l.spec.reliability = 0.15;
        }
        if let Some(l) = sim.topology_mut().link_mut(hosts[2], hosts[3]) {
            l.spec.reliability = 0.98;
        }
    }

    println!("\n— phase 2: the framework adapts —");
    for _ in 0..8 {
        cycle_once(&mut fw, "shifted", &mut redeployments);
    }

    println!("\nredeployments effected:");
    for r in &redeployments {
        println!("  {r}");
    }
    println!(
        "\nanalyzer availability profile ({} observations):",
        fw.analyzer().history().len()
    );
    for e in fw.analyzer().history() {
        println!(
            "  t={:>5.0}s {:.4}{}",
            e.time_secs,
            e.availability,
            if e.redeployed { "  ← redeployed" } else { "" }
        );
    }
    Ok(())
}
