//! Quickstart: build a small system, score its deployment, improve it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use redep::algorithms::{AvalaAlgorithm, ExactAlgorithm, RedeploymentAlgorithm};
use redep::model::{Availability, Deployment, DeploymentModel, Latency, Objective};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the deployment architecture: two hosts over one flaky
    //    wireless link, three interacting components.
    let mut model = DeploymentModel::new();
    let laptop = model.add_host("laptop")?;
    let pda = model.add_host("pda")?;
    model.host_mut(laptop)?.set_memory(256.0);
    model.host_mut(pda)?.set_memory(64.0);
    model.set_physical_link(laptop, pda, |l| {
        l.set_reliability(0.6);
        l.set_bandwidth(500.0);
        l.set_delay(0.05);
    })?;

    let gui = model.add_component("gui")?;
    let tracker = model.add_component("tracker")?;
    let logger = model.add_component("logger")?;
    model.component_mut(gui)?.set_required_memory(32.0);
    model.component_mut(tracker)?.set_required_memory(16.0);
    model.component_mut(logger)?.set_required_memory(16.0);
    model.set_logical_link(gui, tracker, |l| {
        l.set_frequency(10.0); // chatty!
        l.set_event_size(120.0);
    })?;
    model.set_logical_link(tracker, logger, |l| {
        l.set_frequency(1.0);
        l.set_event_size(60.0);
    })?;

    // 2. Score the naive deployment: the chatty pair is split across the
    //    unreliable link.
    let mut naive = Deployment::new();
    naive.assign(gui, laptop);
    naive.assign(tracker, pda);
    naive.assign(logger, pda);
    println!("naive deployment:      {naive}");
    println!(
        "  availability = {:.3}",
        Availability.evaluate(&model, &naive)
    );
    println!(
        "  latency      = {:.3}",
        Latency::new().evaluate(&model, &naive)
    );

    // 3. Ask two algorithms for something better.
    for algo in [
        Box::new(ExactAlgorithm::new()) as Box<dyn RedeploymentAlgorithm>,
        Box::new(AvalaAlgorithm::new()),
    ] {
        let result = algo.run(&model, &Availability, model.constraints(), Some(&naive))?;
        println!(
            "{:<10} proposes {}  (availability {:.3}, {} evaluations, {:?})",
            result.algorithm, result.deployment, result.value, result.evaluations, result.wall_time
        );
    }
    Ok(())
}
