//! The paper's §5.2 decentralized configuration (Figure 3): no master host.
//! Each PDA monitors itself, models only the peers it is aware of, bids in
//! DecAp auctions, votes on the outcome, and the local effectors migrate
//! components pairwise.
//!
//! ```sh
//! cargo run --example decentralized_scenario
//! ```

use redep::framework::{DecentralizedFramework, RuntimeConfig, Scenario, ScenarioConfig};
use redep::model::{Availability, AwarenessGraph, Objective};
use redep::netsim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::build(&ScenarioConfig {
        commanders: 3,
        troops: 6,
        seed: 13,
    })?;
    println!(
        "decentralized disaster-relief scenario: {} hosts, {} components",
        scenario.model.host_count(),
        scenario.model.component_count()
    );
    let awareness = AwarenessGraph::from_connectivity(&scenario.model);
    println!(
        "awareness from connectivity: mean awareness {:.2} (1.0 = global knowledge)\n",
        awareness.mean_awareness()
    );

    let before = Availability.evaluate(&scenario.model, &scenario.initial);
    let mut fw = DecentralizedFramework::with_awareness(
        scenario.model,
        scenario.initial,
        &RuntimeConfig::default(),
        awareness,
    )?;

    for cycle in 1..=6 {
        let report = fw.cycle(
            &Availability,
            Duration::from_secs_f64(5.0),
            Duration::from_secs_f64(120.0),
        )?;
        println!(
            "cycle {cycle}: t={:>6.1}s  {} hosts reporting  availability {:.4} → proposed {:.4}  \
             votes-for {}  {}",
            report.time_secs,
            report.hosts_reporting,
            report.availability_before,
            report.availability_proposed,
            report.votes_for,
            if report.adopted {
                format!("ADOPTED ({} moves)", report.moves)
            } else {
                "kept current".to_owned()
            }
        );
    }

    let after = Availability.evaluate(fw.system().model(), fw.system().deployment());
    println!("\navailability (model): {before:.4} → {after:.4}");
    println!(
        "measured end-to-end availability: {:.4}",
        fw.runtime().measured_availability()
    );
    Ok(())
}
