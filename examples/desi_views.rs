//! DeSi's views (Figures 9 and 10): generate a hypothetical architecture,
//! run the algorithm suite, and render the tabular page, the deployment
//! graph (writes `target/desi_deployment.svg`), and the telemetry page
//! with per-algorithm convergence sparklines.
//!
//! ```sh
//! cargo run --example desi_views
//! ```

use redep::algorithms::{AvalaAlgorithm, ExactAlgorithm, GeneticAlgorithm, StochasticAlgorithm};
use redep::desi::{DeSi, TelemetryView};
use redep::model::{keys, Availability, GeneratorConfig};
use redep::telemetry::Telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // DeSi's Generator controller: fabricate an architecture from ranges.
    let mut desi = DeSi::generate(&GeneratorConfig::sized(4, 12).with_seed(42))?;

    // The Modifier controller: tune a single parameter and observe the
    // sensitivity (then keep the change).
    let h0 = desi.system().model().host_ids()[0];
    desi.modify(|m, model| m.set_host_param(model, h0, keys::HOST_MEMORY, 200.0))?;

    // The AlgorithmContainer: plug in the suite and run everything.
    desi.container_mut().register(ExactAlgorithm::new());
    desi.container_mut().register(AvalaAlgorithm::new());
    desi.container_mut().register(StochasticAlgorithm::new());
    desi.container_mut().register(GeneticAlgorithm::new());
    for (name, outcome) in desi.run_all(&Availability) {
        if let Err(e) = outcome {
            println!("note: {name} did not produce a result: {e}");
        }
    }

    // Figure 9: the table-oriented page.
    println!("{}", desi.render_table());

    // Figure 10: the graph-oriented page (ASCII overview + SVG file).
    println!("{}", desi.render_ascii());
    let svg = desi.render_svg(1.0);
    std::fs::create_dir_all("target")?;
    std::fs::write("target/desi_deployment.svg", &svg)?;
    println!("wrote target/desi_deployment.svg ({} bytes)", svg.len());

    // The telemetry page: convergence sparklines for every recorded run
    // (pass a live handle instead of `disabled()` to include a run journal).
    println!(
        "{}",
        TelemetryView::new().render(&Telemetry::disabled(), desi.results())
    );

    // Round-trip the architecture description (the xADL channel).
    let adl = desi.to_adl()?;
    println!("\nADL document: {} bytes of JSON", adl.len());
    Ok(())
}
