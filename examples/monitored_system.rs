//! A monitored Prism-MW system (Figure 8): workload components exchange
//! events across simulated hosts while event-frequency monitors and
//! reliability probes recover the system parameters — compared here against
//! the simulator's ground truth.
//!
//! ```sh
//! cargo run --example monitored_system
//! ```

use redep::framework::{RuntimeConfig, SystemRuntime};
use redep::model::{Generator, GeneratorConfig};
use redep::netsim::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = Generator::generate(&GeneratorConfig::sized(4, 10).with_seed(3))?;
    let mut runtime =
        SystemRuntime::build(&system.model, &system.initial, &RuntimeConfig::default())?;

    println!("running 60 simulated seconds of monitored workload…\n");
    runtime.run_for(Duration::from_secs_f64(60.0));

    let master = runtime.master().expect("centralized runtime");
    let deployer = runtime
        .host(master)
        .and_then(|h| h.deployer())
        .expect("master runs the deployer");

    println!("monitoring snapshots collected by the deployer:");
    for (host, snap) in deployer.snapshots() {
        println!(
            "  {host}: {} components, {} interaction estimates, {} reliability estimates (t={:.1}s)",
            snap.components.len(),
            snap.frequencies.len(),
            snap.reliabilities.len(),
            snap.taken_at_secs
        );
    }

    println!("\nmonitored link reliability vs ground truth:");
    println!(
        "  {:<12} {:>10} {:>10} {:>8}",
        "LINK", "MONITORED", "TRUTH", "ERROR"
    );
    for (host, snap) in deployer.snapshots() {
        for (peer, estimate) in &snap.reliabilities {
            if let Some(link) = runtime.sim().topology().link(*host, *peer) {
                let truth = link.spec.reliability;
                println!(
                    "  {:<12} {estimate:>10.3} {truth:>10.3} {:>8.3}",
                    format!("{host}–{peer}"),
                    (estimate - truth).abs()
                );
            }
        }
    }

    println!("\nmonitored interaction frequencies vs model parameters:");
    println!("  {:<38} {:>10} {:>8}", "PAIR", "MONITORED", "MODEL");
    let names = runtime.component_names().clone();
    for snap in deployer.snapshots().values() {
        for ((a, b), freq) in &snap.frequencies {
            // Recover the model's configured frequency for this pair.
            let ids: Vec<_> = names
                .iter()
                .filter(|(_, n)| *n == a || *n == b)
                .map(|(id, _)| *id)
                .collect();
            if ids.len() == 2 {
                let truth = system.model.frequency(ids[0], ids[1]);
                if truth > 0.0 {
                    println!("  {:<38} {freq:>10.2} {truth:>8.2}", format!("{a} ↔ {b}"));
                }
            }
        }
    }

    println!(
        "\nnetwork totals: {} | measured availability {:.4}",
        runtime.sim().stats(),
        runtime.measured_availability()
    );
    Ok(())
}
