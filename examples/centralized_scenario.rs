//! The paper's §5.1 centralized configuration, end to end (Figure 2):
//! the disaster-relief system runs on simulated PDAs; slave monitors feed
//! the master; the centralized analyzer picks an algorithm, guards latency,
//! and the master effector migrates components live.
//!
//! ```sh
//! cargo run --example centralized_scenario
//! ```

use redep::framework::{
    AnalyzerConfig, CentralizedFramework, RuntimeConfig, Scenario, ScenarioConfig,
};
use redep::model::{Availability, Latency, Objective};
use redep::netsim::Duration;
use redep::telemetry::Telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::build(&ScenarioConfig {
        commanders: 3,
        troops: 6,
        seed: 7,
    })?;
    println!(
        "disaster-relief scenario: {} hosts, {} components, {} interactions",
        scenario.model.host_count(),
        scenario.model.component_count(),
        scenario.model.logical_link_count()
    );
    let initial_availability = Availability.evaluate(&scenario.model, &scenario.initial);
    let initial_latency = Latency::new().evaluate(&scenario.model, &scenario.initial);
    println!(
        "initial deployment: availability {initial_availability:.4}, latency {initial_latency:.4}\n"
    );

    let mut fw = CentralizedFramework::new(
        scenario.model,
        scenario.initial,
        &RuntimeConfig::default(),
        AnalyzerConfig::default(),
    )?;
    fw.set_telemetry(Telemetry::default());

    for cycle in 1..=8 {
        let report = fw.cycle(
            &Availability,
            Duration::from_secs_f64(5.0),
            Duration::from_secs_f64(120.0),
        )?;
        print!(
            "cycle {cycle}: t={:>6.1}s  monitored {}/{} hosts  measured availability {:.4}",
            report.time_secs,
            report.snapshots_applied,
            fw.runtime().hosts().len(),
            report.measured_availability
        );
        match &report.decision {
            None => println!("  (waiting for full monitoring data)"),
            Some(d) if d.accepted => println!(
                "\n  → ran '{}', ACCEPTED: {} ({} moves, completed: {})",
                d.algorithm, d.reason, d.record.moves, report.redeployment_completed
            ),
            Some(d) => println!("\n  → ran '{}', rejected: {}", d.algorithm, d.reason),
        }
    }

    let model = fw.desi().system().model();
    let deployment = fw.desi().system().deployment();
    println!(
        "\nfinal deployment: availability {:.4} (model), latency {:.4}",
        Availability.evaluate(model, deployment),
        Latency::new().evaluate(model, deployment),
    );
    println!(
        "measured end-to-end availability: {:.4}",
        fw.runtime().measured_availability()
    );
    println!("\nanalyzer history:");
    for entry in fw.analyzer().history() {
        println!(
            "  t={:>6.1}s availability {:.4}{}",
            entry.time_secs,
            entry.availability,
            if entry.redeployed {
                "  [redeployed]"
            } else {
                ""
            }
        );
    }

    // The run journal: every decision above is also machine-readable.
    fw.runtime().publish_gauges();
    println!("\n{}", fw.telemetry().summary());
    std::fs::create_dir_all("target")?;
    let journal = fw.telemetry().export_jsonl();
    std::fs::write("target/centralized_journal.jsonl", &journal)?;
    println!(
        "wrote target/centralized_journal.jsonl ({} lines)",
        journal.lines().count()
    );
    Ok(())
}
