//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored value-tree `serde` by walking the raw `proc_macro::TokenStream`
//! directly — the container has no registry, so `syn`/`quote` are not
//! available. Code is generated as a string and parsed back.
//!
//! Supported shapes (exactly what this workspace derives on):
//! - named structs, with field attrs `with = "module"`, `default`,
//!   `default = "fn"`, `skip_serializing_if = "path"`
//! - `#[serde(transparent)]` newtype and single-named-field structs
//! - enums with unit / newtype / tuple / struct variants, externally tagged
//! - `#[serde(untagged)]` enums with newtype variants (tried in order)
//!
//! Generic deriving types are not supported (none exist in the workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    transparent: bool,
    untagged: bool,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    with: Option<String>,
    default: Option<DefaultAttr>,
    skip_if: Option<String>,
}

enum DefaultAttr {
    Std,
    Path(String),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Attribute items found inside `#[serde(...)]`: `(name, Some(literal))`
/// for `name = "literal"`, `(name, None)` for bare flags.
type SerdeAttrs = Vec<(String, Option<String>)>;

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let container_attrs = take_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let item_kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }

    let transparent = container_attrs.iter().any(|(k, _)| k == "transparent");
    let untagged = container_attrs.iter().any(|(k, _)| k == "untagged");

    let kind = match item_kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_top_level_fields(g.stream()))
            }
            _ => panic!("serde_derive stub: unit struct `{name}` is not supported"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive stub: malformed enum `{name}`"),
        },
        other => panic!("serde_derive stub: cannot derive on `{other}` items"),
    };

    Item {
        name,
        transparent,
        untagged,
        kind,
    }
}

/// Consumes leading `#[...]` attributes, returning the serde ones.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut out = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            panic!("serde_derive stub: `#` not followed by a bracket group");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(&inner[..], [TokenTree::Ident(id), ..] if id.to_string() == "serde") {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                out.extend(parse_serde_args(args.stream()));
            }
        }
        *i += 2;
    }
    out
}

/// Parses the comma-separated items inside `serde(...)`.
fn parse_serde_args(stream: TokenStream) -> SerdeAttrs {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: unexpected token in serde(...): {other}"),
        };
        i += 1;
        let mut value = None;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            match tokens.get(i) {
                Some(TokenTree::Literal(lit)) => {
                    let raw = lit.to_string();
                    value = Some(raw.trim_matches('"').to_owned());
                    i += 1;
                }
                other => {
                    panic!("serde_derive stub: expected string after `{key} =`, got {other:?}")
                }
            }
        }
        out.push((key, value));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    out
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive stub: expected identifier, got {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists (types are skipped — codegen relies
/// on inference through struct-literal construction).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a comma outside angle brackets.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // the comma
        }

        let mut field = Field {
            name,
            with: None,
            default: None,
            skip_if: None,
        };
        for (key, value) in attrs {
            match (key.as_str(), value) {
                ("with", Some(path)) => field.with = Some(path),
                ("default", Some(path)) => field.default = Some(DefaultAttr::Path(path)),
                ("default", None) => field.default = Some(DefaultAttr::Std),
                ("skip_serializing_if", Some(path)) => field.skip_if = Some(path),
                (other, _) => {
                    panic!("serde_derive stub: unsupported field attribute `{other}`")
                }
            }
        }
        fields.push(field);
    }
    fields
}

/// Counts comma-separated fields at angle-bracket depth zero.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_token = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

/// The serialize expression for one field value expression.
fn ser_expr(field: &Field, access: &str) -> String {
    match &field.with {
        Some(module) => format!("{module}::serialize({access})"),
        None => format!("::serde::Serialize::serialize({access})"),
    }
}

/// Insert-into-object statement for a named field, honouring `skip_serializing_if`.
fn ser_field_stmt(field: &Field, access: &str) -> String {
    let insert = format!(
        "__m.insert(::std::string::String::from(\"{}\"), {});",
        field.name,
        ser_expr(field, access)
    );
    match &field.skip_if {
        Some(path) => format!("if !{path}({access}) {{ {insert} }}"),
        None => insert,
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) if item.transparent => {
            let field = single(fields, name);
            ser_expr(field, &format!("&self.{}", field.name))
        }
        Kind::TupleStruct(1) if item.transparent => {
            "::serde::Serialize::serialize(&self.0)".to_owned()
        }
        Kind::TupleStruct(_) => {
            panic!("serde_derive stub: tuple struct `{name}` requires #[serde(transparent)] with one field")
        }
        Kind::NamedStruct(fields) => {
            let mut out = String::from("let mut __m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                out.push_str(&ser_field_stmt(f, &format!("&self.{}", f.name)));
                out.push('\n');
            }
            out.push_str("::serde::Value::Object(__m)");
            out
        }
        Kind::Enum(variants) if item.untagged => {
            let mut arms = String::new();
            for v in variants {
                match v.shape {
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v} (__x) => ::serde::Serialize::serialize(__x),\n",
                        v = v.name
                    )),
                    _ => panic!(
                        "serde_derive stub: untagged enum `{name}` supports only newtype variants"
                    ),
                }
            }
            format!("match self {{ {arms} }}")
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let content = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_owned()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __outer = ::std::collections::BTreeMap::new();\n\
                             __outer.insert(::std::string::String::from(\"{vn}\"), {content});\n\
                             ::serde::Value::Object(__outer)\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "let mut __m = ::std::collections::BTreeMap::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&ser_field_stmt(f, &f.name));
                            inner.push('\n');
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut __outer = ::std::collections::BTreeMap::new();\n\
                             __outer.insert(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(__m));\n\
                             ::serde::Value::Object(__outer)\n\
                             }},\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// The deserialize expression for a field, given an expression yielding
/// `&Value` for its serialized form.
fn de_expr(field: &Field, value: &str) -> String {
    match &field.with {
        Some(module) => format!("{module}::deserialize({value})?"),
        None => format!("::serde::Deserialize::deserialize({value})?"),
    }
}

/// `let <field> = ...;` statements plus a struct-literal body for a named
/// field list read out of the object expression `obj`.
fn de_named_fields(fields: &[Field], obj: &str, owner: &str) -> (String, String) {
    let mut lets = String::new();
    for f in fields {
        let missing = match &f.default {
            Some(DefaultAttr::Std) => "::std::default::Default::default()".to_owned(),
            Some(DefaultAttr::Path(path)) => format!("{path}()"),
            None => format!(
                "return ::std::result::Result::Err(::serde::Error::custom(\
                 \"missing field `{}` in {owner}\"))",
                f.name
            ),
        };
        lets.push_str(&format!(
            "let {f} = match {obj}.get(\"{f}\") {{\n\
             ::std::option::Option::Some(__x) => {expr},\n\
             ::std::option::Option::None => {missing},\n\
             }};\n",
            f = f.name,
            expr = de_expr(f, "__x"),
        ));
    }
    let literal = fields
        .iter()
        .map(|f| f.name.as_str())
        .collect::<Vec<_>>()
        .join(", ");
    (lets, literal)
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) if item.transparent => {
            let field = single(fields, name);
            format!(
                "::std::result::Result::Ok({name} {{ {f}: {expr} }})",
                f = field.name,
                expr = de_expr(field, "__v")
            )
        }
        Kind::TupleStruct(1) if item.transparent => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Kind::TupleStruct(_) => {
            panic!("serde_derive stub: tuple struct `{name}` requires #[serde(transparent)] with one field")
        }
        Kind::NamedStruct(fields) => {
            let (lets, literal) = de_named_fields(fields, "__obj", name);
            format!(
                "let __obj = match __v {{\n\
                 ::serde::Value::Object(__m) => __m,\n\
                 __other => return ::std::result::Result::Err(::serde::Error::expected(\"object for {name}\", __other)),\n\
                 }};\n\
                 {lets}\
                 ::std::result::Result::Ok({name} {{ {literal} }})"
            )
        }
        Kind::Enum(variants) if item.untagged => {
            let mut tries = String::new();
            for v in variants {
                match v.shape {
                    Shape::Tuple(1) => tries.push_str(&format!(
                        "{{\n\
                         let __r: ::std::result::Result<{name}, ::serde::Error> =\n\
                         (|| ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__v)?)))();\n\
                         if let ::std::result::Result::Ok(__x) = __r {{ return ::std::result::Result::Ok(__x); }}\n\
                         }}\n",
                        vn = v.name
                    )),
                    _ => panic!(
                        "serde_derive stub: untagged enum `{name}` supports only newtype variants"
                    ),
                }
            }
            format!(
                "{tries}\
                 ::std::result::Result::Err(::serde::Error::custom(\"data matched no variant of {name}\"))"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    )
                })
                .collect();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {}
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__content)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::deserialize(&__arr[{k}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __arr = __content.as_array().ok_or_else(|| ::serde::Error::expected(\"array for {name}::{vn}\", __content))?;\n\
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({elems}))\n\
                             }},\n",
                            elems = elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let (lets, literal) = de_named_fields(fields, "__inner", &format!("{name}::{vn}"));
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __inner = match __content {{\n\
                             ::serde::Value::Object(__m) => __m,\n\
                             __other => return ::std::result::Result::Err(::serde::Error::expected(\"object for {name}::{vn}\", __other)),\n\
                             }};\n\
                             {lets}\
                             ::std::result::Result::Ok({name}::{vn} {{ {literal} }})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __content) = __m.iter().next().unwrap();\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::Error::expected(\"variant of {name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn single<'a>(fields: &'a [Field], name: &str) -> &'a Field {
    match fields {
        [f] => f,
        _ => panic!(
            "serde_derive stub: #[serde(transparent)] on `{name}` requires exactly one field"
        ),
    }
}
