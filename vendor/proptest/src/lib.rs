//! Offline stand-in for `proptest`.
//!
//! Samples each strategy with a deterministic RNG seeded from the test's
//! module path and case index, so failures reproduce across runs. There is
//! no shrinking: a failing case reports its inputs (via the `prop_assert*`
//! message) and panics. The strategy surface covers what this workspace
//! uses — numeric ranges, `any::<T>()`, regex-subset string strategies,
//! tuples, `prop_map`, `collection::{vec, btree_map}`, and `option::of`.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case RNG (SplitMix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for one test case from the test's name and index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for TestRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        TestRng {
            state: u64::from_le_bytes(seed),
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip this case, draw another.
    Reject(String),
    /// A `prop_assert*` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection (used by `prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// Builds a failure (used by `prop_assert*`).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Whole-domain strategy for an integer/bool type.
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// One element of a parsed pattern: a set of candidate chars plus a
/// repetition range.
struct Piece {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

/// Parses the regex subset used in this workspace's strategies:
/// literal characters and `[...]` classes (with `a-z` ranges), each
/// optionally followed by `{n}`, `{m,n}`, `?`, `+`, or `*`.
fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut pieces = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // ']'
                set
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                vec![c]
            }
            '.' => {
                i += 1;
                ('a'..='z').chain('A'..='Z').chain('0'..='9').collect()
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '^' | '$'),
                    "unsupported regex syntax `{c}` in pattern {pattern:?}"
                );
                i += 1;
                vec![c]
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {} in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(
            !set.is_empty(),
            "empty character set in pattern {pattern:?}"
        );
        pieces.push(Piece {
            chars: set,
            min,
            max,
        });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = rng.random_range(piece.min..=piece.max);
            for _ in 0..n {
                let idx = rng.random_range(0..piece.chars.len());
                out.push(piece.chars[idx]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Size specifications accepted by collection strategies.
pub trait SizeBounds {
    /// Draws a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeBounds for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl SizeBounds for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// `proptest::collection` — vec and btree_map strategies.
pub mod collection {
    use super::{SizeBounds, Strategy, TestRng};
    use std::collections::BTreeMap;

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S, B> {
        element: S,
        size: B,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy, B: SizeBounds>(element: S, size: B) -> VecStrategy<S, B> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, B: SizeBounds> Strategy for VecStrategy<S, B> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V, B> {
        key: K,
        value: V,
        size: B,
    }

    /// Generates maps with up to `size` entries (duplicate keys collapse,
    /// as in real proptest).
    pub fn btree_map<K, V, B>(key: K, value: V, size: B) -> BTreeMapStrategy<K, V, B>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        B: SizeBounds,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V, B> Strategy for BTreeMapStrategy<K, V, B>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        B: SizeBounds,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// `proptest::option` — optional-value strategies.
pub mod option {
    use super::{Rng, Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.random_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob import test modules use.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)
/// { ... }` entry runs its body over `config.cases` sampled inputs with a
/// deterministic per-case RNG. As in upstream proptest, the `#[test]`
/// attribute is written by the caller and passed through unchanged —
/// emitting a second one here would register every test twice.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is hoisted
/// to repetition depth zero so each generated test can reference it.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __case_name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(__case_name, __case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "property `{}` failed at case #{}: {}",
                                __case_name, __case, __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let __l = &$left;
        let __r = &$right;
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = &$left;
        let __r = &$right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn collection_strategies_respect_bounds() {
        let mut rng = TestRng::for_case("coll", 0);
        for _ in 0..100 {
            let v = collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let m = collection::btree_map("[a-z]{1,4}", 0u64..9, 0..6).generate(&mut rng);
            assert!(m.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end.
        #[test]
        fn macro_end_to_end(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != 99);
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
