//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! the `parking_lot` API shape (no poisoning — `lock()` returns the guard
//! directly). Fairness and micro-contention behaviour differ from the real
//! crate, but the locking semantics this workspace relies on are identical.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that ignores poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that ignores poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
