//! Offline stand-in for `serde_json` over the vendored value-tree `serde`.
//!
//! Provides the subset this workspace calls: [`to_string`], [`to_string_pretty`],
//! [`to_vec`], [`from_str`], [`from_slice`], [`to_value`], [`from_value`],
//! and the [`json!`] macro. Objects are `BTreeMap`-backed, so output is
//! deterministic — a property the telemetry journal's byte-identical-runs
//! guarantee relies on.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize};
pub use serde::{Number, Value};

/// Error raised while printing or parsing JSON.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` into its data-model tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.serialize()
}

/// Rebuilds a `T` from a data-model tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::deserialize(value)?)
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Pretty JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::deserialize(&value)?)
}

/// Parses JSON bytes into a `T`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our printer;
                            // lone surrogates map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 inside string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::I(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

/// Builds a [`Value`] from JSON-like syntax. Object/array literals nest;
/// any other single-token expression is serialized via [`Serialize`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $value:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = ::std::collections::BTreeMap::new();
        $( __m.insert(::std::string::String::from($key), $crate::json!($value)); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        let f: f64 = from_str("3.0").unwrap();
        assert_eq!(f, 3.0);
        let n: u64 = from_str("42").unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn float_int_distinction_survives() {
        let v = parse("3.0").unwrap();
        assert_eq!(v, Value::Number(Number::F(3.0)));
        let v = parse("3").unwrap();
        assert_eq!(v, Value::Number(Number::U(3)));
        let v = parse("-3").unwrap();
        assert_eq!(v, Value::Number(Number::I(-3)));
    }

    #[test]
    fn collections_round_trip() {
        let mut m: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        m.insert("a".into(), vec![1, 2]);
        m.insert("b".into(), vec![]);
        let text = to_string(&m).unwrap();
        assert_eq!(text, r#"{"a":[1,2],"b":[]}"#);
        let back: BTreeMap<String, Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_output_is_indented() {
        let mut m: BTreeMap<String, u32> = BTreeMap::new();
        m.insert("x".into(), 1);
        let text = to_string_pretty(&m).unwrap();
        assert_eq!(text, "{\n  \"x\": 1\n}");
    }

    #[test]
    fn json_macro_builds_nested_values() {
        let payload = vec![1u8, 2];
        let v = json!({ "Raw": { "to_component": "b", "event": payload } });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"Raw":{"event":[1,2],"to_component":"b"}}"#);
        let arr = json!([1, "two", null, [true]]);
        assert_eq!(to_string(&arr).unwrap(), r#"[1,"two",null,[true]]"#);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("1 2").is_err());
        assert!(from_str::<u32>("\"not a number\"").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \u{1F600} \"q\"";
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let esc: String = from_str(r#""A\t""#).unwrap();
        assert_eq!(esc, "A\t");
    }
}
