//! Offline stand-in for `serde`, shaped for this workspace.
//!
//! The build container has no crates registry, so the workspace carries a
//! minimal serialization framework with the same *spelling* as serde — the
//! derive macros `#[derive(Serialize, Deserialize)]`, the container
//! attributes `transparent` / `untagged`, and the field attributes
//! `with`, `default`, `default = "fn"`, `skip_serializing_if` — but a much
//! simpler data model: everything serializes into a JSON-like [`Value`]
//! tree, and deserializes back out of one.
//!
//! Hand-written `with = "module"` helpers therefore implement
//! `fn serialize(&T) -> Value` and `fn deserialize(&Value) -> Result<T, Error>`
//! instead of the real serde's generic serializer/deserializer pair.

#![forbid(unsafe_code)]

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: signed, unsigned, or floating.
///
/// The three cases are kept distinct so that untagged enums can tell an
/// integer from a float after a round trip (`3` stays `I`/`U`, `3.0` stays
/// `F` — the JSON printer writes floats with a decimal point).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A signed integer.
    I(i64),
    /// An unsigned integer (used when the value doesn't fit `i64` or came
    /// from an unsigned source).
    U(u64),
    /// A floating-point number.
    F(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I(i) => write!(f, "{i}"),
            Number::U(u) => write!(f, "{u}"),
            Number::F(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        f.write_str(&s)
                    } else {
                        write!(f, "{s}.0")
                    }
                } else {
                    // JSON has no NaN/Inf; `null` keeps output well-formed.
                    f.write_str("null")
                }
            }
        }
    }
}

/// The universal data-model tree (JSON-shaped).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. `BTreeMap` keeps key order deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object's map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number widened to `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I(i)) => Some(*i as f64),
            Value::Number(Number::U(u)) => Some(*u as f64),
            Value::Number(Number::F(f)) => Some(*f),
            _ => None,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u),
            Value::Number(Number::I(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The number as `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(i)) => Some(*i),
            Value::Number(Number::U(u)) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// A short name for the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a message describing the mismatch.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Standard "wrong kind" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can turn itself into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn serialize(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data-model tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// Marker for deserializable types that own their data. With a
    /// value-tree model every [`Deserialize`](crate::Deserialize) impl
    /// already owns its data, so this is a blanket alias.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("bool", value))
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", value))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", value))?;
                <$t>::try_from(u).map_err(|_| {
                    Error::custom(format!("{u} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);
unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for Cow<'_, str> {
    fn serialize(&self) -> Value {
        Value::String(self.clone().into_owned())
    }
}

impl Deserialize for Cow<'_, str> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        String::deserialize(value).map(Cow::Owned)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

/// Renders a serialized map key into a JSON object key.
fn key_to_string(key: Value) -> String {
    match key {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

/// Rebuilds a map key from a JSON object key, bridging the string form of
/// numeric keys (`"5"` → `U(5)`) back through the key's own Deserialize.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize(&Value::String(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(f) = s.parse::<f64>() {
        if let Ok(k) = K::deserialize(&Value::Number(Number::F(f))) {
            return Ok(k);
        }
    }
    if let Ok(b) = s.parse::<bool>() {
        if let Ok(k) = K::deserialize(&Value::Bool(b)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot rebuild map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.serialize()), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize(v)?)))
            .collect()
    }
}

macro_rules! tuple_impl {
    ($(($len:literal $($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| Error::expected("array", value))?;
                if arr.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of {} elements, got {}",
                        $len,
                        arr.len()
                    )));
                }
                Ok(($($t::deserialize(&arr[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (1 A 0)
    (2 A 0, B 1)
    (3 A 0, B 1, C 2)
    (4 A 0, B 1, C 2, D 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&7u32.serialize()).unwrap(), 7);
        assert_eq!(i64::deserialize(&(-3i64).serialize()).unwrap(), -3);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(String::deserialize(&"hi".serialize()).unwrap(), "hi");
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
    }

    #[test]
    fn integers_reject_floats() {
        assert!(i64::deserialize(&Value::Number(Number::F(3.0))).is_err());
        assert!(u64::deserialize(&Value::Number(Number::F(3.0))).is_err());
        // But floats accept integers.
        assert_eq!(f64::deserialize(&Value::Number(Number::I(3))).unwrap(), 3.0);
    }

    #[test]
    fn numeric_map_keys_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(5u32, "five".to_owned());
        m.insert(9u32, "nine".to_owned());
        let v = m.serialize();
        let back: BTreeMap<u32, String> = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_and_options() {
        let t = (1u32, "a".to_owned(), 2.5f64);
        let back: (u32, String, f64) = Deserialize::deserialize(&t.serialize()).unwrap();
        assert_eq!(back, t);
        let o: Option<u32> = None;
        assert_eq!(o.serialize(), Value::Null);
        let some: Option<u32> = Deserialize::deserialize(&Value::Number(Number::U(4))).unwrap();
        assert_eq!(some, Some(4));
    }

    #[test]
    fn float_display_keeps_decimal_point() {
        assert_eq!(Number::F(3.0).to_string(), "3.0");
        assert_eq!(Number::F(0.25).to_string(), "0.25");
        assert_eq!(Number::I(3).to_string(), "3");
    }
}
