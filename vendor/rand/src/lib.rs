//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no crates registry, so the workspace vendors the
//! slice of `rand` it actually uses: [`RngCore`], [`Rng::random_bool`],
//! [`Rng::random_range`], [`SeedableRng`] (with the SplitMix64-filled
//! `seed_from_u64` construction), and the slice helpers
//! [`seq::SliceRandom::shuffle`] / [`seq::IndexedRandom::choose`].
//!
//! Streams do not match upstream `rand` bit-for-bit — determinism within
//! this workspace is the contract, not cross-crate reproducibility.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` via 128-bit widening multiply.
/// The modulo bias is below 2⁻⁶⁴ — irrelevant for simulation workloads.
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            unit_f64(self) < p
        }
    }

    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 (the same
    /// construction upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{IndexedRandom, SliceRandom};
    use super::*;

    /// A tiny deterministic generator for testing the trait plumbing.
    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u64..10);
            assert!((3..10).contains(&v));
            let f = rng.random_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = Lcg(1);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
        let hits = (0..4000).filter(|_| rng.random_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = Lcg(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
