//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher core
//! exposed as [`ChaCha8Rng`] through the vendored `rand` traits.
//!
//! The keystream is a faithful ChaCha8 (8 rounds, 64-byte blocks, 64-bit
//! block counter), but the word-extraction order is this crate's own, so
//! streams are deterministic within the workspace without matching upstream
//! `rand_chacha` bit-for-bit.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic RNG backed by the ChaCha stream cipher with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word index in `buf`; `BLOCK_WORDS` means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            // "expand 32-byte k" constants.
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial) {
            *out = out.wrapping_add(init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64000 bits, expect ~32000 set.
        assert!((31000..33000).contains(&ones), "ones {ones}");
    }
}
