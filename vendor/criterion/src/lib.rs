//! Offline stand-in for `criterion`.
//!
//! Implements the group/bencher API surface this workspace's benches use,
//! with a simple adaptive timing loop (grow the iteration count until a
//! measurement window is long enough, then report ns/iter). No statistics,
//! plots, or baseline storage — just honest wall-clock numbers on stdout.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.to_string(), 100, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the sample count (scales the measurement window).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        sample_size,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    println!("bench: {label:<40} {:>12.1} ns/iter", bencher.ns_per_iter);
}

/// Passed to the benchmark closure; owns the timing loop.
pub struct Bencher {
    ns_per_iter: f64,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, growing the iteration count until the measurement window
    /// is long enough to be meaningful.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Small warm-up so one-time setup (lazy init, cache fill) doesn't
        // land in the measured window.
        for _ in 0..3 {
            black_box(f());
        }
        // Longer windows for bigger sample sizes, capped to keep the full
        // suite fast.
        let window = Duration::from_millis((self.sample_size as u64).clamp(10, 50));
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= window || iters >= 1 << 24 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            // Aim straight for the window from the observed rate.
            let per_iter = elapsed.as_nanos().max(1) as u64 / iters.max(1);
            iters = (window.as_nanos() as u64 / per_iter.max(1)).clamp(iters * 2, iters * 100);
        }
    }
}

/// A benchmark's identifier, optionally parameterized.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a group-runner function calling each benchmark fn in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
