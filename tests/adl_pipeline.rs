//! Integration: the user-input path — an architecture description document
//! flows into DeSi, gets improved, and round-trips back out.

use redep::algorithms::{AvalaAlgorithm, ExactAlgorithm};
use redep::desi::DeSi;
use redep::model::{AdlDocument, Availability, Generator, GeneratorConfig};

#[test]
fn adl_document_drives_a_full_desi_session() {
    // The "architect" authors a system (here: generated, then serialized).
    let system = Generator::generate(&GeneratorConfig::sized(3, 9).with_seed(17)).unwrap();
    let json = AdlDocument::new(system.model.clone(), Some(system.initial.clone()))
        .to_json()
        .unwrap();

    // DeSi loads it, improves it, and exports the improved architecture.
    let mut desi = DeSi::from_adl(&json).unwrap();
    desi.container_mut().register(ExactAlgorithm::new());
    let record = desi.run_algorithm("exact", &Availability).unwrap();
    desi.adopt_deployment(record.result.deployment.clone());
    let exported = desi.to_adl().unwrap();

    // A second session sees exactly the improved system.
    let reloaded = DeSi::from_adl(&exported).unwrap();
    assert_eq!(reloaded.system().model(), &system.model);
    assert_eq!(reloaded.system().deployment(), &record.result.deployment);
}

#[test]
fn adl_preserves_constraints_and_they_bind_algorithms() {
    use redep::model::{Constraint, ConstraintChecker};
    use std::collections::BTreeSet;

    let mut system = Generator::generate(&GeneratorConfig::sized(3, 6).with_seed(2)).unwrap();
    let c0 = system.model.component_ids()[0];
    let h2 = system.model.host_ids()[2];
    system.model.constraints_mut().add(Constraint::PinnedTo {
        component: c0,
        hosts: BTreeSet::from([h2]),
    });

    let json = AdlDocument::new(system.model.clone(), Some(system.initial.clone()))
        .to_json()
        .unwrap();
    let mut desi = DeSi::from_adl(&json).unwrap();
    assert_eq!(desi.system().model().constraints().len(), 1);

    desi.container_mut().register(AvalaAlgorithm::new());
    let record = desi.run_algorithm("avala", &Availability).unwrap();
    assert_eq!(record.result.deployment.host_of(c0), Some(h2));
    desi.system()
        .model()
        .constraints()
        .check(desi.system().model(), &record.result.deployment)
        .unwrap();
}

#[test]
fn views_render_adl_loaded_systems() {
    let system = Generator::generate(&GeneratorConfig::sized(4, 10).with_seed(8)).unwrap();
    let json = AdlDocument::new(system.model, Some(system.initial))
        .to_json()
        .unwrap();
    let desi = DeSi::from_adl(&json).unwrap();
    let table = desi.render_table();
    assert!(table.contains("host-0") && table.contains("comp-9"));
    let svg = desi.render_svg(1.0);
    assert!(svg.contains("</svg>"));
}
