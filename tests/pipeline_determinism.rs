//! Regression gate for the runtime fast path: the interned-symbol router,
//! the binary wire codec, and the calendar-queue scheduler must not perturb
//! determinism. Two identical runs of a full centralized
//! monitor→analyze→effect cycle must export byte-identical journals, and
//! the journal must never leak interner state (symbol ids) — only names.

use redep::framework::{AnalyzerConfig, CentralizedFramework, RuntimeConfig};
use redep::model::{Availability, Generator, GeneratorConfig};
use redep::netsim::Duration;
use redep::telemetry::Telemetry;

/// One full centralized run: build, install telemetry, advance with
/// interleaved framework cycles, export the journal.
fn centralized_journal(seed: u64) -> String {
    let system = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(13)).unwrap();
    let runtime_config = RuntimeConfig {
        seed,
        ..RuntimeConfig::default()
    };
    let mut fw = CentralizedFramework::new(
        system.model.clone(),
        system.initial.clone(),
        &runtime_config,
        AnalyzerConfig::default(),
    )
    .unwrap();
    fw.set_telemetry(Telemetry::default());
    for _ in 0..3 {
        fw.advance(Duration::from_secs_f64(5.0));
        fw.cycle(&Availability, Duration::ZERO, Duration::from_secs_f64(20.0))
            .unwrap();
    }
    fw.runtime().telemetry().export_jsonl()
}

#[test]
fn two_identical_centralized_runs_export_byte_identical_journals() {
    let a = centralized_journal(5);
    assert!(!a.is_empty(), "the run recorded nothing");
    let b = centralized_journal(5);
    assert_eq!(a, b, "same seed + same system must replay byte-identically");
    // Different seeds genuinely change the run (the equality above is not
    // comparing two empty or degenerate journals).
    let c = centralized_journal(6);
    assert_ne!(a, c, "seed is not reaching the simulation");
}
