//! Integration: the middleware under faults — partitions, host crashes, and
//! link churn during operation and during redeployment.

use redep::framework::{RuntimeConfig, SystemRuntime};
use redep::model::{Generator, GeneratorConfig, HostId};
use redep::netsim::{Duration, MarkovLinkChurn};
use redep::prism::PrismHost;
use std::collections::BTreeMap;

fn runtime(
    seed: u64,
) -> (
    redep::model::DeploymentModel,
    redep::model::Deployment,
    SystemRuntime,
) {
    let s = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(seed)).unwrap();
    let rt = SystemRuntime::build(&s.model, &s.initial, &RuntimeConfig::default()).unwrap();
    (s.model, s.initial, rt)
}

#[test]
fn redeployment_completes_after_a_partition_heals() {
    let (_, initial, mut rt) = runtime(31);
    rt.run_for(Duration::from_secs_f64(5.0));

    // Partition the destination host away, then order a move into it.
    let names = rt.component_names().clone();
    let (component, from) = initial.iter().next().unwrap();
    let dest = rt.hosts().iter().copied().find(|h| *h != from).unwrap();
    let master = rt.master().unwrap();

    let others: Vec<HostId> = rt.hosts().iter().copied().filter(|h| *h != dest).collect();
    rt.sim_mut().partition(&[others, vec![dest]]);

    let target: BTreeMap<String, HostId> = [(names[&component].clone(), dest)].into();
    rt.host_mut(master)
        .unwrap()
        .effect_redeployment(target)
        .unwrap();
    rt.run_for(Duration::from_secs_f64(10.0));
    // Still cut off (unless the move was already local): not complete.
    if from != dest {
        assert!(!rt
            .host(master)
            .unwrap()
            .deployer()
            .unwrap()
            .status()
            .is_complete());
    }

    // Heal and let the reliable channels finish the job.
    rt.sim_mut().heal();
    rt.run_for(Duration::from_secs_f64(30.0));
    assert!(rt
        .host(master)
        .unwrap()
        .deployer()
        .unwrap()
        .status()
        .is_complete());
    assert!(rt
        .host(dest)
        .unwrap()
        .architecture()
        .contains_component(&names[&component]));
}

#[test]
fn workload_survives_link_churn() {
    let (_, _, mut rt) = runtime(32);
    rt.sim_mut()
        .add_fluctuation(Duration::from_secs_f64(1.0), MarkovLinkChurn::new(0.2, 0.5));
    rt.run_for(Duration::from_secs_f64(60.0));
    // The system keeps making progress: events flow, nothing deadlocks.
    let availability = rt.measured_availability();
    assert!(
        availability > 0.1,
        "system starved under churn: {availability}"
    );
    assert!(rt.sim().stats().delivered > 100);
}

#[test]
fn crashed_host_comes_back_and_keeps_serving() {
    let (_, initial, mut rt) = runtime(33);
    rt.run_for(Duration::from_secs_f64(5.0));
    let victim = rt
        .hosts()
        .iter()
        .copied()
        .find(|h| Some(*h) != rt.master())
        .unwrap();
    rt.sim_mut().set_host_up(victim, false);
    rt.run_for(Duration::from_secs_f64(10.0));
    rt.sim_mut().set_host_up(victim, true);
    rt.run_for(Duration::from_secs_f64(10.0));

    // The victim's components are still attached and the system still runs.
    let host: &PrismHost = rt.host(victim).unwrap();
    assert_eq!(
        host.architecture().component_count(),
        initial.components_on(victim).len()
    );
    let delivered_before = rt.sim().stats().delivered;
    rt.run_for(Duration::from_secs_f64(5.0));
    assert!(rt.sim().stats().delivered > delivered_before);
}

/// How many copies of `component` exist across the whole system. Migrations
/// must move components, never fork or lose them.
fn copies_of(rt: &SystemRuntime, component: &str) -> usize {
    rt.hosts()
        .iter()
        .filter_map(|&h| rt.host(h))
        .filter(|host| host.architecture().contains_component(component))
        .count()
}

#[test]
fn holder_crash_during_transfer_recovers() {
    let (_, initial, mut rt) = runtime(34);
    rt.run_for(Duration::from_secs_f64(5.0));

    let names = rt.component_names().clone();
    let master = rt.master().unwrap();
    // Move a component off a non-master host, then crash that holder the
    // instant the move is requested: the deploy request and any transfer in
    // flight are lost with it.
    let (component, holder) = initial
        .iter()
        .find(|(_, h)| Some(*h) != rt.master())
        .unwrap();
    let dest = rt
        .hosts()
        .iter()
        .copied()
        .find(|h| *h != holder && Some(*h) != rt.master())
        .unwrap_or(master);
    let target: BTreeMap<String, HostId> = [(names[&component].clone(), dest)].into();
    rt.host_mut(master)
        .unwrap()
        .effect_redeployment(target)
        .unwrap();
    rt.sim_mut().set_host_up(holder, false);
    rt.run_for(Duration::from_secs_f64(10.0));

    // Bring the holder back: retransmitted deploy requests reach it, the
    // transfer goes through, and the redeployment completes.
    rt.sim_mut().set_host_up(holder, true);
    rt.run_for(Duration::from_secs_f64(40.0));

    let status = rt.host(master).unwrap().deployer().unwrap().status();
    assert!(
        status.is_settled(),
        "deployer still waiting after holder restart: {status:?}"
    );
    assert_eq!(
        copies_of(&rt, &names[&component]),
        1,
        "component lost or duplicated by the crash"
    );
    assert!(
        rt.host(dest)
            .unwrap()
            .architecture()
            .contains_component(&names[&component]),
        "move did not land after holder restart: {status:?}"
    );
}

#[test]
fn overlapping_effect_calls_supersede_cleanly() {
    let (_, initial, mut rt) = runtime(35);
    rt.run_for(Duration::from_secs_f64(5.0));

    let names = rt.component_names().clone();
    let master = rt.master().unwrap();
    let (component, from) = initial.iter().next().unwrap();
    let hosts: Vec<HostId> = rt.hosts().iter().copied().filter(|h| *h != from).collect();
    let (first_dest, second_dest) = (hosts[0], hosts[1 % hosts.len()]);

    // First effect: move the component to `first_dest`. Before it can land,
    // a second effect supersedes it with a different destination — the
    // deployer must open a new epoch and ignore the first epoch's ACKs.
    let first: BTreeMap<String, HostId> = [(names[&component].clone(), first_dest)].into();
    rt.host_mut(master)
        .unwrap()
        .effect_redeployment(first)
        .unwrap();
    let first_epoch = rt.host(master).unwrap().deployer().unwrap().status().epoch;
    rt.run_for(Duration::from_millis(300));
    let second: BTreeMap<String, HostId> = [(names[&component].clone(), second_dest)].into();
    rt.host_mut(master)
        .unwrap()
        .effect_redeployment(second)
        .unwrap();
    let status = rt.host(master).unwrap().deployer().unwrap().status();
    assert!(
        status.epoch > first_epoch,
        "second effect must open a new epoch"
    );

    rt.run_for(Duration::from_secs_f64(60.0));
    let status = rt.host(master).unwrap().deployer().unwrap().status();
    assert!(
        status.is_settled(),
        "superseding epoch never settled: {status:?}"
    );
    assert_eq!(
        copies_of(&rt, &names[&component]),
        1,
        "overlapping effects forked or lost the component"
    );
    if status.is_complete() {
        // A complete second epoch means the component is at the *second*
        // destination — a stale first-epoch ACK must not have counted.
        assert!(
            rt.host(second_dest)
                .unwrap()
                .architecture()
                .contains_component(&names[&component]),
            "epoch {} reported complete but the component is not at its target",
            status.epoch
        );
    }
}

#[test]
fn partition_during_decentralized_cycle_reconciles() {
    use redep::framework::DecentralizedFramework;
    use redep::model::Availability;

    let s = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(36)).unwrap();
    let mut fw = DecentralizedFramework::new(
        s.model.clone(),
        s.initial.clone(),
        &RuntimeConfig::default(),
    )
    .unwrap();
    fw.advance(Duration::from_secs_f64(10.0));

    // Split the network down the middle, then run a full cycle across the
    // partition: adopted moves into the far side cannot land.
    let hosts = fw.runtime().hosts().to_vec();
    let half = hosts.len() / 2;
    fw.runtime_mut()
        .sim_mut()
        .partition(&[hosts[..half].to_vec(), hosts[half..].to_vec()]);
    let report = fw
        .cycle(
            &Availability,
            Duration::from_secs_f64(5.0),
            Duration::from_secs_f64(15.0),
        )
        .expect("a partitioned cycle must degrade, not error");
    assert_eq!(
        fw.system().deployment(),
        &fw.runtime().actual_deployment_by_id(),
        "cycle ended with the model diverging from the partitioned system \
         (completed={}, reconciled={})",
        report.completed,
        report.reconciled
    );

    // Heal; the next cycle runs on consistent state and stays consistent.
    fw.runtime_mut().sim_mut().heal();
    fw.advance(Duration::from_secs_f64(5.0));
    fw.cycle(
        &Availability,
        Duration::from_secs_f64(5.0),
        Duration::from_secs_f64(20.0),
    )
    .expect("post-heal cycle");
    assert_eq!(
        fw.system().deployment(),
        &fw.runtime().actual_deployment_by_id(),
        "post-heal cycle left the model diverging"
    );
}

mod migration_protocol_proptests {
    use super::*;
    use proptest::prelude::*;
    use redep::netsim::LinkSpec;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// The migration protocol on top of lossy links: drops come from the
        /// link reliability, duplicates from retransmissions whose ACKs were
        /// dropped, reordering from per-link delay spread. Whatever the
        /// weather, every requested move settles, no component is lost or
        /// forked, and a completed redeployment has every component at its
        /// target.
        #[test]
        fn migrations_survive_drop_duplicate_reorder(
            seed in 0u64..1000,
            reliability in 0.4f64..0.95,
            delay_spread in 1u32..40,
            moves in 1usize..4,
        ) {
            let s = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(seed)).unwrap();
            let cfg = RuntimeConfig { seed, ..RuntimeConfig::default() };
            let mut rt = SystemRuntime::build(&s.model, &s.initial, &cfg).unwrap();

            // Degrade every link: unreliable, and with a different delay per
            // link so multi-hop paths reorder against single-hop ones.
            let pairs: Vec<_> = rt
                .sim()
                .topology()
                .links()
                .map(|(pair, _)| pair)
                .collect();
            for (i, pair) in pairs.iter().enumerate() {
                let spec = LinkSpec {
                    reliability,
                    delay: 0.001 * f64::from(delay_spread) * (i + 1) as f64,
                    ..LinkSpec::default()
                };
                rt.sim_mut().set_link(pair.lo(), pair.hi(), spec);
            }
            rt.run_for(Duration::from_secs_f64(2.0));

            let names = rt.component_names().clone();
            let hosts = rt.hosts().to_vec();
            let master = rt.master().unwrap();
            let mut target: BTreeMap<String, HostId> = BTreeMap::new();
            for (c, h) in s.initial.iter().take(moves) {
                let dest = hosts[(h.raw() as usize + 1) % hosts.len()];
                target.insert(names[&c].clone(), dest);
            }
            rt.host_mut(master)
                .unwrap()
                .effect_redeployment(target.clone())
                .unwrap();

            // Drive until the deployer settles (bounded).
            let mut settled = false;
            for _ in 0..30 {
                rt.run_for(Duration::from_secs_f64(5.0));
                if rt.host(master).unwrap().deployer().unwrap().status().is_settled() {
                    settled = true;
                    break;
                }
            }
            let status = rt.host(master).unwrap().deployer().unwrap().status();
            prop_assert!(settled, "deployer never settled: {:?}", status);
            for name in names.values() {
                prop_assert_eq!(
                    copies_of(&rt, name), 1,
                    "component {} lost or duplicated (status {:?})", name, status
                );
            }
            if status.is_complete() {
                for (name, dest) in &target {
                    prop_assert!(
                        rt.host(*dest).unwrap().architecture().contains_component(name),
                        "complete, but {} is not at {}", name, dest
                    );
                }
            }
        }
    }
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let run = |seed| {
        let s = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(1)).unwrap();
        let cfg = RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        };
        let mut rt = SystemRuntime::build(&s.model, &s.initial, &cfg).unwrap();
        rt.run_for(Duration::from_secs_f64(20.0));
        (
            rt.sim().stats().sent,
            rt.sim().stats().delivered,
            rt.measured_availability(),
        )
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}
