//! Integration: the middleware under faults — partitions, host crashes, and
//! link churn during operation and during redeployment.

use redep::framework::{RuntimeConfig, SystemRuntime};
use redep::model::{Generator, GeneratorConfig, HostId};
use redep::netsim::{Duration, MarkovLinkChurn};
use redep::prism::PrismHost;
use std::collections::BTreeMap;

fn runtime(
    seed: u64,
) -> (
    redep::model::DeploymentModel,
    redep::model::Deployment,
    SystemRuntime,
) {
    let s = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(seed)).unwrap();
    let rt = SystemRuntime::build(&s.model, &s.initial, &RuntimeConfig::default()).unwrap();
    (s.model, s.initial, rt)
}

#[test]
fn redeployment_completes_after_a_partition_heals() {
    let (_, initial, mut rt) = runtime(31);
    rt.run_for(Duration::from_secs_f64(5.0));

    // Partition the destination host away, then order a move into it.
    let names = rt.component_names().clone();
    let (component, from) = initial.iter().next().unwrap();
    let dest = rt.hosts().iter().copied().find(|h| *h != from).unwrap();
    let master = rt.master().unwrap();

    let others: Vec<HostId> = rt.hosts().iter().copied().filter(|h| *h != dest).collect();
    rt.sim_mut().partition(&[others, vec![dest]]);

    let target: BTreeMap<String, HostId> = [(names[&component].clone(), dest)].into();
    rt.host_mut(master)
        .unwrap()
        .effect_redeployment(target)
        .unwrap();
    rt.run_for(Duration::from_secs_f64(10.0));
    // Still cut off (unless the move was already local): not complete.
    if from != dest {
        assert!(!rt
            .host(master)
            .unwrap()
            .deployer()
            .unwrap()
            .status()
            .is_complete());
    }

    // Heal and let the reliable channels finish the job.
    rt.sim_mut().heal();
    rt.run_for(Duration::from_secs_f64(30.0));
    assert!(rt
        .host(master)
        .unwrap()
        .deployer()
        .unwrap()
        .status()
        .is_complete());
    assert!(rt
        .host(dest)
        .unwrap()
        .architecture()
        .contains_component(&names[&component]));
}

#[test]
fn workload_survives_link_churn() {
    let (_, _, mut rt) = runtime(32);
    rt.sim_mut()
        .add_fluctuation(Duration::from_secs_f64(1.0), MarkovLinkChurn::new(0.2, 0.5));
    rt.run_for(Duration::from_secs_f64(60.0));
    // The system keeps making progress: events flow, nothing deadlocks.
    let availability = rt.measured_availability();
    assert!(
        availability > 0.1,
        "system starved under churn: {availability}"
    );
    assert!(rt.sim().stats().delivered > 100);
}

#[test]
fn crashed_host_comes_back_and_keeps_serving() {
    let (_, initial, mut rt) = runtime(33);
    rt.run_for(Duration::from_secs_f64(5.0));
    let victim = rt
        .hosts()
        .iter()
        .copied()
        .find(|h| Some(*h) != rt.master())
        .unwrap();
    rt.sim_mut().set_host_up(victim, false);
    rt.run_for(Duration::from_secs_f64(10.0));
    rt.sim_mut().set_host_up(victim, true);
    rt.run_for(Duration::from_secs_f64(10.0));

    // The victim's components are still attached and the system still runs.
    let host: &PrismHost = rt.host(victim).unwrap();
    assert_eq!(
        host.architecture().component_count(),
        initial.components_on(victim).len()
    );
    let delivered_before = rt.sim().stats().delivered;
    rt.run_for(Duration::from_secs_f64(5.0));
    assert!(rt.sim().stats().delivered > delivered_before);
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let run = |seed| {
        let s = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(1)).unwrap();
        let cfg = RuntimeConfig {
            seed,
            ..RuntimeConfig::default()
        };
        let mut rt = SystemRuntime::build(&s.model, &s.initial, &cfg).unwrap();
        rt.run_for(Duration::from_secs_f64(20.0));
        (
            rt.sim().stats().sent,
            rt.sim().stats().delivered,
            rt.measured_availability(),
        )
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9), run(10));
}
