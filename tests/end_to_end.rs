//! Cross-crate integration tests: the full framework pipeline on the
//! paper's scenario, exercised through the public facade.

use redep::framework::{
    AnalyzerConfig, CentralizedFramework, DecentralizedFramework, RuntimeConfig, Scenario,
    ScenarioConfig,
};
use redep::model::{Availability, Latency, Objective};
use redep::netsim::Duration;

fn scenario(seed: u64) -> Scenario {
    Scenario::build(&ScenarioConfig {
        commanders: 3,
        troops: 6,
        seed,
    })
    .unwrap()
}

#[test]
fn centralized_framework_improves_the_scenario() {
    let s = scenario(7);
    let before = Availability.evaluate(&s.model, &s.initial);
    let mut fw = CentralizedFramework::new(
        s.model.clone(),
        s.initial.clone(),
        &RuntimeConfig::default(),
        AnalyzerConfig::default(),
    )
    .unwrap();
    let mut accepted = 0;
    for _ in 0..10 {
        let report = fw
            .cycle(
                &Availability,
                Duration::from_secs_f64(5.0),
                Duration::from_secs_f64(120.0),
            )
            .unwrap();
        if report.decision.as_ref().is_some_and(|d| d.accepted) {
            assert!(report.redeployment_completed);
            accepted += 1;
        }
    }
    assert!(accepted >= 1, "the framework never redeployed");
    // The *actual running system* (not just the model) matches the adopted
    // deployment, and availability on the true model improved.
    let actual = fw.runtime().actual_deployment_by_id();
    assert_eq!(&actual, fw.desi().system().deployment());
    let after = Availability.evaluate(&s.model, &actual);
    assert!(
        after > before,
        "availability did not improve: {before:.4} -> {after:.4}"
    );
    // Constraints still hold on the effected deployment.
    use redep::model::ConstraintChecker;
    s.model.constraints().check(&s.model, &actual).unwrap();
}

#[test]
fn decentralized_framework_improves_without_a_master() {
    let s = scenario(13);
    let before = Availability.evaluate(&s.model, &s.initial);
    let mut fw = DecentralizedFramework::new(
        s.model.clone(),
        s.initial.clone(),
        &RuntimeConfig::default(),
    )
    .unwrap();
    for _ in 0..5 {
        fw.cycle(
            &Availability,
            Duration::from_secs_f64(5.0),
            Duration::from_secs_f64(120.0),
        )
        .unwrap();
    }
    let actual = fw.runtime().actual_deployment_by_id();
    let after = Availability.evaluate(&s.model, &actual);
    assert!(
        after >= before,
        "decentralized run regressed: {before:.4} -> {after:.4}"
    );
    // No host ever ran a deployer.
    for &h in fw.runtime().hosts() {
        assert!(!fw.runtime().host(h).unwrap().is_deployer());
    }
    use redep::model::ConstraintChecker;
    s.model.constraints().check(&s.model, &actual).unwrap();
}

#[test]
fn framework_survives_link_degradation_mid_run() {
    let s = scenario(3);
    let mut fw = CentralizedFramework::new(
        s.model,
        s.initial,
        &RuntimeConfig::default(),
        AnalyzerConfig::default(),
    )
    .unwrap();
    fw.cycle(
        &Availability,
        Duration::from_secs_f64(5.0),
        Duration::from_secs_f64(60.0),
    )
    .unwrap();
    // Degrade every troop link sharply mid-run.
    {
        let sim = fw.runtime_mut().sim_mut();
        let pairs: Vec<_> = sim.topology().links().map(|(p, _)| p).collect();
        for p in pairs {
            if let Some(link) = sim.topology_mut().link_mut(p.lo(), p.hi()) {
                link.spec.reliability = (link.spec.reliability * 0.5).max(0.05);
            }
        }
    }
    // The framework keeps cycling (monitors pick up the new reality).
    for _ in 0..6 {
        fw.cycle(
            &Availability,
            Duration::from_secs_f64(5.0),
            Duration::from_secs_f64(120.0),
        )
        .unwrap();
    }
    // Monitoring tracked the degradation: the model's mean link reliability
    // dropped below the scenario's optimistic initial values.
    let model = fw.desi().system().model();
    let mean_rel: f64 = model.physical_links().map(|l| l.reliability()).sum::<f64>()
        / model.physical_link_count() as f64;
    assert!(
        mean_rel < 0.75,
        "monitoring missed the degradation: mean reliability {mean_rel:.3}"
    );
}

#[test]
fn latency_objective_runs_through_the_whole_stack() {
    let s = scenario(5);
    let mut fw = CentralizedFramework::new(
        s.model,
        s.initial,
        &RuntimeConfig::default(),
        AnalyzerConfig {
            min_gain: -10.0, // availability gain not required when optimizing latency
            latency_guard: 1e9,
            latency_slack: 1e9,
            ..AnalyzerConfig::default()
        },
    )
    .unwrap();
    let before =
        Latency::new().evaluate(fw.desi().system().model(), fw.desi().system().deployment());
    for _ in 0..8 {
        fw.cycle(
            &Latency::new(),
            Duration::from_secs_f64(5.0),
            Duration::from_secs_f64(120.0),
        )
        .unwrap();
    }
    let after =
        Latency::new().evaluate(fw.desi().system().model(), fw.desi().system().deployment());
    assert!(
        after <= before * 1.05 + 1e-6,
        "latency got significantly worse: {before:.3} -> {after:.3}"
    );
}
