//! Property-based tests on the simulator's conservation and determinism
//! invariants.

use proptest::prelude::*;
use redep_model::HostId;
use redep_netsim::{Duration, LinkSpec, Message, Node, NodeCtx, SimTime, Simulator};

struct Sink;
impl Node for Sink {}

struct Burst {
    peer: HostId,
    count: u32,
}
impl Node for Burst {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for _ in 0..self.count {
            ctx.send(self.peer, vec![0u8; 8], 8);
        }
    }
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _msg: Message) {}
}

fn run(seed: u64, reliability: f64, count: u32) -> redep_netsim::NetStats {
    let (a, b) = (HostId::new(0), HostId::new(1));
    let mut sim = Simulator::new(seed);
    sim.add_host(a, Burst { peer: b, count });
    sim.add_host(b, Sink);
    sim.set_link(
        a,
        b,
        LinkSpec {
            reliability,
            ..LinkSpec::default()
        },
    );
    sim.run_to_completion();
    sim.stats().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_sent_message_is_accounted_exactly_once(
        seed in any::<u64>(),
        reliability in 0.0f64..=1.0,
        count in 1u32..300,
    ) {
        let stats = run(seed, reliability, count);
        prop_assert_eq!(stats.sent, count as u64);
        prop_assert_eq!(
            stats.delivered + stats.dropped_loss + stats.dropped_disconnected,
            stats.sent
        );
    }

    #[test]
    fn extreme_reliabilities_are_exact(seed in any::<u64>(), count in 1u32..100) {
        let perfect = run(seed, 1.0, count);
        prop_assert_eq!(perfect.delivered, count as u64);
        prop_assert_eq!(perfect.dropped_loss, 0);
        let dead = run(seed, 0.0, count);
        prop_assert_eq!(dead.delivered, 0);
        prop_assert_eq!(dead.dropped_loss, count as u64);
    }

    #[test]
    fn identical_seeds_are_bit_identical(seed in any::<u64>(), rel in 0.1f64..0.9) {
        prop_assert_eq!(run(seed, rel, 200), run(seed, rel, 200));
    }

    #[test]
    fn observed_loss_tracks_reliability(seed in 0u64..50, rel in 0.2f64..0.8) {
        let stats = run(seed, rel, 2000);
        let observed = stats.delivery_ratio();
        prop_assert!(
            (observed - rel).abs() < 0.06,
            "reliability {} observed {}",
            rel,
            observed
        );
    }

    #[test]
    fn sim_time_arithmetic_is_monotone(
        base in 0u64..1_000_000,
        add in 0u64..1_000_000,
    ) {
        let t = SimTime::from_micros(base);
        let later = t + Duration::from_micros(add);
        prop_assert!(later >= t);
        prop_assert_eq!((later - t).as_micros(), add);
    }
}
