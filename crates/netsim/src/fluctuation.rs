//! Link-quality fluctuation models.
//!
//! The paper motivates redeployment with networks whose "bandwidth
//! fluctuations and the unreliability of network links affect the system's
//! properties". A [`FluctuationModel`] is invoked periodically by the
//! simulator ([`Simulator::add_fluctuation`]) and mutates the live topology.
//!
//! [`Simulator::add_fluctuation`]: crate::Simulator::add_fluctuation

use crate::topology::NetworkTopology;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// A process that perturbs link qualities over time.
pub trait FluctuationModel: fmt::Debug + 'static {
    /// Short name for diagnostics.
    fn name(&self) -> &str;

    /// Perturbs the topology once. Called every configured interval with the
    /// simulation's RNG, so fluctuation is part of the deterministic run.
    fn apply(&mut self, topology: &mut NetworkTopology, rng: &mut ChaCha8Rng);
}

/// Reliability random walk: each application nudges every link's reliability
/// by a uniform step in `[-amplitude, +amplitude]`, clamped to
/// `[floor, ceiling]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RandomWalkFluctuation {
    /// Maximum absolute per-step change.
    pub amplitude: f64,
    /// Lowest reliability the walk may reach.
    pub floor: f64,
    /// Highest reliability the walk may reach.
    pub ceiling: f64,
}

impl RandomWalkFluctuation {
    /// Creates a walk with the given amplitude over `[0.05, 1.0]`.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative.
    pub fn new(amplitude: f64) -> Self {
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        RandomWalkFluctuation {
            amplitude,
            floor: 0.05,
            ceiling: 1.0,
        }
    }
}

impl FluctuationModel for RandomWalkFluctuation {
    fn name(&self) -> &str {
        "reliability random walk"
    }

    fn apply(&mut self, topology: &mut NetworkTopology, rng: &mut ChaCha8Rng) {
        for (_, state) in topology.links_mut() {
            let step = if self.amplitude == 0.0 {
                0.0
            } else {
                rng.random_range(-self.amplitude..=self.amplitude)
            };
            state.spec.reliability =
                (state.spec.reliability + step).clamp(self.floor, self.ceiling);
        }
    }
}

/// Two-state Markov link churn: an up link goes down with probability
/// `p_down` per application; a down link recovers with probability `p_up`.
///
/// This reproduces the intermittent disconnection the paper's
/// disconnected-operation work targets.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MarkovLinkChurn {
    /// Per-step probability that an up link fails.
    pub p_down: f64,
    /// Per-step probability that a down link recovers.
    pub p_up: f64,
}

impl MarkovLinkChurn {
    /// Creates a churn model.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(p_down: f64, p_up: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_down), "p_down must be in [0, 1]");
        assert!((0.0..=1.0).contains(&p_up), "p_up must be in [0, 1]");
        MarkovLinkChurn { p_down, p_up }
    }
}

impl FluctuationModel for MarkovLinkChurn {
    fn name(&self) -> &str {
        "markov link churn"
    }

    fn apply(&mut self, topology: &mut NetworkTopology, rng: &mut ChaCha8Rng) {
        for (_, state) in topology.links_mut() {
            if state.up {
                if rng.random_bool(self.p_down) {
                    state.up = false;
                }
            } else if rng.random_bool(self.p_up) {
                state.up = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;
    use rand::SeedableRng;
    use redep_model::HostId;

    fn topo() -> NetworkTopology {
        let mut t = NetworkTopology::new();
        t.set_link(
            HostId::new(0),
            HostId::new(1),
            LinkSpec {
                reliability: 0.5,
                ..LinkSpec::default()
            },
        );
        t
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let mut t = topo();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut walk = RandomWalkFluctuation::new(0.3);
        for _ in 0..200 {
            walk.apply(&mut t, &mut rng);
            let r = t
                .link(HostId::new(0), HostId::new(1))
                .unwrap()
                .spec
                .reliability;
            assert!((0.05..=1.0).contains(&r), "reliability escaped bounds: {r}");
        }
    }

    #[test]
    fn random_walk_actually_moves() {
        let mut t = topo();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let before = t
            .link(HostId::new(0), HostId::new(1))
            .unwrap()
            .spec
            .reliability;
        RandomWalkFluctuation::new(0.2).apply(&mut t, &mut rng);
        let after = t
            .link(HostId::new(0), HostId::new(1))
            .unwrap()
            .spec
            .reliability;
        assert_ne!(before, after);
    }

    #[test]
    fn zero_amplitude_walk_is_identity() {
        let mut t = topo();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        RandomWalkFluctuation::new(0.0).apply(&mut t, &mut rng);
        assert_eq!(
            t.link(HostId::new(0), HostId::new(1))
                .unwrap()
                .spec
                .reliability,
            0.5
        );
    }

    #[test]
    fn churn_takes_links_down_and_up() {
        let mut t = topo();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut churn = MarkovLinkChurn::new(1.0, 0.0);
        churn.apply(&mut t, &mut rng);
        assert!(!t.link(HostId::new(0), HostId::new(1)).unwrap().up);
        let mut recover = MarkovLinkChurn::new(0.0, 1.0);
        recover.apply(&mut t, &mut rng);
        assert!(t.link(HostId::new(0), HostId::new(1)).unwrap().up);
    }

    #[test]
    #[should_panic(expected = "p_down must be in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = MarkovLinkChurn::new(1.5, 0.0);
    }
}
