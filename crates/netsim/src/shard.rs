//! Sharded conservative-PDES simulation: the topology is partitioned into
//! shards, each running its own calendar queue and event loop, synchronized
//! by conservative lookahead windows.
//!
//! # Why
//!
//! The single-queue [`Simulator`](crate::Simulator) processes every event of
//! every host through one loop. At thousands of hosts the event rate is the
//! bottleneck. Classic conservative parallel discrete-event simulation
//! (Chandy–Misra–Bryant style, here in its barrier-synchronized BSP form)
//! exploits the one physical fact a network simulation guarantees: a message
//! between two hosts takes at least the link's propagation delay. If every
//! cross-shard link has delay ≥ `L`, then nothing a shard does in the time
//! window `[W, W + L)` can affect another shard before `W + L` — so all
//! shards can process the window concurrently with no rollback.
//!
//! # The protocol
//!
//! Each round has two barrier-separated phases:
//!
//! 1. **Drain + vote**: every shard moves the messages other shards mailed
//!    it into its local queue and contributes its earliest pending event
//!    time to a shared minimum `M`.
//! 2. **Window**: every shard processes its local events with
//!    `time < M + L` in `(time, key)` order. Messages to hosts on other
//!    shards are posted to the destination shard's mailbox; they carry
//!    delivery times `≥ now + L ≥ M + L`, so they can only land in later
//!    windows — which is exactly why phase 2 needs no communication.
//!
//! Windows jump to the global minimum event time instead of marching in
//! fixed `L` steps, so idle simulated time costs nothing.
//!
//! # Determinism rules
//!
//! The engine produces **identical journals for any shard count and any
//! thread count**. Everything observable is keyed off structures that do not
//! depend on the shard layout:
//!
//! * **Packed event keys.** The queue tie-break within one timestamp is a
//!   single `u64`: `kind ≪ 62 | host ≪ 36 | seq`, where `host` is the dense
//!   index of the host the event is attributed to and `seq` is a *per-host*
//!   counter. A host's callbacks run in the same relative order under any
//!   sharding, so its counter advances identically — making every key, and
//!   therefore every `(time, key)` processing order, shard-layout-invariant.
//! * **Counter-hash loss sampling.** Message loss is decided by hashing
//!   `(seed, src, dst, per-directed-link counter)` — not by a shared RNG
//!   stream, whose interleaving would depend on the layout.
//! * **Sender-owned link state.** The directed state of link `a → b`
//!   (busy-until, degrade level, up/down) lives only in `a`'s shard and is
//!   touched only by `a`'s sends and by fault actions, both of which are
//!   deterministically ordered.
//! * **Fault broadcast.** Every fault action is scheduled into *every*
//!   shard's queue under the same key, so all replicas of host/link state
//!   update at the same point of the `(time, key)` order; exactly one
//!   designated shard journals the action (and derives its span IDs from a
//!   per-action [`SpanIdGen`], so trace IDs are layout-invariant too).
//! * **Order-stamped journals.** Each shard journals into its own
//!   [`Telemetry`] handle; every record is stamped with the `(time, key)`
//!   of the event that produced it, and
//!   [`merge_export_jsonl`](redep_telemetry::merge_export_jsonl)
//!   reconstructs the single global order byte-for-byte.
//!
//! Two zero-delay-connected hosts could violate the lookahead bound, so
//! [`ShardPlan::partition`] first merges hosts connected by zero-delay links
//! into one placement unit (union-find); cross-shard links then always have
//! delay ≥ 1 µs.
//!
//! # Divergences from the single-queue engine
//!
//! The sharded engine is deterministic *against itself* (any `k`, any thread
//! count), not bit-compatible with [`Simulator`](crate::Simulator):
//!
//! * Loss sampling is counter-hash based (above), not a shared
//!   `ChaCha8Rng` stream.
//! * Link occupancy is **full-duplex per direction** (`a → b` and `b → a`
//!   have independent busy-until), where the legacy engine serializes both
//!   directions behind one half-duplex medium.
//! * Fluctuation models are not supported (they mutate global topology from
//!   a shared RNG mid-run, which has no layout-invariant formulation).
//!
//! # Example
//!
//! ```
//! use redep_netsim::{NetworkTopology, LinkSpec, Node, NodeCtx, Message};
//! use redep_netsim::{ShardPlan, ShardedSimulator, SimTime};
//! use redep_model::HostId;
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
//!         ctx.send(msg.src, msg.payload, 8);
//!     }
//! }
//! struct Pinger { peer: HostId, got: u32 }
//! impl Node for Pinger {
//!     fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
//!         ctx.send(self.peer, b"ping".to_vec(), 8);
//!     }
//!     fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _msg: Message) {
//!         self.got += 1;
//!     }
//! }
//!
//! let (a, b) = (HostId::new(0), HostId::new(1));
//! let mut topo = NetworkTopology::new();
//! topo.set_link(a, b, LinkSpec::default());
//! let mut sim = ShardedSimulator::new(42, &topo, 2);
//! sim.add_host(a, Pinger { peer: b, got: 0 });
//! sim.add_host(b, Echo);
//! sim.run_until(SimTime::from_secs_f64(1.0), 2);
//! assert_eq!(sim.stats().delivered, 2); // ping + echo
//! ```

use crate::calendar::CalendarQueue;
use crate::faultplan::{FaultAction, FaultPlan};
use crate::message::Message;
use crate::node::{Node, NodeAction, NodeCtx};
use crate::stats::NetStats;
use crate::time::{Duration, SimTime};
use crate::topology::NetworkTopology;
use redep_model::{HostId, HostPair};
use redep_telemetry::{trace::DOMAIN_NET, Counter, SpanIdGen, Telemetry, TraceCtx};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Packed-key event kinds, ordered: at one timestamp, start callbacks run
/// before fault actions, fault actions before timers, timers before
/// deliveries.
const KIND_START: u64 = 0;
const KIND_FAULT: u64 = 1;
const KIND_TIMER: u64 = 2;
const KIND_DELIVER: u64 = 3;

/// Bit layout of a packed key: `kind ≪ 62 | host ≪ 36 | seq`.
const HOST_SHIFT: u32 = 36;
const KIND_SHIFT: u32 = 62;
/// Maximum dense host index: 26 bits.
const MAX_HOSTS: usize = 1 << (KIND_SHIFT - HOST_SHIFT);
const SEQ_MASK: u64 = (1 << HOST_SHIFT) - 1;

fn pack_key(kind: u64, host: u32, seq: u64) -> u64 {
    debug_assert!(seq <= SEQ_MASK, "per-host sequence exhausted");
    (kind << KIND_SHIFT) | ((host as u64) << HOST_SHIFT) | (seq & SEQ_MASK)
}

/// Directed link identifier: `src ≪ 32 | dst` over dense indices.
fn link_key(src: u32, dst: u32) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Deterministic loss decision: a splitmix64-style hash of
/// `(seed, src, dst, counter)` mapped to `[0, 1)`. The counter advances per
/// send over the directed link, so the decision sequence is a pure function
/// of the sender's behavior — independent of shard layout, unlike a shared
/// RNG stream.
fn loss_roll(seed: u64, src: u32, dst: u32, counter: u64) -> f64 {
    let mut x = seed
        .wrapping_add(((src as u64) << 32) | dst as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(counter);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    ((x >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic host-to-shard placement plus the conservative lookahead
/// it yields.
///
/// Built once from the initial topology; the placement and the lookahead are
/// fixed for the simulation's lifetime (fault actions may drop or degrade
/// links, but never shorten a delay, so the bound stays valid).
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: usize,
    /// All hosts, ascending; a host's position is its *dense index*.
    hosts: Vec<HostId>,
    /// Dense index by raw host id (`u32::MAX` = not a host).
    dense_by_raw: Vec<u32>,
    /// Shard of each host, by dense index.
    shard_of: Vec<u32>,
    /// Minimum delay of any cross-shard link, in microseconds (`u64::MAX`
    /// when no link crosses shards).
    lookahead_us: u64,
}

impl ShardPlan {
    /// Partitions the topology's hosts over `shards` shards.
    ///
    /// Hosts connected by zero-delay links are first merged into one
    /// placement unit (union-find), guaranteeing every cross-shard link has
    /// delay ≥ 1 µs — the engine's lookahead floor. Units are then dealt
    /// round-robin over shards in order of their smallest host id, so the
    /// placement is a pure function of `(topology, shards)`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or the topology has ≥ 2²⁶ hosts.
    pub fn partition(topology: &NetworkTopology, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let hosts = topology.hosts();
        assert!(
            hosts.len() < MAX_HOSTS,
            "at most {MAX_HOSTS} hosts are supported"
        );
        let max_raw = hosts.iter().map(|h| h.raw()).max().unwrap_or(0) as usize;
        let mut dense_by_raw = vec![u32::MAX; max_raw + 1];
        for (i, h) in hosts.iter().enumerate() {
            dense_by_raw[h.raw() as usize] = i as u32;
        }
        let dense = |h: HostId| dense_by_raw[h.raw() as usize];

        // Union-find over zero-delay-connected hosts.
        let mut parent: Vec<u32> = (0..hosts.len() as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for (pair, state) in topology.links() {
            if (state.spec.delay * 1e6) as u64 == 0 {
                let (a, b) = (
                    find(&mut parent, dense(pair.lo())),
                    find(&mut parent, dense(pair.hi())),
                );
                // Smaller root wins: keeps component labels deterministic.
                if a < b {
                    parent[b as usize] = a;
                } else {
                    parent[a as usize] = b;
                }
            }
        }

        // Deal components over shards in first-member order.
        let mut shard_of = vec![u32::MAX; hosts.len()];
        let mut component_shard: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        for i in 0..hosts.len() as u32 {
            let root = find(&mut parent, i);
            let shard = *component_shard.entry(root).or_insert_with(|| {
                let s = next % shards as u32;
                next += 1;
                s
            });
            shard_of[i as usize] = shard;
        }

        let mut lookahead_us = u64::MAX;
        for (pair, state) in topology.links() {
            if shard_of[dense(pair.lo()) as usize] != shard_of[dense(pair.hi()) as usize] {
                lookahead_us = lookahead_us.min((state.spec.delay * 1e6) as u64);
            }
        }
        debug_assert!(lookahead_us >= 1, "zero-delay link crossed shards");

        ShardPlan {
            shards,
            hosts,
            dense_by_raw,
            shard_of,
            lookahead_us,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// All hosts in dense-index order.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// The conservative lookahead: minimum cross-shard link delay.
    pub fn lookahead(&self) -> Duration {
        Duration::from_micros(self.lookahead_us)
    }

    /// The shard a host is placed on.
    ///
    /// # Panics
    ///
    /// Panics if the host is not in the plan.
    pub fn shard_of(&self, host: HostId) -> usize {
        self.shard_of[self.dense(host) as usize] as usize
    }

    fn dense(&self, host: HostId) -> u32 {
        let d = self
            .dense_by_raw
            .get(host.raw() as usize)
            .copied()
            .unwrap_or(u32::MAX);
        assert!(d != u32::MAX, "host {host} is not in the shard plan");
        d
    }

    fn shard_of_dense(&self, dense: u32) -> usize {
        self.shard_of[dense as usize] as usize
    }

    fn host_at(&self, dense: u32) -> HostId {
        self.hosts[dense as usize]
    }
}

/// Directed runtime state of one link, owned by the source host's shard.
struct LinkDir {
    reliability: f64,
    bandwidth: f64,
    delay: Duration,
    up: bool,
    /// When this direction's medium frees up (full-duplex: independent of
    /// the reverse direction — a documented divergence from the legacy
    /// half-duplex engine).
    busy_until: SimTime,
    /// Per-directed-link send counter feeding [`loss_roll`].
    loss_counter: u64,
    /// `(reliability, bandwidth)` before a degrade episode, for restore.
    saved_spec: Option<(f64, f64)>,
}

/// What happens at a scheduled instant inside one shard.
enum ShardEvent {
    Start { host: HostId },
    Deliver { msg: Message },
    Timer { host: HostId, token: u64 },
    Fault { index: usize },
}

/// Per-shard cached counter handles (cloned per telemetry install).
struct ShardCounters {
    sent: Counter,
    delivered: Counter,
    dropped_loss: Counter,
    dropped_disconnected: Counter,
}

impl ShardCounters {
    fn new(telemetry: &Telemetry) -> Self {
        let m = telemetry.metrics();
        ShardCounters {
            sent: m.counter("net.sent"),
            delivered: m.counter("net.delivered"),
            dropped_loss: m.counter("net.dropped_loss"),
            dropped_disconnected: m.counter("net.dropped_disconnected"),
        }
    }
}

/// A cross-shard mail slot: `(deliver time, event key, message)` triples
/// pushed by sender shards at window end and drained by the owner at the
/// next round's barrier.
type Mailbox = Mutex<Vec<(SimTime, u64, Message)>>;

/// One shard: a self-contained event loop over the hosts it owns plus
/// replicated host-up state for everyone else.
struct ShardCore {
    idx: usize,
    seed: u64,
    plan: Arc<ShardPlan>,
    now: SimTime,
    queue: CalendarQueue<ShardEvent>,
    /// Node behaviors by dense index; `None` for hosts on other shards.
    nodes: Vec<Option<Box<dyn Node>>>,
    /// Directed link state for links whose source host this shard owns.
    links: HashMap<u64, LinkDir>,
    /// Host up/down by dense index — replicated on every shard, kept in
    /// sync by fault broadcast.
    host_up: Vec<bool>,
    /// Per-host event sequence counters (bumped only for owned hosts).
    host_seq: Vec<u64>,
    stats: NetStats,
    telemetry: Telemetry,
    counters: ShardCounters,
    /// Timers that fired while their (owned) host was down; replayed on
    /// restart.
    deferred_timers: BTreeMap<u32, Vec<u64>>,
    /// The expanded fault schedule, shared by all shards.
    faults: Arc<Vec<(SimTime, FaultAction)>>,
    /// Cross-shard messages produced this window, flushed to mailboxes at
    /// window end: `(dst_shard, deliver_at, key, msg)`.
    outbound: Vec<(usize, SimTime, u64, Message)>,
    scratch: Vec<NodeAction>,
    processed: u64,
}

impl ShardCore {
    fn new(idx: usize, seed: u64, plan: Arc<ShardPlan>, topology: &NetworkTopology) -> Self {
        let n = plan.hosts().len();
        let mut links = HashMap::new();
        for (pair, state) in topology.links() {
            let (lo, hi) = (plan.dense(pair.lo()), plan.dense(pair.hi()));
            for (src, dst) in [(lo, hi), (hi, lo)] {
                if plan.shard_of_dense(src) == idx {
                    links.insert(
                        link_key(src, dst),
                        LinkDir {
                            reliability: state.spec.reliability,
                            bandwidth: state.spec.bandwidth,
                            delay: Duration::from_secs_f64(state.spec.delay),
                            up: state.up,
                            busy_until: SimTime::ZERO,
                            loss_counter: 0,
                            saved_spec: None,
                        },
                    );
                }
            }
        }
        let host_up = plan
            .hosts()
            .iter()
            .map(|h| topology.host_is_up(*h))
            .collect();
        let telemetry = Telemetry::disabled();
        let counters = ShardCounters::new(&telemetry);
        ShardCore {
            idx,
            seed,
            plan,
            now: SimTime::ZERO,
            queue: CalendarQueue::new(),
            nodes: (0..n).map(|_| None).collect(),
            links,
            host_up,
            host_seq: vec![0; n],
            stats: NetStats::new(),
            telemetry,
            counters,
            deferred_timers: BTreeMap::new(),
            faults: Arc::new(Vec::new()),
            outbound: Vec::new(),
            scratch: Vec::new(),
            processed: 0,
        }
    }

    fn next_key(&mut self, kind: u64, dense: u32) -> u64 {
        let seq = self.host_seq[dense as usize];
        self.host_seq[dense as usize] += 1;
        pack_key(kind, dense, seq)
    }

    /// Drains this shard's mailbox into the local queue. Insertion order is
    /// irrelevant: the calendar queue pops in `(time, key)` order.
    fn drain_mailbox(&mut self, mailbox: &Mailbox) {
        let incoming = std::mem::take(&mut *mailbox.lock().expect("mailbox poisoned"));
        for (time, key, msg) in incoming {
            self.queue.push(time, key, ShardEvent::Deliver { msg });
        }
    }

    /// Earliest pending local event time, in microseconds.
    fn next_time_us(&mut self) -> u64 {
        self.queue
            .peek_time()
            .map(|t| t.as_micros())
            .unwrap_or(u64::MAX)
    }

    /// Processes every local event with `time < window_end_us`, then flushes
    /// cross-shard messages to the mailboxes.
    fn run_window(&mut self, window_end_us: u64, mailboxes: &[Mailbox]) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t.as_micros() < window_end_us => {}
                _ => break,
            }
            let (time, key, event) = self.queue.pop().expect("peeked");
            debug_assert!(time >= self.now, "time went backwards in shard");
            self.now = time;
            self.telemetry.set_order(time.as_micros(), key);
            self.processed += 1;
            self.handle(event);
        }
        for (dst_shard, time, key, msg) in self.outbound.drain(..) {
            mailboxes[dst_shard]
                .lock()
                .expect("mailbox poisoned")
                .push((time, key, msg));
        }
    }

    fn handle(&mut self, event: ShardEvent) {
        match event {
            ShardEvent::Start { host } => {
                self.run_callback(host, |node, ctx| node.on_start(ctx));
            }
            ShardEvent::Deliver { msg } => {
                let (src, dst, bytes) = (msg.src, msg.dst, msg.size);
                if self.host_up[self.plan.dense(dst) as usize] {
                    self.stats.record_delivered(src, dst, bytes);
                    self.counters.delivered.inc();
                    self.run_callback(dst, |node, ctx| node.on_message(ctx, msg));
                } else {
                    self.stats.record_disconnected(src, dst);
                    self.record_drop(src, dst, "host_down");
                }
            }
            ShardEvent::Timer { host, token } => {
                let dense = self.plan.dense(host);
                if self.host_up[dense as usize] {
                    self.run_callback(host, |node, ctx| node.on_timer(ctx, token));
                } else if self.nodes[dense as usize].is_some() {
                    // Defer instead of dropping: replayed on restart so the
                    // host's periodic loops survive the crash.
                    self.deferred_timers.entry(dense).or_default().push(token);
                }
            }
            ShardEvent::Fault { index } => self.apply_fault(index),
        }
    }

    fn run_callback(&mut self, host: HostId, f: impl FnOnce(&mut dyn Node, &mut NodeCtx<'_>)) {
        let dense = self.plan.dense(host);
        let Some(mut node) = self.nodes[dense as usize].take() else {
            return;
        };
        let mut actions = std::mem::take(&mut self.scratch);
        actions.clear();
        {
            let mut ctx = NodeCtx::new(host, self.now, &mut actions);
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[dense as usize] = Some(node);
        for action in actions.drain(..) {
            match action {
                NodeAction::Send { dst, payload, size } => {
                    self.dispatch_send(host, dst, payload, size)
                }
                NodeAction::SetTimer { delay, token } => {
                    let key = self.next_key(KIND_TIMER, dense);
                    let at = self.now + delay;
                    self.queue.push(at, key, ShardEvent::Timer { host, token });
                }
            }
        }
        self.scratch = actions;
    }

    fn record_drop(&self, src: HostId, dst: HostId, reason: &'static str) {
        let counter = match reason {
            "loss" => &self.counters.dropped_loss,
            _ => &self.counters.dropped_disconnected,
        };
        counter.inc();
        self.telemetry
            .event("net.link.drop", self.now.as_micros())
            .field("src", src.raw())
            .field("dst", dst.raw())
            .field("reason", reason)
            .emit();
    }

    /// Routes one message: sender-owned directed link state, counter-hash
    /// loss, full-duplex occupancy. Cross-shard deliveries go to `outbound`.
    fn dispatch_send(&mut self, src: HostId, dst: HostId, payload: Vec<u8>, size: u64) {
        self.stats.record_sent(src, dst);
        self.counters.sent.inc();
        let src_dense = self.plan.dense(src);
        if src == dst {
            // Loopback: immediate delivery if the host is up.
            if self.host_up[src_dense as usize] {
                let key = self.next_key(KIND_DELIVER, src_dense);
                let msg = Message {
                    src,
                    dst,
                    payload,
                    size,
                    sent_at: self.now,
                };
                self.queue.push(self.now, key, ShardEvent::Deliver { msg });
            } else {
                self.stats.record_disconnected(src, dst);
                self.record_drop(src, dst, "host_down");
            }
            return;
        }
        let dst_dense = self.plan.dense(dst);
        let ends_up = self.host_up[src_dense as usize] && self.host_up[dst_dense as usize];
        let (seed, now) = (self.seed, self.now);
        let deliver_at = match self.links.get_mut(&link_key(src_dense, dst_dense)) {
            None => None,
            Some(link) if !link.up || !ends_up => None,
            Some(link) => {
                let counter = link.loss_counter;
                link.loss_counter += 1;
                if loss_roll(seed, src_dense, dst_dense, counter)
                    >= link.reliability.clamp(0.0, 1.0)
                {
                    self.stats.record_loss(src, dst);
                    self.record_drop(src, dst, "loss");
                    return;
                }
                // The transmission starts when this direction frees up and
                // holds it for the serialization time; propagation delay
                // then overlaps the next transmission.
                let free_at = link.busy_until.max(now);
                let done = free_at + Duration::from_secs_f64(size as f64 / link.bandwidth);
                link.busy_until = done;
                Some(done + link.delay)
            }
        };
        let Some(deliver_at) = deliver_at else {
            self.stats.record_disconnected(src, dst);
            self.record_drop(src, dst, "disconnected");
            return;
        };
        let key = self.next_key(KIND_DELIVER, src_dense);
        let msg = Message {
            src,
            dst,
            payload,
            size,
            sent_at: now,
        };
        let dst_shard = self.plan.shard_of_dense(dst_dense);
        if dst_shard == self.idx {
            self.queue
                .push(deliver_at, key, ShardEvent::Deliver { msg });
        } else {
            self.outbound.push((dst_shard, deliver_at, key, msg));
        }
    }

    /// Which shard journals a given fault action. Host faults belong to the
    /// host's shard, link faults to the lower endpoint's shard, partitions
    /// to shard 0 — any fixed deterministic rule works; one shard emitting
    /// keeps the merged journal identical to a single-shard run.
    fn fault_journal_shard(&self, action: &FaultAction) -> usize {
        match action {
            FaultAction::HostDown(h) | FaultAction::HostUp(h) => self.plan.shard_of(*h),
            FaultAction::PartitionStart(_) | FaultAction::PartitionHeal(_) => 0,
            FaultAction::Degrade { a, b, .. }
            | FaultAction::Restore(a, b)
            | FaultAction::LinkDown(a, b)
            | FaultAction::LinkUp(a, b) => self.plan.shard_of(HostPair::new(*a, *b).lo()),
        }
    }

    /// Applies one fault action. Every shard runs this (replicas must stay
    /// in sync); only the designated shard journals. Span IDs come from a
    /// per-action generator, so they are identical under any layout.
    fn apply_fault(&mut self, index: usize) {
        let action = self.faults[index].1.clone();
        let tracer = SpanIdGen::new(DOMAIN_NET, index as u32 + 1);
        let root = tracer.root();
        let journal = self.fault_journal_shard(&action) == self.idx;
        if journal {
            self.telemetry
                .event("net.fault", self.now.as_micros())
                .field("action", action.label())
                .trace(root)
                .emit();
        }
        match action {
            FaultAction::HostDown(h) => self.fault_host_up(h, false, journal, &tracer, &root),
            FaultAction::HostUp(h) => self.fault_host_up(h, true, journal, &tracer, &root),
            FaultAction::PartitionStart(groups) => {
                self.apply_partition(&groups, false);
                if journal {
                    self.telemetry
                        .event("net.partition", self.now.as_micros())
                        .field("groups", groups.len())
                        .field("hosts", groups.iter().map(Vec::len).sum::<usize>())
                        .trace(tracer.child(&root))
                        .emit();
                }
            }
            FaultAction::PartitionHeal(groups) => {
                self.apply_partition(&groups, true);
                if journal {
                    self.telemetry
                        .event("net.partition.heal", self.now.as_micros())
                        .trace(tracer.child(&root))
                        .emit();
                }
            }
            FaultAction::Degrade {
                a,
                b,
                reliability_factor,
                bandwidth_factor,
            } => {
                for key in self.owned_directions(a, b) {
                    let link = self.links.get_mut(&key).expect("owned direction");
                    link.saved_spec
                        .get_or_insert((link.reliability, link.bandwidth));
                    link.reliability = (link.reliability * reliability_factor).clamp(0.0, 1.0);
                    link.bandwidth = (link.bandwidth * bandwidth_factor).max(1.0);
                }
            }
            FaultAction::Restore(a, b) => {
                for key in self.owned_directions(a, b) {
                    let link = self.links.get_mut(&key).expect("owned direction");
                    if let Some((reliability, bandwidth)) = link.saved_spec.take() {
                        link.reliability = reliability;
                        link.bandwidth = bandwidth;
                    }
                }
            }
            FaultAction::LinkDown(a, b) => self.fault_link_up(a, b, false, journal, &tracer, &root),
            FaultAction::LinkUp(a, b) => self.fault_link_up(a, b, true, journal, &tracer, &root),
        }
    }

    /// The directed keys of link `a ↔ b` whose source this shard owns.
    fn owned_directions(&self, a: HostId, b: HostId) -> Vec<u64> {
        let (da, db) = (self.plan.dense(a), self.plan.dense(b));
        let mut keys = Vec::new();
        if self.plan.shard_of_dense(da) == self.idx && self.links.contains_key(&link_key(da, db)) {
            keys.push(link_key(da, db));
        }
        if self.plan.shard_of_dense(db) == self.idx && self.links.contains_key(&link_key(db, da)) {
            keys.push(link_key(db, da));
        }
        keys
    }

    fn fault_host_up(
        &mut self,
        host: HostId,
        up: bool,
        journal: bool,
        tracer: &SpanIdGen,
        root: &TraceCtx,
    ) {
        let dense = self.plan.dense(host);
        let was_up = self.host_up[dense as usize];
        self.host_up[dense as usize] = up;
        if journal {
            self.telemetry
                .event("net.host.state", self.now.as_micros())
                .field("host", host.raw())
                .field("up", up)
                .trace(tracer.child(root))
                .emit();
        }
        if up && self.plan.shard_of_dense(dense) == self.idx {
            // Restart hook before deferred replay: same ordering contract as
            // `Simulator::set_host_up`, so sharded runs recover identically.
            if !was_up {
                self.run_callback(host, |node, ctx| node.on_restart(ctx));
            }
            if let Some(tokens) = self.deferred_timers.remove(&dense) {
                if journal {
                    self.telemetry
                        .event("net.host.timer.replay", self.now.as_micros())
                        .field("host", host.raw())
                        .field("timers", tokens.len())
                        .trace(tracer.child(root))
                        .emit();
                }
                for token in tokens {
                    let key = self.next_key(KIND_TIMER, dense);
                    let at = self.now;
                    self.queue.push(at, key, ShardEvent::Timer { host, token });
                }
            }
        }
    }

    fn fault_link_up(
        &mut self,
        a: HostId,
        b: HostId,
        up: bool,
        journal: bool,
        tracer: &SpanIdGen,
        root: &TraceCtx,
    ) {
        for key in self.owned_directions(a, b) {
            self.links.get_mut(&key).expect("owned direction").up = up;
        }
        if journal {
            self.telemetry
                .event("net.link.state", self.now.as_micros())
                .field("a", a.raw())
                .field("b", b.raw())
                .field("up", up)
                .trace(tracer.child(root))
                .emit();
        }
    }

    /// Applies a partition (or its heal) to this shard's directed links.
    fn apply_partition(&mut self, groups: &[Vec<HostId>], heal: bool) {
        let mut group_of: BTreeMap<HostId, usize> = BTreeMap::new();
        for (i, group) in groups.iter().enumerate() {
            for h in group {
                group_of.insert(*h, i);
            }
        }
        for (key, link) in self.links.iter_mut() {
            let (src, dst) = ((*key >> 32) as u32, *key as u32);
            let (sh, dh) = (self.plan.host_at(src), self.plan.host_at(dst));
            if let (Some(x), Some(y)) = (group_of.get(&sh), group_of.get(&dh)) {
                if heal {
                    // Re-raise exactly the cross-group links; same-group
                    // links keep their state (a concurrent link-down fault
                    // survives a partition heal).
                    if x != y {
                        link.up = true;
                    }
                } else {
                    link.up = x == y;
                }
            }
        }
    }
}

/// The sharded conservative-PDES simulator.
///
/// See the [module docs](self) for the synchronization protocol and the
/// determinism rules. Highlights of the contract:
///
/// * [`ShardedSimulator::run_until`] takes a thread count; **results are
///   byte-identical for every `(shard count, thread count)` combination.**
/// * Each shard journals into its own [`Telemetry`] handle (install with
///   [`ShardedSimulator::set_telemetry`]); export the merged global journal
///   with [`ShardedSimulator::export_merged_jsonl`].
/// * The topology is fixed at construction (plus fault actions); fluctuation
///   models and runtime link edits are not supported.
pub struct ShardedSimulator {
    plan: Arc<ShardPlan>,
    cores: Vec<ShardCore>,
    now: SimTime,
}

impl std::fmt::Debug for ShardedSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulator")
            .field("now", &self.now)
            .field("shards", &self.cores.len())
            .field("hosts", &self.plan.hosts().len())
            .field("lookahead", &self.plan.lookahead())
            .finish()
    }
}

impl ShardedSimulator {
    /// Builds a sharded simulator over `topology`, partitioned into
    /// `shards` shards (see [`ShardPlan::partition`]). Link state is frozen
    /// from the topology at this point.
    pub fn new(seed: u64, topology: &NetworkTopology, shards: usize) -> Self {
        Self::with_plan(
            seed,
            topology,
            Arc::new(ShardPlan::partition(topology, shards)),
        )
    }

    /// Builds a sharded simulator with an explicit placement plan.
    pub fn with_plan(seed: u64, topology: &NetworkTopology, plan: Arc<ShardPlan>) -> Self {
        let cores = (0..plan.shards())
            .map(|idx| ShardCore::new(idx, seed, plan.clone(), topology))
            .collect();
        ShardedSimulator {
            plan,
            cores,
            now: SimTime::ZERO,
        }
    }

    /// The placement plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The current simulated time (the deadline of the last
    /// [`run_until`](Self::run_until) call).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Registers a node on `host` (which must exist in the topology the
    /// simulator was built from) and schedules its [`Node::on_start`].
    ///
    /// # Panics
    ///
    /// Panics if the host is unknown or already carries a node.
    pub fn add_host(&mut self, host: HostId, node: impl Node) {
        let dense = self.plan.dense(host);
        let shard = self.plan.shard_of_dense(dense);
        let now = self.now;
        let core = &mut self.cores[shard];
        assert!(
            core.nodes[dense as usize].is_none(),
            "host {host} already has a node"
        );
        core.nodes[dense as usize] = Some(Box::new(node));
        core.queue.push(
            now,
            pack_key(KIND_START, dense, 0),
            ShardEvent::Start { host },
        );
    }

    /// Installs per-shard telemetry handles (one per shard, index-aligned).
    /// Journals are order-stamped so [`Self::export_merged_jsonl`] can
    /// reconstruct the global record order.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one handle per shard is given.
    pub fn set_telemetry(&mut self, handles: Vec<Telemetry>) {
        assert_eq!(
            handles.len(),
            self.cores.len(),
            "need exactly one telemetry handle per shard"
        );
        for (core, telemetry) in self.cores.iter_mut().zip(handles) {
            core.counters = ShardCounters::new(&telemetry);
            core.telemetry = telemetry;
        }
    }

    /// The per-shard telemetry handles, index-aligned with the shards.
    pub fn shard_telemetries(&self) -> Vec<Telemetry> {
        self.cores.iter().map(|c| c.telemetry.clone()).collect()
    }

    /// The merged journal of all shards in global `(time, key)` order —
    /// byte-identical for every shard/thread count (see
    /// [`redep_telemetry::merge_export_jsonl`]).
    pub fn export_merged_jsonl(&self) -> String {
        let handles: Vec<&Telemetry> = self.cores.iter().map(|c| &c.telemetry).collect();
        redep_telemetry::merge_export_jsonl(&handles)
    }

    /// Installs a fault plan. Every expanded action is broadcast into every
    /// shard's queue under the same key (all replicas apply it; one shard
    /// journals it) — see the [module docs](self).
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        let start = self.now;
        let expanded = Arc::new(
            plan.expand()
                .into_iter()
                .map(|(t, a)| (t.max(start), a))
                .collect::<Vec<_>>(),
        );
        for core in &mut self.cores {
            core.faults = expanded.clone();
            for (index, (time, _)) in expanded.iter().enumerate() {
                core.queue.push(
                    *time,
                    pack_key(KIND_FAULT, 0, index as u64),
                    ShardEvent::Fault { index },
                );
            }
        }
    }

    /// Ground-truth statistics, merged across shards. Exact: every message
    /// is accounted in exactly one shard (its sender's).
    pub fn stats(&self) -> NetStats {
        let mut total = NetStats::new();
        for core in &self.cores {
            total.merge(&core.stats);
        }
        total
    }

    /// Borrows the node on `host`, downcast to its concrete type.
    pub fn node_ref<T: Node>(&self, host: HostId) -> Option<&T> {
        let dense = self.plan.dense(host);
        self.cores[self.plan.shard_of_dense(dense)].nodes[dense as usize]
            .as_deref()
            .and_then(|n| (n as &dyn Any).downcast_ref::<T>())
    }

    /// Mutably borrows the node on `host`, downcast to its concrete type.
    pub fn node_mut<T: Node>(&mut self, host: HostId) -> Option<&mut T> {
        let dense = self.plan.dense(host);
        self.cores[self.plan.shard_of_dense(dense)].nodes[dense as usize]
            .as_deref_mut()
            .and_then(|n| (n as &mut dyn Any).downcast_mut::<T>())
    }

    /// Runs the simulation up to and including `deadline`, using up to
    /// `threads` OS threads (clamped to the shard count; `1` runs the exact
    /// same window schedule sequentially). Returns the number of events
    /// processed.
    ///
    /// The result — journals, statistics, node state — is byte-identical
    /// for every thread count, and for every shard count of the same
    /// topology and seed.
    pub fn run_until(&mut self, deadline: SimTime, threads: usize) -> u64 {
        let shards = self.cores.len();
        let deadline_us = deadline.as_micros();
        let lookahead_us = self.plan.lookahead_us;
        let before: u64 = self.cores.iter().map(|c| c.processed).sum();
        let mailboxes: Vec<Mailbox> = (0..shards).map(|_| Mutex::new(Vec::new())).collect();
        let threads = threads.clamp(1, shards);
        if threads == 1 {
            // Sequential fallback: the identical round/window schedule
            // without barriers.
            loop {
                let mut min_us = u64::MAX;
                for core in &mut self.cores {
                    core.drain_mailbox(&mailboxes[core.idx]);
                    min_us = min_us.min(core.next_time_us());
                }
                if min_us > deadline_us {
                    break;
                }
                let window_end = window_end_us(min_us, lookahead_us, deadline_us);
                for core in &mut self.cores {
                    core.run_window(window_end, &mailboxes);
                }
            }
        } else {
            let chunk_size = shards.div_ceil(threads);
            let chunks: Vec<&mut [ShardCore]> = self.cores.chunks_mut(chunk_size).collect();
            let barrier = Barrier::new(chunks.len());
            // Ping-pong minimum slots: round `r` votes into slot `r % 2` and
            // pre-resets slot `(r + 1) % 2`, which nobody reads until the
            // next round — two barriers per round instead of three.
            let min_slots = [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)];
            std::thread::scope(|scope| {
                for chunk in chunks {
                    let (barrier, min_slots, mailboxes) = (&barrier, &min_slots, &mailboxes);
                    scope.spawn(move || {
                        let mut round = 0usize;
                        loop {
                            // Phase 1: all sends of the previous window are
                            // in the mailboxes once everyone arrives.
                            barrier.wait();
                            let mut local_min = u64::MAX;
                            for core in chunk.iter_mut() {
                                core.drain_mailbox(&mailboxes[core.idx]);
                                local_min = local_min.min(core.next_time_us());
                            }
                            min_slots[(round + 1) % 2].store(u64::MAX, Ordering::Relaxed);
                            min_slots[round % 2].fetch_min(local_min, Ordering::AcqRel);
                            // Phase 2: the global minimum is complete.
                            barrier.wait();
                            let min_us = min_slots[round % 2].load(Ordering::Acquire);
                            if min_us > deadline_us {
                                break;
                            }
                            let window_end = window_end_us(min_us, lookahead_us, deadline_us);
                            for core in chunk.iter_mut() {
                                core.run_window(window_end, mailboxes);
                            }
                            round += 1;
                        }
                    });
                }
            });
        }
        for core in &mut self.cores {
            core.now = core.now.max(deadline);
        }
        self.now = self.now.max(deadline);
        self.cores.iter().map(|c| c.processed).sum::<u64>() - before
    }
}

/// Exclusive end of the window starting at `min_us`: one lookahead ahead,
/// but never past the deadline (events *at* the deadline still run).
fn window_end_us(min_us: u64, lookahead_us: u64, deadline_us: u64) -> u64 {
    min_us
        .saturating_add(lookahead_us)
        .min(deadline_us.saturating_add(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;
    use proptest::prelude::*;

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }

    /// Counts everything it receives.
    struct Sink {
        received: Vec<Message>,
    }
    impl Node for Sink {
        fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, msg: Message) {
            self.received.push(msg);
        }
    }
    fn sink() -> Sink {
        Sink {
            received: Vec::new(),
        }
    }

    /// Sends `count` messages of `size` bytes to `peer` on start.
    struct Burst {
        peer: HostId,
        count: u32,
        size: u64,
    }
    impl Node for Burst {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            for i in 0..self.count {
                ctx.send(self.peer, vec![i as u8], self.size);
            }
        }
    }

    /// Periodically pings every peer in turn.
    struct Gossip {
        peers: Vec<HostId>,
        at: usize,
        got: u32,
    }
    impl Node for Gossip {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(Duration::from_millis(10), 0);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
            if !self.peers.is_empty() {
                let peer = self.peers[self.at % self.peers.len()];
                self.at += 1;
                ctx.send(peer, vec![1, 2, 3], 64);
            }
            ctx.set_timer(Duration::from_millis(10), 0);
        }
        fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _msg: Message) {
            self.got += 1;
        }
    }

    /// A ring topology of `n` hosts with the given delay.
    fn ring(n: u32, delay: f64) -> NetworkTopology {
        let mut topo = NetworkTopology::new();
        for i in 0..n {
            topo.set_link(
                h(i),
                h((i + 1) % n),
                LinkSpec {
                    reliability: 1.0,
                    bandwidth: 1e6,
                    delay,
                },
            );
        }
        topo
    }

    fn gossip_sim(topo: &NetworkTopology, shards: usize, seed: u64) -> ShardedSimulator {
        let mut sim = ShardedSimulator::new(seed, topo, shards);
        let hosts = sim.plan().hosts().to_vec();
        for host in &hosts {
            let peers: Vec<HostId> = hosts.iter().copied().filter(|p| p != host).collect();
            sim.add_host(
                *host,
                Gossip {
                    peers,
                    at: host.raw() as usize,
                    got: 0,
                },
            );
        }
        sim.set_telemetry((0..shards).map(|_| Telemetry::default()).collect());
        sim
    }

    #[test]
    fn plan_partition_is_deterministic_and_balanced() {
        let topo = ring(8, 0.001);
        let plan = ShardPlan::partition(&topo, 4);
        assert_eq!(plan.shards(), 4);
        let mut per_shard = [0usize; 4];
        for host in plan.hosts() {
            per_shard[plan.shard_of(*host)] += 1;
        }
        assert_eq!(per_shard, [2, 2, 2, 2]);
        assert_eq!(plan.lookahead(), Duration::from_millis(1));
        let again = ShardPlan::partition(&topo, 4);
        for host in plan.hosts() {
            assert_eq!(plan.shard_of(*host), again.shard_of(*host));
        }
    }

    #[test]
    fn zero_delay_links_never_cross_shards() {
        let mut topo = NetworkTopology::new();
        // 0–1 with zero delay must co-locate; 1–2 has delay.
        topo.set_link(
            h(0),
            h(1),
            LinkSpec {
                delay: 0.0,
                ..LinkSpec::default()
            },
        );
        topo.set_link(
            h(1),
            h(2),
            LinkSpec {
                delay: 0.002,
                ..LinkSpec::default()
            },
        );
        let plan = ShardPlan::partition(&topo, 2);
        assert_eq!(plan.shard_of(h(0)), plan.shard_of(h(1)));
        assert_eq!(plan.lookahead(), Duration::from_millis(2));
    }

    #[test]
    fn perfect_link_delivers_across_shards() {
        let mut topo = NetworkTopology::new();
        topo.set_link(h(0), h(1), LinkSpec::default());
        let mut sim = ShardedSimulator::new(1, &topo, 2);
        assert_ne!(sim.plan().shard_of(h(0)), sim.plan().shard_of(h(1)));
        sim.add_host(
            h(0),
            Burst {
                peer: h(1),
                count: 10,
                size: 100,
            },
        );
        sim.add_host(h(1), sink());
        sim.run_until(SimTime::from_secs_f64(1.0), 2);
        assert_eq!(sim.stats().delivered, 10);
        assert_eq!(sim.node_ref::<Sink>(h(1)).unwrap().received.len(), 10);
    }

    #[test]
    fn unreliable_link_drops_roughly_proportionally() {
        let mut topo = NetworkTopology::new();
        topo.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 0.7,
                ..LinkSpec::default()
            },
        );
        let mut sim = ShardedSimulator::new(7, &topo, 2);
        sim.add_host(
            h(0),
            Burst {
                peer: h(1),
                count: 1000,
                size: 10,
            },
        );
        sim.add_host(h(1), sink());
        sim.run_until(SimTime::from_secs_f64(10.0), 2);
        let stats = sim.stats();
        let ratio = stats.link(h(0), h(1)).delivery_ratio();
        assert!((ratio - 0.7).abs() < 0.05, "observed ratio {ratio}");
        assert_eq!(stats.sent, 1000);
        assert_eq!(stats.delivered + stats.dropped_loss, 1000);
    }

    #[test]
    fn journals_identical_across_shard_counts() {
        let topo = ring(9, 0.001);
        let reference = {
            let mut sim = gossip_sim(&topo, 1, 11);
            sim.run_until(SimTime::from_secs_f64(2.0), 1);
            sim.export_merged_jsonl()
        };
        assert!(!reference.is_empty());
        for shards in [2, 3, 4, 8] {
            let mut sim = gossip_sim(&topo, shards, 11);
            sim.run_until(SimTime::from_secs_f64(2.0), shards);
            assert_eq!(
                sim.export_merged_jsonl(),
                reference,
                "journal diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn journals_identical_across_thread_counts() {
        let topo = ring(8, 0.001);
        let mut exports = Vec::new();
        for threads in [1, 2, 4, 8] {
            let mut sim = gossip_sim(&topo, 4, 5);
            sim.run_until(SimTime::from_secs_f64(2.0), threads);
            exports.push((threads, sim.export_merged_jsonl(), sim.stats()));
        }
        for (threads, export, stats) in &exports[1..] {
            assert_eq!(
                export, &exports[0].1,
                "journal diverged at {threads} threads"
            );
            assert_eq!(stats, &exports[0].2, "stats diverged at {threads} threads");
        }
    }

    #[test]
    fn double_run_is_byte_identical() {
        let topo = ring(6, 0.0015);
        let run = || {
            let mut sim = gossip_sim(&topo, 3, 9);
            sim.run_until(SimTime::from_secs_f64(1.5), 3);
            sim.export_merged_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_plan_applies_identically_across_shard_counts() {
        let topo = ring(8, 0.001);
        let plan = FaultPlan::new()
            .episode(0.3, 0.4, FaultKind::HostCrash { host: h(2) })
            .episode(
                0.5,
                0.5,
                FaultKind::Partition {
                    groups: vec![vec![h(0), h(1), h(2), h(3)], vec![h(4), h(5), h(6), h(7)]],
                },
            )
            .episode(
                0.2,
                1.0,
                FaultKind::LinkDegrade {
                    a: h(4),
                    b: h(5),
                    reliability_factor: 0.5,
                    bandwidth_factor: 0.25,
                },
            )
            .episode(
                0.1,
                1.2,
                FaultKind::LinkFlap {
                    a: h(6),
                    b: h(7),
                    period_secs: 0.2,
                },
            );
        let run = |shards: usize| {
            let mut sim = gossip_sim(&topo, shards, 3);
            sim.install_fault_plan(&plan);
            sim.run_until(SimTime::from_secs_f64(2.0), shards);
            (sim.export_merged_jsonl(), sim.stats())
        };
        let (reference_journal, reference_stats) = run(1);
        assert!(reference_journal.contains("net.fault"));
        assert!(reference_journal.contains("net.host.state"));
        assert!(reference_journal.contains("net.partition"));
        for shards in [2, 4, 8] {
            let (journal, stats) = run(shards);
            assert_eq!(journal, reference_journal, "diverged at {shards} shards");
            assert_eq!(stats, reference_stats, "stats diverged at {shards} shards");
        }
    }

    #[test]
    fn crashed_host_resumes_periodic_timers_on_restart() {
        let topo = ring(2, 0.001);
        let mut sim = gossip_sim(&topo, 2, 1);
        sim.install_fault_plan(&FaultPlan::new().episode(
            0.5,
            0.5,
            FaultKind::HostCrash { host: h(0) },
        ));
        sim.run_until(SimTime::from_secs_f64(2.0), 2);
        // Host 0 pings every 10 ms while up (~150 sends over 1.5 up-seconds)
        // and its peer answers nothing — but host 1 pings host 0 too, so
        // both accumulate receipts. The check: host 0's periodic loop
        // survived the crash (it kept sending after restart).
        let stats = sim.stats();
        assert!(
            stats.link(h(0), h(1)).sent > 120,
            "periodic loop died after crash: {:?}",
            stats.link(h(0), h(1))
        );
        // And the down window really dropped deliveries toward host 0.
        assert!(stats.dropped_disconnected > 0);
    }

    #[test]
    fn sequential_and_threaded_match_with_faults() {
        let topo = ring(6, 0.001);
        let plan = FaultPlan::new().episode(
            0.2,
            0.6,
            FaultKind::Partition {
                groups: vec![vec![h(0), h(1), h(2)], vec![h(3), h(4), h(5)]],
            },
        );
        let run = |threads: usize| {
            let mut sim = gossip_sim(&topo, 3, 2);
            sim.install_fault_plan(&plan);
            sim.run_until(SimTime::from_secs_f64(1.5), threads);
            (sim.export_merged_jsonl(), sim.stats())
        };
        assert_eq!(run(1), run(3));
    }

    #[test]
    fn merged_counters_match_ground_truth() {
        let topo = ring(4, 0.001);
        let mut sim = gossip_sim(&topo, 2, 1);
        sim.run_until(SimTime::from_secs_f64(1.0), 2);
        let stats = sim.stats();
        let sent: u64 = sim
            .shard_telemetries()
            .iter()
            .map(|t| t.metrics().counter("net.sent").get())
            .sum();
        let delivered: u64 = sim
            .shard_telemetries()
            .iter()
            .map(|t| t.metrics().counter("net.delivered").get())
            .sum();
        assert_eq!(sent, stats.sent);
        assert_eq!(delivered, stats.delivered);
        assert!(stats.delivered > 0);
    }

    #[test]
    fn run_until_can_be_resumed() {
        let topo = ring(4, 0.001);
        let mut split = gossip_sim(&topo, 2, 4);
        split.run_until(SimTime::from_secs_f64(0.7), 2);
        split.run_until(SimTime::from_secs_f64(1.4), 2);
        let mut whole = gossip_sim(&topo, 2, 4);
        whole.run_until(SimTime::from_secs_f64(1.4), 2);
        assert_eq!(split.export_merged_jsonl(), whole.export_merged_jsonl());
        assert_eq!(split.stats(), whole.stats());
    }

    use crate::faultplan::FaultKind;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The tentpole gate: an arbitrary topology partitioned into
        /// k ∈ 1..=8 shards produces journals byte-identical to the
        /// single-shard run — including under an active fault plan whose
        /// crash and partition cross shard boundaries.
        #[test]
        fn arbitrary_topologies_shard_transparently(
            hosts in 3u32..10,
            extra_links in proptest::collection::vec((0u32..10, 0u32..10, 1u32..5), 0..12),
            seed in 0u64..1000,
            shards in 2usize..=8,
            crash_host in 0u32..10,
        ) {
            // A connected ring plus arbitrary chords with 1–4 ms delays.
            let mut topo = ring(hosts, 0.001);
            for (a, b, delay_ms) in extra_links {
                let (a, b) = (a % hosts, b % hosts);
                if a != b {
                    topo.set_link(h(a), h(b), LinkSpec {
                        reliability: 0.85,
                        bandwidth: 5e5,
                        delay: delay_ms as f64 / 1000.0,
                    });
                }
            }
            let plan = FaultPlan::new()
                .episode(0.2, 0.4, FaultKind::HostCrash { host: h(crash_host % hosts) })
                .episode(0.3, 0.5, FaultKind::Partition {
                    groups: vec![
                        (0..hosts / 2).map(h).collect(),
                        (hosts / 2..hosts).map(h).collect(),
                    ],
                });
            let run = |k: usize| {
                let mut sim = gossip_sim(&topo, k, seed);
                sim.install_fault_plan(&plan);
                sim.run_until(SimTime::from_secs_f64(1.0), k.min(2));
                (sim.export_merged_jsonl(), sim.stats())
            };
            let (reference_journal, reference_stats) = run(1);
            let (journal, stats) = run(shards);
            prop_assert_eq!(journal, reference_journal);
            prop_assert_eq!(stats, reference_stats);
        }
    }
}
