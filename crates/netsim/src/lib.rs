//! # redep-netsim
//!
//! A deterministic discrete-event network simulator — the substrate under the
//! Prism-MW middleware reproduction.
//!
//! The DSN'04 paper ran Prism-MW on real PDAs and laptops over fluctuating
//! wireless links. This crate substitutes that testbed with a simulator that
//! reproduces exactly the network phenomena the framework reacts to:
//!
//! * per-link **reliability** (messages are lost with probability
//!   `1 − reliability`),
//! * per-link **bandwidth** and **delay** (delivery at
//!   `now + delay + size / bandwidth`),
//! * **fluctuation** of link quality over time ([`fluctuation`]),
//! * **disconnection**: links and hosts going down and coming back
//!   ([`Simulator::set_link_up`], [`Simulator::set_host_up`],
//!   [`Simulator::partition`]),
//! * deterministic, serde-loadable **fault plans** — timed schedules of
//!   crashes, partitions, degradations and flaps ([`faultplan`],
//!   [`Simulator::install_fault_plan`]),
//! * ground-truth **statistics** per link ([`NetStats`]) against which
//!   monitoring accuracy can be judged.
//!
//! Everything is driven by a single seeded RNG and an ordered event queue, so
//! a simulation is a pure function of (topology, node behavior, seed).
//!
//! # Example
//!
//! ```
//! use redep_netsim::{Simulator, Node, NodeCtx, Message, SimTime, LinkSpec};
//! use redep_model::HostId;
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
//!         ctx.send(msg.src, msg.payload, 8);
//!     }
//! }
//!
//! struct Pinger { peer: HostId, got: u32 }
//! impl Node for Pinger {
//!     fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
//!         ctx.send(self.peer, b"ping".to_vec(), 8);
//!     }
//!     fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _msg: Message) {
//!         self.got += 1;
//!     }
//! }
//!
//! let a = HostId::new(0);
//! let b = HostId::new(1);
//! let mut sim = Simulator::new(42);
//! sim.add_host(a, Pinger { peer: b, got: 0 });
//! sim.add_host(b, Echo);
//! sim.set_link(a, b, LinkSpec { reliability: 1.0, ..LinkSpec::default() });
//! sim.run_until(SimTime::from_secs_f64(10.0));
//! assert_eq!(sim.stats().delivered, 2); // ping + echo
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod faultplan;
pub mod fluctuation;
pub mod message;
pub mod node;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;

pub use calendar::CalendarQueue;
pub use faultplan::{FaultEpisode, FaultKind, FaultPlan};
pub use fluctuation::{FluctuationModel, MarkovLinkChurn, RandomWalkFluctuation};
pub use message::Message;
pub use node::{Node, NodeCtx};
pub use shard::{ShardPlan, ShardedSimulator};
pub use sim::Simulator;
pub use stats::{LinkStats, NetStats};
pub use time::{Duration, SimTime};
pub use topology::{LinkSpec, NetworkTopology};
