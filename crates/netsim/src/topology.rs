//! The simulated network's runtime state: link qualities and up/down status.

use redep_model::{DeploymentModel, HostId, HostPair};
use std::collections::{BTreeMap, BTreeSet};

/// Quality parameters of one simulated link.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkSpec {
    /// Probability that a message survives the link, in `[0, 1]`.
    pub reliability: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Propagation delay in seconds.
    pub delay: f64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            reliability: 1.0,
            bandwidth: 1e6,
            delay: 0.001,
        }
    }
}

impl LinkSpec {
    /// Validates the specification.
    ///
    /// # Panics
    ///
    /// Panics if reliability is outside `[0, 1]`, bandwidth is not positive,
    /// or delay is negative.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.reliability),
            "reliability must be in [0, 1], got {}",
            self.reliability
        );
        assert!(
            self.bandwidth > 0.0,
            "bandwidth must be positive, got {}",
            self.bandwidth
        );
        assert!(
            self.delay >= 0.0,
            "delay must be non-negative, got {}",
            self.delay
        );
    }
}

/// Runtime state of one link: its quality plus whether it is currently up.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LinkState {
    /// Current quality.
    pub spec: LinkSpec,
    /// Whether the link is up (down links drop everything).
    pub up: bool,
}

/// The simulated network: hosts, links and their live state.
///
/// The topology can be edited while a simulation runs — that is how
/// fluctuation models and fault injection work.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct NetworkTopology {
    hosts: BTreeSet<HostId>,
    host_up: BTreeMap<HostId, bool>,
    links: BTreeMap<HostPair, LinkState>,
}

impl NetworkTopology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        NetworkTopology::default()
    }

    /// Builds a topology mirroring a deployment model's hosts and physical
    /// links (reliability, bandwidth, delay are copied; everything starts up).
    pub fn from_model(model: &DeploymentModel) -> Self {
        let mut t = NetworkTopology::new();
        for h in model.host_ids() {
            t.add_host(h);
        }
        for link in model.physical_links() {
            let ends = link.ends();
            t.set_link(
                ends.lo(),
                ends.hi(),
                LinkSpec {
                    reliability: link.reliability(),
                    bandwidth: if link.bandwidth().is_finite() {
                        link.bandwidth()
                    } else {
                        1e12
                    },
                    delay: link.delay(),
                },
            );
        }
        t
    }

    /// Registers a host (idempotent); hosts start up.
    pub fn add_host(&mut self, h: HostId) {
        self.hosts.insert(h);
        self.host_up.entry(h).or_insert(true);
    }

    /// Returns `true` if the host is registered.
    pub fn contains_host(&self, h: HostId) -> bool {
        self.hosts.contains(&h)
    }

    /// All registered hosts in id order.
    pub fn hosts(&self) -> Vec<HostId> {
        self.hosts.iter().copied().collect()
    }

    /// Creates or replaces a link.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or `a == b`.
    pub fn set_link(&mut self, a: HostId, b: HostId, spec: LinkSpec) {
        spec.validate();
        self.add_host(a);
        self.add_host(b);
        self.links
            .insert(HostPair::new(a, b), LinkState { spec, up: true });
    }

    /// Removes a link entirely.
    pub fn remove_link(&mut self, a: HostId, b: HostId) -> Option<LinkState> {
        self.links.remove(&HostPair::new(a, b))
    }

    /// Returns the live state of a link.
    pub fn link(&self, a: HostId, b: HostId) -> Option<&LinkState> {
        if a == b {
            return None;
        }
        self.links.get(&HostPair::new(a, b))
    }

    /// Mutable access to a link's state.
    pub fn link_mut(&mut self, a: HostId, b: HostId) -> Option<&mut LinkState> {
        if a == b {
            return None;
        }
        self.links.get_mut(&HostPair::new(a, b))
    }

    /// Iterates over `(endpoints, state)` in endpoint order.
    pub fn links(&self) -> impl Iterator<Item = (HostPair, &LinkState)> {
        self.links.iter().map(|(p, s)| (*p, s))
    }

    /// Mutable iteration over link states (for fluctuation models).
    pub fn links_mut(&mut self) -> impl Iterator<Item = (HostPair, &mut LinkState)> {
        self.links.iter_mut().map(|(p, s)| (*p, s))
    }

    /// Marks a link up or down.
    pub fn set_link_up(&mut self, a: HostId, b: HostId, up: bool) {
        if let Some(state) = self.link_mut(a, b) {
            state.up = up;
        }
    }

    /// Marks a host up or down.
    pub fn set_host_up(&mut self, h: HostId, up: bool) {
        self.add_host(h);
        self.host_up.insert(h, up);
    }

    /// Whether a host is currently up.
    pub fn host_is_up(&self, h: HostId) -> bool {
        *self.host_up.get(&h).unwrap_or(&false)
    }

    /// Whether `a` can currently reach `b` in one hop: both hosts up, link
    /// present and up. (Self-communication is always possible on an up host.)
    pub fn reachable(&self, a: HostId, b: HostId) -> bool {
        if !self.host_is_up(a) || !self.host_is_up(b) {
            return false;
        }
        if a == b {
            return true;
        }
        self.link(a, b).is_some_and(|l| l.up)
    }

    /// Takes every link whose endpoints fall into different groups down
    /// (links within a group come back up). Hosts not named stay untouched.
    pub fn partition(&mut self, groups: &[Vec<HostId>]) {
        let mut group_of: BTreeMap<HostId, usize> = BTreeMap::new();
        for (i, g) in groups.iter().enumerate() {
            for h in g {
                group_of.insert(*h, i);
            }
        }
        for (pair, state) in self.links.iter_mut() {
            if let (Some(x), Some(y)) = (group_of.get(&pair.lo()), group_of.get(&pair.hi())) {
                state.up = x == y
            }
        }
    }

    /// Brings every link back up (heals all partitions).
    pub fn heal(&mut self) {
        for state in self.links.values_mut() {
            state.up = true;
        }
    }

    /// Re-raises exactly the links that cross group boundaries of the given
    /// grouping — the inverse of [`NetworkTopology::partition`]. Links whose
    /// endpoints fall in the same group, or that the grouping never named,
    /// keep their current state (so a concurrent link-down fault survives a
    /// partition heal).
    pub fn heal_between(&mut self, groups: &[Vec<HostId>]) {
        let mut group_of: BTreeMap<HostId, usize> = BTreeMap::new();
        for (i, g) in groups.iter().enumerate() {
            for h in g {
                group_of.insert(*h, i);
            }
        }
        for (pair, state) in self.links.iter_mut() {
            if let (Some(x), Some(y)) = (group_of.get(&pair.lo()), group_of.get(&pair.hi())) {
                if x != y {
                    state.up = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }

    #[test]
    fn set_link_registers_hosts() {
        let mut t = NetworkTopology::new();
        t.set_link(h(0), h(1), LinkSpec::default());
        assert!(t.contains_host(h(0)));
        assert!(t.contains_host(h(1)));
        assert!(t.host_is_up(h(0)));
    }

    #[test]
    fn reachability_requires_hosts_and_link_up() {
        let mut t = NetworkTopology::new();
        t.set_link(h(0), h(1), LinkSpec::default());
        assert!(t.reachable(h(0), h(1)));
        t.set_link_up(h(0), h(1), false);
        assert!(!t.reachable(h(0), h(1)));
        t.set_link_up(h(0), h(1), true);
        t.set_host_up(h(1), false);
        assert!(!t.reachable(h(0), h(1)));
    }

    #[test]
    fn self_reachability_tracks_host_status() {
        let mut t = NetworkTopology::new();
        t.add_host(h(0));
        assert!(t.reachable(h(0), h(0)));
        t.set_host_up(h(0), false);
        assert!(!t.reachable(h(0), h(0)));
    }

    #[test]
    fn unknown_hosts_are_unreachable() {
        let t = NetworkTopology::new();
        assert!(!t.reachable(h(0), h(1)));
    }

    #[test]
    fn partition_cuts_cross_group_links_only() {
        let mut t = NetworkTopology::new();
        t.set_link(h(0), h(1), LinkSpec::default());
        t.set_link(h(1), h(2), LinkSpec::default());
        t.set_link(h(0), h(2), LinkSpec::default());
        t.partition(&[vec![h(0), h(1)], vec![h(2)]]);
        assert!(t.reachable(h(0), h(1)));
        assert!(!t.reachable(h(1), h(2)));
        assert!(!t.reachable(h(0), h(2)));
        t.heal();
        assert!(t.reachable(h(0), h(2)));
    }

    #[test]
    fn from_model_copies_link_parameters() {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        let b = m.add_host("b").unwrap();
        m.set_physical_link(a, b, |l| {
            l.set_reliability(0.5);
            l.set_bandwidth(500.0);
            l.set_delay(0.25);
        })
        .unwrap();
        let t = NetworkTopology::from_model(&m);
        let link = t.link(a, b).unwrap();
        assert_eq!(link.spec.reliability, 0.5);
        assert_eq!(link.spec.bandwidth, 500.0);
        assert_eq!(link.spec.delay, 0.25);
        assert!(link.up);
    }

    #[test]
    fn from_model_caps_infinite_bandwidth() {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        let b = m.add_host("b").unwrap();
        m.set_physical_link(a, b, |_| {}).unwrap();
        let t = NetworkTopology::from_model(&m);
        assert!(t.link(a, b).unwrap().spec.bandwidth.is_finite());
    }

    #[test]
    #[should_panic(expected = "reliability must be in [0, 1]")]
    fn invalid_spec_panics() {
        let mut t = NetworkTopology::new();
        t.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 2.0,
                ..LinkSpec::default()
            },
        );
    }
}
