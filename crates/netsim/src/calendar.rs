//! A calendar-queue event scheduler: a bucketed time-wheel with a heap
//! overflow for far-future entries.
//!
//! The simulator's pending-event set was a single global `BinaryHeap`, making
//! every schedule/pop O(log n) in the *total* number of pending events —
//! dominated at scale by the swarm of near-future timers (RTO ticks, pings,
//! workload periods). A calendar queue exploits the fact that simulation
//! time only moves forward: the near future is divided into fixed-width
//! buckets held in a circular wheel, so scheduling is O(1) (push onto the
//! target bucket) and popping is O(1) amortized (drain the current bucket
//! through a small heap that only ever holds one bucket's worth of entries).
//! Entries beyond the wheel's horizon — fault-plan episodes, long monitor
//! windows — go to an overflow heap and migrate into the wheel as the cursor
//! reaches them.
//!
//! Ordering is **identical** to the `BinaryHeap` it replaces: entries pop in
//! `(time, seq)` order, so same-timestamp entries retain FIFO
//! (insertion-order) semantics and deterministic journals are preserved
//! byte-for-byte. The equivalence proptest at the bottom of this module
//! pins that down.
//!
//! Default geometry: `2^11 = 2048` slots of `2^12 µs ≈ 4.1 ms` each, a
//! horizon of ~8.4 simulated seconds — wide enough that RTO (200 ms), ping
//! (250 ms), monitor-window (5 s) and workload timers all land in the wheel,
//! while multi-minute fault episodes ride the overflow heap.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default bucket width: `2^12` = 4096 simulated microseconds.
const DEFAULT_SHIFT: u32 = 12;
/// Default wheel size (must be a power of two): 2048 slots.
const DEFAULT_SLOTS: usize = 1 << 11;

/// One scheduled entry. Ordered by `(time, seq)` reversed for max-heaps.
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A monotonic priority queue over `(SimTime, seq)` keys.
///
/// `push` accepts any time (including times at or before the last pop —
/// "now" events land in the current bucket), and `pop` returns entries in
/// exact `(time, seq)` order.
pub struct CalendarQueue<T> {
    /// Entries of buckets at or before the cursor, plus anything popped
    /// early out of the wheel. Always globally minimal (see `ensure_front`).
    current: BinaryHeap<Entry<T>>,
    /// The wheel: `slots[b & mask]` holds entries of absolute bucket `b`,
    /// for buckets in `(cursor, cursor + slots)`.
    wheel: Vec<Vec<Entry<T>>>,
    /// Entries in buckets at or beyond `cursor + slots`.
    overflow: BinaryHeap<Entry<T>>,
    /// Absolute bucket index the wheel has been drained through.
    cursor: u64,
    /// Entries currently stored in wheel slots.
    wheel_count: usize,
    /// Total entries across current/wheel/overflow.
    len: usize,
    /// log2 of the bucket width in microseconds.
    shift: u32,
    /// `slots.len() - 1`; the wheel size is a power of two.
    mask: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates a queue with the default geometry (4096 µs × 2048 slots).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_SHIFT, DEFAULT_SLOTS)
    }

    /// Creates a queue with `2^shift` µs buckets and `slots` wheel slots.
    ///
    /// # Panics
    ///
    /// Panics unless `slots` is a power of two.
    pub fn with_geometry(shift: u32, slots: usize) -> Self {
        assert!(slots.is_power_of_two(), "wheel size must be a power of two");
        CalendarQueue {
            current: BinaryHeap::new(),
            wheel: (0..slots).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            wheel_count: 0,
            len: 0,
            shift,
            mask: slots as u64 - 1,
        }
    }

    /// Total pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket(&self, time: SimTime) -> u64 {
        time.as_micros() >> self.shift
    }

    /// Schedules an item. `seq` must be unique per queue and increase with
    /// insertion order (the simulator's event sequence number), which is
    /// what gives same-timestamp entries FIFO pop order.
    pub fn push(&mut self, time: SimTime, seq: u64, item: T) {
        let entry = Entry { time, seq, item };
        let b = self.bucket(time);
        if b <= self.cursor {
            self.current.push(entry);
        } else if b < self.cursor + self.wheel.len() as u64 {
            self.wheel[(b & self.mask) as usize].push(entry);
            self.wheel_count += 1;
        } else {
            self.overflow.push(entry);
        }
        self.len += 1;
    }

    /// Moves entries into `current` until it holds the globally minimal
    /// entry. Invariant on return (when non-empty): every entry in the
    /// wheel or overflow lives in a bucket strictly beyond `cursor`, hence
    /// has a time strictly greater than everything in `current`.
    fn ensure_front(&mut self) {
        while self.current.is_empty() && self.len > 0 {
            if self.wheel_count == 0 {
                // Nothing in the wheel: jump the cursor straight to the
                // earliest overflow bucket instead of stepping slot by slot.
                let next = self
                    .overflow
                    .peek()
                    .map(|e| self.bucket(e.time))
                    .expect("len > 0 with empty wheel and current");
                self.cursor = next.max(self.cursor + 1);
            } else {
                self.cursor += 1;
            }
            // Drain the slot of the new cursor bucket. At most one pending
            // bucket maps to this slot: a colliding bucket `cursor + k*slots`
            // could only have been filled while the cursor was already past
            // `cursor` — impossible, the cursor only moves forward.
            let slot = &mut self.wheel[(self.cursor & self.mask) as usize];
            self.wheel_count -= slot.len();
            self.current.extend(slot.drain(..));
            // Pull overflow entries whose bucket has come into (or behind)
            // the cursor — after a jump the earliest overflow bucket is
            // exactly the cursor.
            while let Some(e) = self.overflow.peek() {
                if self.bucket(e.time) <= self.cursor {
                    let e = self.overflow.pop().expect("peeked");
                    self.current.push(e);
                } else {
                    break;
                }
            }
        }
    }

    /// Removes and returns the earliest entry in `(time, seq)` order.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.ensure_front();
        let entry = self.current.pop()?;
        self.len -= 1;
        Some((entry.time, entry.seq, entry.item))
    }

    /// The timestamp of the earliest entry without removing it. Takes
    /// `&mut self` because peeking may rotate wheel buckets into the
    /// current heap.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.ensure_front();
        self.current.peek().map(|e| e.time)
    }

    /// Drops every pending entry, resetting the queue (the cursor and its
    /// geometry are kept).
    pub fn clear(&mut self) {
        self.current.clear();
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.overflow.clear();
        self.wheel_count = 0;
        self.len = 0;
    }

    /// Iterates over all pending items in no particular order (diagnostics;
    /// O(n)).
    pub fn iter_unordered(&self) -> impl Iterator<Item = &T> {
        self.current
            .iter()
            .map(|e| &e.item)
            .chain(self.wheel.iter().flatten().map(|e| &e.item))
            .chain(self.overflow.iter().map(|e| &e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference model: the plain BinaryHeap the wheel replaced.
    struct HeapModel {
        heap: BinaryHeap<Entry<u32>>,
    }

    impl HeapModel {
        fn new() -> Self {
            HeapModel {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, time: SimTime, seq: u64, item: u32) {
            self.heap.push(Entry { time, seq, item });
        }
        fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
            self.heap.pop().map(|e| (e.time, e.seq, e.item))
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_micros(50), 1, "b");
        q.push(SimTime::from_micros(10), 2, "c");
        q.push(SimTime::from_micros(10), 0, "a");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 0, "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 2, "c")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(50), 1, "b")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn same_timestamp_entries_pop_fifo() {
        // The satellite regression: equal times must preserve insertion
        // (seq) order exactly like the heap did — across bucket boundaries
        // and the overflow.
        for geometry in [(12, 2048usize), (2, 4)] {
            let mut q = CalendarQueue::with_geometry(geometry.0, geometry.1);
            let t = SimTime::from_micros(123_456);
            for seq in 0..100u64 {
                q.push(t, seq, seq as u32);
            }
            for seq in 0..100u64 {
                assert_eq!(q.pop(), Some((t, seq, seq as u32)));
            }
        }
    }

    #[test]
    fn same_timestamp_fifo_survives_the_wheel_overflow_boundary() {
        // Regression pin: entries with one timestamp can be *split* between
        // the overflow heap (pushed while the bucket was beyond the wheel
        // horizon) and a wheel slot (pushed after the cursor advanced far
        // enough to bring the bucket into range), and even the current heap
        // (pushed after the cursor passed the bucket). Pops must still come
        // out in pure seq (insertion) order across all three stores.
        let mut q = CalendarQueue::with_geometry(2, 4); // 4 µs × 4 slots
        let t = SimTime::from_micros(20); // bucket 5
        q.push(t, 0, 0); // cursor 0, horizon bucket 4 → overflow
        q.push(t, 1, 1); // overflow
        q.push(SimTime::from_micros(6), 2, 99); // bucket 1 → wheel
        q.push(SimTime::from_micros(10), 3, 98); // bucket 2 → wheel
        assert_eq!(q.pop(), Some((SimTime::from_micros(6), 2, 99)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 3, 98)));
        // Cursor is now at bucket 2; bucket 5 is inside the wheel window.
        q.push(t, 4, 2); // wheel slot — same timestamp as the overflow pair
        q.push(t, 5, 3); // wheel slot
        assert_eq!(q.pop(), Some((t, 0, 0)), "overflow entry must pop first");
        // Cursor has passed bucket 5: a fresh same-timestamp push lands in
        // the current heap, the third storage location.
        q.push(t, 6, 4);
        assert_eq!(q.pop(), Some((t, 1, 1)));
        assert_eq!(q.pop(), Some((t, 4, 2)));
        assert_eq!(q.pop(), Some((t, 5, 3)));
        assert_eq!(q.pop(), Some((t, 6, 4)));
        assert!(q.is_empty());
    }

    #[test]
    fn same_timestamp_fifo_survives_cursor_jumps() {
        // Regression pin: when the wheel is empty, ensure_front jumps the
        // cursor straight to the earliest overflow bucket and migrates the
        // whole bucket at once — a same-timestamp burst must come back in
        // insertion order after the jump.
        let mut q = CalendarQueue::with_geometry(2, 4);
        let t = SimTime::from_micros(1_000_000);
        for seq in 0..10u64 {
            q.push(t, seq, seq as u32);
        }
        for seq in 0..10u64 {
            assert_eq!(q.pop(), Some((t, seq, seq as u32)));
        }
    }

    #[test]
    fn far_future_entries_ride_the_overflow() {
        let mut q = CalendarQueue::with_geometry(2, 4); // 4 µs × 4 slots
        q.push(SimTime::from_micros(1_000_000), 0, 1); // deep overflow
        q.push(SimTime::from_micros(3), 1, 2); // wheel
        q.push(SimTime::from_micros(10_000), 2, 3); // overflow
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), 1, 2)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(10_000), 2, 3)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(1_000_000), 0, 1)));
    }

    #[test]
    fn push_at_or_before_popped_time_still_delivers() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_micros(100_000), 0, 1);
        assert_eq!(q.pop(), Some((SimTime::from_micros(100_000), 0, 1)));
        // "Now" events: scheduled at a time whose bucket the cursor passed.
        q.push(SimTime::from_micros(100_000), 1, 2);
        q.push(SimTime::from_micros(50), 2, 3);
        assert_eq!(q.pop(), Some((SimTime::from_micros(50), 2, 3)));
        assert_eq!(q.pop(), Some((SimTime::from_micros(100_000), 1, 2)));
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = CalendarQueue::with_geometry(2, 4);
        q.push(SimTime::from_micros(1), 0, 1);
        q.push(SimTime::from_micros(1_000_000), 1, 2);
        q.pop();
        q.push(SimTime::from_micros(2), 2, 3);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.iter_unordered().count(), 0);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(70_000), 0, 1);
        q.push(SimTime::from_micros(30_000), 1, 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(30_000)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(70_000)));
    }

    /// Interleaved push/pop schedules against the heap, exercising both the
    /// production geometry and a tiny wheel that forces constant overflow
    /// traffic and cursor jumps.
    fn equivalence_case(ops: &[(bool, u64)], shift: u32, slots: usize) {
        let mut wheel = CalendarQueue::with_geometry(shift, slots);
        let mut heap = HeapModel::new();
        let mut seq = 0u64;
        let mut floor = 0u64; // monotonic clock: pushes never go below this
        for &(is_pop, raw_time) in ops {
            if is_pop {
                let got = wheel.pop();
                let want = heap.pop();
                assert_eq!(
                    got, want,
                    "wheel and heap diverged (shift={shift}, slots={slots})"
                );
                if let Some((t, _, _)) = got {
                    floor = t.as_micros();
                }
            } else {
                let time = SimTime::from_micros(floor + raw_time);
                wheel.push(time, seq, seq as u32);
                heap.push(time, seq, seq as u32);
                seq += 1;
            }
        }
        // Drain both completely.
        loop {
            let got = wheel.pop();
            let want = heap.pop();
            assert_eq!(got, want, "divergence in final drain");
            if got.is_none() {
                break;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The wheel pops the exact `(time, seq, item)` sequence of the
        /// reference heap under arbitrary interleaved schedules, including
        /// same-timestamp bursts, bucket-boundary times, and far-future
        /// entries.
        #[test]
        fn ordering_matches_binary_heap(
            raw_ops in proptest::collection::vec((any::<bool>(), 0u64..3_000), 1..200)
        ) {
            // Spread raw offsets over three delay classes: same-bucket
            // churn, neighboring buckets, and far-future overflow entries.
            let ops: Vec<(bool, u64)> = raw_ops
                .iter()
                .map(|&(is_pop, raw)| {
                    let delay = match raw % 3 {
                        0 => raw / 3 % 16,
                        1 => 4_000 + (raw * 37) % 6_000,
                        _ => 1_000_000 + raw * 79_000,
                    };
                    (is_pop, delay)
                })
                .collect();
            equivalence_case(&ops, DEFAULT_SHIFT, DEFAULT_SLOTS);
            equivalence_case(&ops, 2, 4); // tiny wheel: overflow + jumps
        }
    }
}
