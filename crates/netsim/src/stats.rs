//! Ground-truth network statistics.
//!
//! The simulator records what *actually* happened on every link. Monitors in
//! the middleware layer estimate these quantities from what they observe;
//! experiment E11 compares the two.

use redep_model::{HostId, HostPair};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Counters for one link (or the loopback of one host).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Messages handed to the link.
    pub sent: u64,
    /// Messages delivered to the destination node.
    pub delivered: u64,
    /// Messages lost to link unreliability.
    pub dropped_loss: u64,
    /// Messages dropped because the link or an endpoint was down or missing.
    pub dropped_disconnected: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
}

impl LinkStats {
    /// Fraction of sent messages that were delivered (`1.0` when nothing was
    /// sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

impl fmt::Display for LinkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent {} delivered {} (ratio {:.3})",
            self.sent,
            self.delivered,
            self.delivery_ratio()
        )
    }
}

/// Renders `per_link` as an array of `[pair, stats]` entries: [`HostPair`]
/// serializes as an object, so it cannot be a JSON map key directly.
mod per_link_map {
    use super::{HostPair, LinkStats};
    use serde::{Deserialize, Error, Serialize, Value};
    use std::collections::BTreeMap;

    /// Serializes the map as an array of `[pair, stats]` pairs.
    pub fn serialize(map: &BTreeMap<HostPair, LinkStats>) -> Value {
        Value::Array(map.iter().map(|entry| entry.serialize()).collect())
    }

    /// Rebuilds the map from an array of `[pair, stats]` pairs.
    pub fn deserialize(value: &Value) -> Result<BTreeMap<HostPair, LinkStats>, Error> {
        let pairs = Vec::<(HostPair, LinkStats)>::deserialize(value)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Aggregate and per-link statistics for a whole simulation.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct NetStats {
    /// Total messages handed to the network.
    pub sent: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Messages lost to link unreliability.
    pub dropped_loss: u64,
    /// Messages dropped for lack of an up path (link/host down or absent).
    pub dropped_disconnected: u64,
    /// Total bytes delivered.
    pub bytes_delivered: u64,
    #[serde(with = "per_link_map")]
    per_link: BTreeMap<HostPair, LinkStats>,
}

impl NetStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Statistics for the link between `a` and `b` (zeroes if untouched).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; loopback traffic is not accounted per-link.
    pub fn link(&self, a: HostId, b: HostId) -> LinkStats {
        self.per_link
            .get(&HostPair::new(a, b))
            .copied()
            .unwrap_or_default()
    }

    /// Iterates over per-link statistics in endpoint order.
    pub fn links(&self) -> impl Iterator<Item = (HostPair, &LinkStats)> {
        self.per_link.iter().map(|(p, s)| (*p, s))
    }

    /// Overall delivery ratio (`1.0` when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    fn entry(&mut self, src: HostId, dst: HostId) -> Option<&mut LinkStats> {
        if src == dst {
            None
        } else {
            Some(self.per_link.entry(HostPair::new(src, dst)).or_default())
        }
    }

    pub(crate) fn record_sent(&mut self, src: HostId, dst: HostId) {
        self.sent += 1;
        if let Some(l) = self.entry(src, dst) {
            l.sent += 1;
        }
    }

    pub(crate) fn record_delivered(&mut self, src: HostId, dst: HostId, bytes: u64) {
        self.delivered += 1;
        self.bytes_delivered += bytes;
        if let Some(l) = self.entry(src, dst) {
            l.delivered += 1;
            l.bytes_delivered += bytes;
        }
    }

    pub(crate) fn record_loss(&mut self, src: HostId, dst: HostId) {
        self.dropped_loss += 1;
        if let Some(l) = self.entry(src, dst) {
            l.dropped_loss += 1;
        }
    }

    pub(crate) fn record_disconnected(&mut self, src: HostId, dst: HostId) {
        self.dropped_disconnected += 1;
        if let Some(l) = self.entry(src, dst) {
            l.dropped_disconnected += 1;
        }
    }

    /// Folds another `NetStats` into this one, summing every global and
    /// per-link counter. The sharded simulator keeps one `NetStats` per
    /// shard (each message is accounted exactly once, in its sender's
    /// shard) and merges them into the whole-run view; summing is exact
    /// because the per-shard maps never share a directed sender.
    pub fn merge(&mut self, other: &NetStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped_loss += other.dropped_loss;
        self.dropped_disconnected += other.dropped_disconnected;
        self.bytes_delivered += other.bytes_delivered;
        for (pair, stats) in &other.per_link {
            let l = self.per_link.entry(*pair).or_default();
            l.sent += stats.sent;
            l.delivered += stats.delivered;
            l.dropped_loss += stats.dropped_loss;
            l.dropped_disconnected += stats.dropped_disconnected;
            l.bytes_delivered += stats.bytes_delivered;
        }
    }

    /// Folds the ground-truth totals into registry gauges under the
    /// `net.truth.*` prefix, plus a per-link delivery-ratio gauge for every
    /// link that carried traffic. Monitors publish their *estimates*
    /// elsewhere; exporting both makes estimation error visible in one
    /// metrics dump.
    pub fn publish_gauges(&self, metrics: &redep_telemetry::MetricsRegistry) {
        metrics.gauge("net.truth.sent").set(self.sent as f64);
        metrics
            .gauge("net.truth.delivered")
            .set(self.delivered as f64);
        metrics
            .gauge("net.truth.dropped_loss")
            .set(self.dropped_loss as f64);
        metrics
            .gauge("net.truth.dropped_disconnected")
            .set(self.dropped_disconnected as f64);
        metrics
            .gauge("net.truth.bytes_delivered")
            .set(self.bytes_delivered as f64);
        metrics
            .gauge("net.truth.delivery_ratio")
            .set(self.delivery_ratio());
        for (pair, link) in self.links() {
            metrics
                .gauge(&format!(
                    "net.truth.link.{}-{}.delivery_ratio",
                    pair.lo(),
                    pair.hi()
                ))
                .set(link.delivery_ratio());
        }
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent {} delivered {} lost {} disconnected {} (ratio {:.3})",
            self.sent,
            self.delivered,
            self.dropped_loss,
            self.dropped_disconnected,
            self.delivery_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }

    #[test]
    fn counters_accumulate_globally_and_per_link() {
        let mut s = NetStats::new();
        s.record_sent(h(0), h(1));
        s.record_delivered(h(0), h(1), 10);
        s.record_sent(h(0), h(1));
        s.record_loss(h(0), h(1));
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped_loss, 1);
        let l = s.link(h(0), h(1));
        assert_eq!(l.sent, 2);
        assert_eq!(l.delivered, 1);
        assert_eq!(l.bytes_delivered, 10);
        assert!((l.delivery_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn loopback_traffic_counts_globally_only() {
        let mut s = NetStats::new();
        s.record_sent(h(0), h(0));
        s.record_delivered(h(0), h(0), 4);
        assert_eq!(s.sent, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.links().count(), 0);
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(NetStats::new().delivery_ratio(), 1.0);
        assert_eq!(LinkStats::default().delivery_ratio(), 1.0);
    }

    #[test]
    fn untouched_link_reads_zero() {
        let s = NetStats::new();
        assert_eq!(s.link(h(3), h(4)), LinkStats::default());
    }

    #[test]
    fn net_stats_round_trip_through_json() {
        let mut s = NetStats::new();
        s.record_sent(h(0), h(1));
        s.record_delivered(h(0), h(1), 64);
        s.record_sent(h(2), h(3));
        s.record_loss(h(2), h(3));
        let json = serde_json::to_string(&s.serialize()).unwrap();
        let back = NetStats::deserialize(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.link(h(0), h(1)).bytes_delivered, 64);
    }

    #[test]
    fn publish_gauges_exports_truth() {
        let mut s = NetStats::new();
        s.record_sent(h(0), h(1));
        s.record_delivered(h(0), h(1), 8);
        let metrics = redep_telemetry::MetricsRegistry::new();
        s.publish_gauges(&metrics);
        assert_eq!(metrics.gauge("net.truth.sent").get(), 1.0);
        assert_eq!(metrics.gauge("net.truth.delivery_ratio").get(), 1.0);
        assert_eq!(
            metrics.gauge("net.truth.link.h0-h1.delivery_ratio").get(),
            1.0
        );
    }
}
