//! Messages exchanged between simulated hosts.

use crate::time::SimTime;
use redep_model::HostId;
use std::fmt;

/// A message in flight (or delivered) between two hosts.
///
/// The `size` used for bandwidth accounting is explicit rather than
/// `payload.len()` so that simulations can model headers, compression or
/// abstract workloads without materializing that many bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Message {
    /// Sending host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Application payload.
    pub payload: Vec<u8>,
    /// Size in bytes used for transmission-time accounting.
    pub size: u64,
    /// When the message was sent.
    pub sent_at: SimTime,
}

impl Message {
    /// Creates a message; `size` defaults to the payload length.
    pub fn new(src: HostId, dst: HostId, payload: Vec<u8>) -> Self {
        let size = payload.len() as u64;
        Message {
            src,
            dst,
            payload,
            size,
            sent_at: SimTime::ZERO,
        }
    }

    /// Builder-style override of the accounted size.
    pub fn with_size(mut self, size: u64) -> Self {
        self.size = size;
        self
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → {} ({} bytes, sent {})",
            self.src, self.dst, self.size, self.sent_at
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_defaults_to_payload_length() {
        let m = Message::new(HostId::new(0), HostId::new(1), vec![1, 2, 3]);
        assert_eq!(m.size, 3);
    }

    #[test]
    fn with_size_overrides() {
        let m = Message::new(HostId::new(0), HostId::new(1), vec![]).with_size(1024);
        assert_eq!(m.size, 1024);
    }

    #[test]
    fn display_mentions_endpoints() {
        let m = Message::new(HostId::new(0), HostId::new(1), vec![0; 4]);
        assert!(m.to_string().contains("h0 → h1"));
    }
}
