//! Deterministic, serde-loadable fault-injection plans.
//!
//! A [`FaultPlan`] is a schedule of timed [`FaultEpisode`]s — host crashes,
//! partitions, link-quality degradations and link flaps — expressed in
//! absolute simulated seconds. Installing a plan on a [`Simulator`]
//! (see [`Simulator::install_fault_plan`]) expands every episode into a
//! fixed set of timed actions on the event queue, so the same plan on the
//! same seed replays the same faults at the same instants, byte for byte.
//!
//! Plans are plain data with serde derives: they round-trip through JSON
//! ([`FaultPlan::to_json`] / [`FaultPlan::from_json`]), which makes campaign
//! matrices and regression scenarios checkable into the repository.
//!
//! [`Simulator`]: crate::Simulator
//! [`Simulator::install_fault_plan`]: crate::Simulator::install_fault_plan

use crate::time::SimTime;
use redep_model::HostId;
use serde::{Deserialize, Serialize};

/// One timed fault episode: a fault class active over `[start, start + duration)`.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FaultEpisode {
    /// Episode start, in absolute simulated seconds.
    pub start_secs: f64,
    /// Episode length in seconds; the fault is reverted at `start + duration`.
    pub duration_secs: f64,
    /// What goes wrong during the episode.
    pub fault: FaultKind,
}

/// The fault classes a plan can schedule — the disconnection and
/// fluctuation phenomena of the paper's §2 scenario, made reproducible.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum FaultKind {
    /// The host goes down at episode start and restarts at episode end.
    /// While down it receives neither messages nor timer callbacks; its
    /// periodic timers resume on restart.
    HostCrash {
        /// The crashing host.
        host: HostId,
    },
    /// Links crossing group boundaries go down at episode start; exactly
    /// those cross-group links come back up at episode end (links the
    /// partition never touched keep whatever state they had).
    Partition {
        /// The connectivity islands.
        groups: Vec<Vec<HostId>>,
    },
    /// The link's reliability and bandwidth are scaled down for the episode
    /// and restored to their pre-episode spec afterwards.
    LinkDegrade {
        /// One endpoint.
        a: HostId,
        /// The other endpoint.
        b: HostId,
        /// Multiplier on reliability, clamped into `[0, 1]` after scaling.
        reliability_factor: f64,
        /// Multiplier on bandwidth (must leave bandwidth positive).
        bandwidth_factor: f64,
    },
    /// The link toggles down/up every `period_secs`, starting down at
    /// episode start and forced up at episode end.
    LinkFlap {
        /// One endpoint.
        a: HostId,
        /// The other endpoint.
        b: HostId,
        /// Length of each down (and each up) interval in seconds.
        period_secs: f64,
    },
}

/// A deterministic schedule of fault episodes.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The episodes; order is irrelevant, expansion sorts by time.
    pub episodes: Vec<FaultEpisode>,
}

/// One primitive topology mutation a plan expands into.
#[derive(Clone, PartialEq, Debug)]
pub enum FaultAction {
    /// Take a host down.
    HostDown(HostId),
    /// Bring a host back up (replaying timers deferred while it was down).
    HostUp(HostId),
    /// Cut cross-group links.
    PartitionStart(Vec<Vec<HostId>>),
    /// Re-raise exactly the cross-group links of the given grouping.
    PartitionHeal(Vec<Vec<HostId>>),
    /// Scale a link's reliability/bandwidth, remembering the original spec.
    Degrade {
        /// One endpoint.
        a: HostId,
        /// The other endpoint.
        b: HostId,
        /// Reliability multiplier.
        reliability_factor: f64,
        /// Bandwidth multiplier.
        bandwidth_factor: f64,
    },
    /// Restore a degraded link to its remembered spec.
    Restore(HostId, HostId),
    /// Take a link down (flap).
    LinkDown(HostId, HostId),
    /// Bring a link up (flap / episode end).
    LinkUp(HostId, HostId),
}

impl FaultAction {
    /// Short class label used in `net.fault` telemetry events.
    pub fn label(&self) -> &'static str {
        match self {
            FaultAction::HostDown(_) => "host_down",
            FaultAction::HostUp(_) => "host_up",
            FaultAction::PartitionStart(_) => "partition",
            FaultAction::PartitionHeal(_) => "partition_heal",
            FaultAction::Degrade { .. } => "degrade",
            FaultAction::Restore(_, _) => "restore",
            FaultAction::LinkDown(_, _) => "link_down",
            FaultAction::LinkUp(_, _) => "link_up",
        }
    }
}

impl FaultEpisode {
    fn validate(&self, index: usize) {
        assert!(
            self.start_secs >= 0.0 && self.start_secs.is_finite(),
            "episode {index}: start_secs must be finite and non-negative"
        );
        assert!(
            self.duration_secs > 0.0 && self.duration_secs.is_finite(),
            "episode {index}: duration_secs must be finite and positive"
        );
        match &self.fault {
            FaultKind::HostCrash { .. } => {}
            FaultKind::Partition { groups } => {
                assert!(
                    groups.len() >= 2,
                    "episode {index}: a partition needs at least two groups"
                );
            }
            FaultKind::LinkDegrade {
                reliability_factor,
                bandwidth_factor,
                ..
            } => {
                assert!(
                    (0.0..=1.0).contains(reliability_factor),
                    "episode {index}: reliability_factor must be in [0, 1]"
                );
                assert!(
                    *bandwidth_factor > 0.0,
                    "episode {index}: bandwidth_factor must be positive"
                );
            }
            FaultKind::LinkFlap { period_secs, .. } => {
                assert!(
                    *period_secs > 0.0 && period_secs.is_finite(),
                    "episode {index}: period_secs must be finite and positive"
                );
            }
        }
    }

    /// Expands the episode into its primitive timed actions.
    fn actions(&self, out: &mut Vec<(SimTime, FaultAction)>) {
        let start = SimTime::from_secs_f64(self.start_secs);
        let end = SimTime::from_secs_f64(self.start_secs + self.duration_secs);
        match &self.fault {
            FaultKind::HostCrash { host } => {
                out.push((start, FaultAction::HostDown(*host)));
                out.push((end, FaultAction::HostUp(*host)));
            }
            FaultKind::Partition { groups } => {
                out.push((start, FaultAction::PartitionStart(groups.clone())));
                out.push((end, FaultAction::PartitionHeal(groups.clone())));
            }
            FaultKind::LinkDegrade {
                a,
                b,
                reliability_factor,
                bandwidth_factor,
            } => {
                out.push((
                    start,
                    FaultAction::Degrade {
                        a: *a,
                        b: *b,
                        reliability_factor: *reliability_factor,
                        bandwidth_factor: *bandwidth_factor,
                    },
                ));
                out.push((end, FaultAction::Restore(*a, *b)));
            }
            FaultKind::LinkFlap { a, b, period_secs } => {
                let mut t = self.start_secs;
                let mut down = true;
                while t < self.start_secs + self.duration_secs {
                    let action = if down {
                        FaultAction::LinkDown(*a, *b)
                    } else {
                        FaultAction::LinkUp(*a, *b)
                    };
                    out.push((SimTime::from_secs_f64(t), action));
                    down = !down;
                    t += *period_secs;
                }
                out.push((end, FaultAction::LinkUp(*a, *b)));
            }
        }
    }
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style: appends an episode.
    pub fn episode(mut self, start_secs: f64, duration_secs: f64, fault: FaultKind) -> Self {
        self.episodes.push(FaultEpisode {
            start_secs,
            duration_secs,
            fault,
        });
        self
    }

    /// Expands all episodes into a time-sorted action schedule.
    ///
    /// The sort is stable over the episode order, so two identical plans
    /// always expand identically — this is what makes a plan deterministic.
    ///
    /// # Panics
    ///
    /// Panics if any episode is malformed (non-positive duration, partition
    /// with fewer than two groups, out-of-range factors).
    pub fn expand(&self) -> Vec<(SimTime, FaultAction)> {
        let mut out = Vec::new();
        for (i, ep) in self.episodes.iter().enumerate() {
            ep.validate(i);
            ep.actions(&mut out);
        }
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Serializes the plan to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("a fault plan always serializes")
    }

    /// Parses a plan from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }

    #[test]
    fn expansion_is_sorted_and_bracketed() {
        let plan = FaultPlan::new()
            .episode(5.0, 2.0, FaultKind::HostCrash { host: h(1) })
            .episode(
                1.0,
                3.0,
                FaultKind::Partition {
                    groups: vec![vec![h(0)], vec![h(1)]],
                },
            );
        let actions = plan.expand();
        let times: Vec<f64> = actions.iter().map(|(t, _)| t.as_secs_f64()).collect();
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(times, sorted);
        assert!(matches!(actions[0].1, FaultAction::PartitionStart(_)));
        assert!(matches!(
            actions.last().unwrap().1,
            FaultAction::HostUp(host) if host == h(1)
        ));
    }

    #[test]
    fn flap_expands_to_alternating_toggles_ending_up() {
        let plan = FaultPlan::new().episode(
            0.0,
            3.0,
            FaultKind::LinkFlap {
                a: h(0),
                b: h(1),
                period_secs: 1.0,
            },
        );
        let actions = plan.expand();
        let labels: Vec<&str> = actions.iter().map(|(_, a)| a.label()).collect();
        assert_eq!(labels, vec!["link_down", "link_up", "link_down", "link_up"]);
        assert_eq!(actions.last().unwrap().0, SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = FaultPlan::new()
            .episode(2.5, 4.0, FaultKind::HostCrash { host: h(3) })
            .episode(
                10.0,
                5.0,
                FaultKind::LinkDegrade {
                    a: h(0),
                    b: h(2),
                    reliability_factor: 0.3,
                    bandwidth_factor: 0.5,
                },
            )
            .episode(
                20.0,
                6.0,
                FaultKind::LinkFlap {
                    a: h(1),
                    b: h(2),
                    period_secs: 0.5,
                },
            )
            .episode(
                30.0,
                8.0,
                FaultKind::Partition {
                    groups: vec![vec![h(0), h(1)], vec![h(2), h(3)]],
                },
            );
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    #[should_panic(expected = "duration_secs must be finite and positive")]
    fn zero_duration_panics_on_expand() {
        FaultPlan::new()
            .episode(1.0, 0.0, FaultKind::HostCrash { host: h(0) })
            .expand();
    }

    // ---- episode-boundary ordering ---------------------------------------
    //
    // A `HostCrash` episode `[start, start + duration)` is closed at its
    // start and open at its end: an event landing exactly at the crash
    // instant is lost, one landing exactly at the restart instant is
    // processed. The tests below pin that contract — the fault action for an
    // instant is scheduled at plan-install time, so its queue sequence number
    // is lower than any same-instant event scheduled later during the run,
    // and the `(time, seq)` calendar order makes it win the tie.

    use crate::node::{Node, NodeCtx};
    use crate::sim::Simulator;
    use crate::time::{Duration, SimTime};
    use crate::topology::LinkSpec;
    use crate::Message;

    /// Sends a 0-byte message to `to` over a zero-delay link at each armed
    /// instant, so arrival time equals send time exactly.
    struct BoundarySender {
        to: HostId,
    }
    impl Node for BoundarySender {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(Duration::from_secs_f64(1.0), 0);
            ctx.set_timer(Duration::from_secs_f64(2.0), 0);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
            let stamp = format!("msg@{}", ctx.now().as_micros());
            ctx.send(self.to, stamp.into_bytes(), 0);
        }
    }

    /// Records every callback with its instant, in execution order.
    #[derive(Default)]
    struct BoundaryVictim {
        log: Vec<(u64, String)>,
    }
    impl Node for BoundaryVictim {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            // Token 1 lands exactly at the crash instant, token 2 exactly at
            // the restart instant.
            ctx.set_timer(Duration::from_secs_f64(1.0), 1);
            ctx.set_timer(Duration::from_secs_f64(2.0), 2);
        }
        fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
            let text = String::from_utf8_lossy(&msg.payload).into_owned();
            self.log.push((ctx.now().as_micros(), text));
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            self.log
                .push((ctx.now().as_micros(), format!("timer:{token}")));
        }
        fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
            self.log.push((ctx.now().as_micros(), "restart".into()));
        }
    }

    /// Runs a 2-host sim with host 1 crashed over `[1s, 2s)` and returns
    /// host 1's callback log.
    fn boundary_run() -> Vec<(u64, String)> {
        let mut sim = Simulator::new(7);
        sim.add_host(h(0), BoundarySender { to: h(1) });
        sim.add_host(h(1), BoundaryVictim::default());
        sim.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 1.0,
                bandwidth: 1e12,
                delay: 0.0,
            },
        );
        sim.install_fault_plan(&FaultPlan::new().episode(
            1.0,
            1.0,
            FaultKind::HostCrash { host: h(1) },
        ));
        sim.run_until(SimTime::from_secs_f64(3.0));
        sim.node_ref::<BoundaryVictim>(h(1)).unwrap().log.clone()
    }

    #[test]
    fn message_at_crash_instant_is_dropped_at_restart_instant_delivered() {
        let log = boundary_run();
        let texts: Vec<&str> = log.iter().map(|(_, s)| s.as_str()).collect();
        // t == crash start: the HostDown action (installed early, lower seq)
        // beats the same-instant delivery, which is dropped.
        assert!(
            !texts.contains(&"msg@1000000"),
            "message at the crash instant must be lost: {texts:?}"
        );
        // t == restart: the HostUp action wins the tie the same way, so the
        // same-instant delivery goes through.
        assert!(
            texts.contains(&"msg@2000000"),
            "message at the restart instant must be delivered: {texts:?}"
        );
    }

    #[test]
    fn timer_at_crash_instant_is_deferred_to_the_restart_instant() {
        let log = boundary_run();
        // Token 1 was due exactly at the crash instant: not dropped, but
        // deferred and replayed at restart time.
        let fired: Vec<u64> = log
            .iter()
            .filter(|(_, s)| s == "timer:1")
            .map(|&(t, _)| t)
            .collect();
        assert_eq!(
            fired,
            vec![2_000_000],
            "deferred token replays once: {log:?}"
        );
    }

    #[test]
    fn restart_instant_order_is_hook_then_due_timer_then_deferred_replay() {
        let log = boundary_run();
        let at_restart: Vec<&str> = log
            .iter()
            .filter(|&&(t, _)| t == 2_000_000)
            .map(|(_, s)| s.as_str())
            .collect();
        // The restart hook runs inside the HostUp action; a timer due
        // exactly at the restart instant (armed pre-crash, so an older
        // sequence number) beats the freshly-scheduled deferred replay; the
        // same-instant message (sent after the fault action) comes last.
        assert_eq!(
            at_restart,
            vec!["restart", "timer:2", "timer:1", "msg@2000000"],
            "restart-instant ordering changed: {log:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two groups")]
    fn degenerate_partition_panics() {
        FaultPlan::new()
            .episode(
                1.0,
                1.0,
                FaultKind::Partition {
                    groups: vec![vec![h(0)]],
                },
            )
            .expand();
    }
}
