//! The discrete-event simulation loop.

use crate::calendar::CalendarQueue;
use crate::faultplan::{FaultAction, FaultPlan};
use crate::fluctuation::FluctuationModel;
use crate::message::Message;
use crate::node::{Node, NodeAction, NodeCtx};
use crate::stats::NetStats;
use crate::time::{Duration, SimTime};
use crate::topology::{LinkSpec, NetworkTopology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use redep_model::HostId;
use redep_telemetry::{trace::DOMAIN_NET, Counter, SpanIdGen, Telemetry, TraceCtx};
use std::any::Any;
use std::collections::BTreeMap;

/// What happens at a scheduled instant.
#[derive(Debug)]
enum Event {
    Start { host: HostId },
    Deliver { msg: Message },
    Timer { host: HostId, token: u64 },
    Fluctuate { index: usize },
    Fault { action: FaultAction, ctx: TraceCtx },
}

/// Counter handles cached at telemetry install time, so the per-message hot
/// path is a relaxed atomic increment and never touches the registry lock.
struct NetCounters {
    sent: Counter,
    delivered: Counter,
    dropped_loss: Counter,
    dropped_disconnected: Counter,
}

impl NetCounters {
    fn new(telemetry: &Telemetry) -> Self {
        let metrics = telemetry.metrics();
        NetCounters {
            sent: metrics.counter("net.sent"),
            delivered: metrics.counter("net.delivered"),
            dropped_loss: metrics.counter("net.dropped_loss"),
            dropped_disconnected: metrics.counter("net.dropped_disconnected"),
        }
    }
}

/// A deterministic discrete-event network simulator.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    /// Pending events in a calendar queue (bucketed time-wheel): O(1)
    /// schedule and amortized O(1) pop for the near-future timer swarm, with
    /// pop order identical to the `BinaryHeap` it replaced — see
    /// [`CalendarQueue`].
    queue: CalendarQueue<Event>,
    /// Count of scheduled-but-unprocessed [`Event::Deliver`] entries,
    /// maintained incrementally so [`Simulator::in_flight`] is O(1) instead
    /// of an O(n) queue scan.
    deliver_in_flight: usize,
    nodes: BTreeMap<HostId, Box<dyn Node>>,
    topology: NetworkTopology,
    rng: ChaCha8Rng,
    stats: NetStats,
    fluctuations: Vec<(Duration, Box<dyn FluctuationModel>)>,
    /// Per-link medium occupancy: transmissions serialize behind each other
    /// (half-duplex), so bursts over thin links experience queueing delay.
    link_busy_until: BTreeMap<redep_model::HostPair, SimTime>,
    /// Timers that fired while their host was down, kept in firing order and
    /// replayed when the host comes back up. Without this a restarted host
    /// would have lost every periodic loop (retransmit, ping, monitoring)
    /// forever — the silent-stall failure mode fault plans exist to expose.
    deferred_timers: BTreeMap<HostId, Vec<u64>>,
    /// Original link specs saved by [`FaultAction::Degrade`], restored at
    /// episode end.
    degraded_specs: BTreeMap<redep_model::HostPair, LinkSpec>,
    scratch: Vec<NodeAction>,
    telemetry: Telemetry,
    counters: NetCounters,
    /// Deterministic span IDs for fault traces (domain [`DOMAIN_NET`]).
    tracer: SpanIdGen,
    /// The fault action currently being applied; topology events emitted
    /// while it is set (host/link state, partitions, timer replays) become
    /// child spans of that fault, linking cause to effect in the journal.
    fault_ctx: Option<TraceCtx>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("hosts", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Creates a simulator with the given RNG seed and an empty topology.
    /// Telemetry starts as a no-op sink; see [`Simulator::set_telemetry`].
    pub fn new(seed: u64) -> Self {
        let telemetry = Telemetry::disabled();
        let counters = NetCounters::new(&telemetry);
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            deliver_in_flight: 0,
            nodes: BTreeMap::new(),
            topology: NetworkTopology::new(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            stats: NetStats::new(),
            fluctuations: Vec::new(),
            link_busy_until: BTreeMap::new(),
            deferred_timers: BTreeMap::new(),
            degraded_specs: BTreeMap::new(),
            scratch: Vec::new(),
            telemetry,
            counters,
            tracer: SpanIdGen::new(DOMAIN_NET, 0),
            fault_ctx: None,
        }
    }

    /// Installs a telemetry handle. Counters for the message hot path are
    /// re-cached from the handle's registry, so installation should happen
    /// before the run starts (counts recorded under the previous handle stay
    /// with that handle's registry).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.counters = NetCounters::new(&telemetry);
        self.telemetry = telemetry;
    }

    /// The telemetry handle (a disabled no-op sink unless one was installed).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Folds the ground-truth [`NetStats`] into the telemetry registry's
    /// `net.truth.*` gauges (see [`NetStats::publish_gauges`]).
    pub fn publish_gauges(&self) {
        self.stats.publish_gauges(self.telemetry.metrics());
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The live network topology.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// The live network topology, for runtime edits (fault injection etc.).
    pub fn topology_mut(&mut self) -> &mut NetworkTopology {
        &mut self.topology
    }

    /// Ground-truth statistics gathered so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Messages accepted by the network but not yet delivered (scheduled
    /// delivery events still in the queue). Together with the statistics
    /// this makes conservation checkable at any instant:
    /// `sent == delivered + dropped + in_flight`.
    pub fn in_flight(&self) -> usize {
        self.deliver_in_flight
    }

    /// Registers a node on `host` and schedules its [`Node::on_start`].
    ///
    /// # Panics
    ///
    /// Panics if the host already carries a node.
    pub fn add_host(&mut self, host: HostId, node: impl Node) {
        assert!(
            !self.nodes.contains_key(&host),
            "host {host} already has a node"
        );
        self.topology.add_host(host);
        self.nodes.insert(host, Box::new(node));
        self.schedule(self.now, Event::Start { host });
    }

    /// Creates or replaces the link between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid or `a == b`.
    pub fn set_link(&mut self, a: HostId, b: HostId, spec: LinkSpec) {
        self.topology.set_link(a, b, spec);
    }

    /// Marks a link up or down.
    pub fn set_link_up(&mut self, a: HostId, b: HostId, up: bool) {
        self.topology.set_link_up(a, b, up);
        let ctx = self.fault_child();
        self.telemetry
            .event("net.link.state", self.now.as_micros())
            .field("a", a.raw())
            .field("b", b.raw())
            .field("up", up)
            .trace_opt(ctx)
            .emit();
    }

    /// A child context under the fault action currently being applied, if
    /// any. Only called off the hot path (topology changes, replays).
    fn fault_child(&self) -> Option<TraceCtx> {
        self.fault_ctx.map(|ctx| self.tracer.child(&ctx))
    }

    /// Marks a host up or down. A down host receives neither messages nor
    /// timer callbacks; messages are dropped, timers are deferred and replay
    /// immediately when the host comes back up (so periodic loops resume
    /// after a restart instead of dying with the crash).
    pub fn set_host_up(&mut self, host: HostId, up: bool) {
        let was_up = self.topology.host_is_up(host);
        self.topology.set_host_up(host, up);
        let ctx = self.fault_child();
        self.telemetry
            .event("net.host.state", self.now.as_micros())
            .field("host", host.raw())
            .field("up", up)
            .trace_opt(ctx)
            .emit();
        if up {
            // Restart hook first: the node rebuilds its state (durable
            // replay) before any deferred timer fires and before any
            // same-instant queued event is delivered. A redundant "up" on a
            // host that never went down is not a restart.
            if !was_up {
                self.run_callback(host, |node, ctx| node.on_restart(ctx));
            }
            if let Some(tokens) = self.deferred_timers.remove(&host) {
                let replay_ctx = self.fault_child();
                self.telemetry
                    .event("net.host.timer.replay", self.now.as_micros())
                    .field("host", host.raw())
                    .field("timers", tokens.len())
                    .trace_opt(replay_ctx)
                    .emit();
                for token in tokens {
                    self.schedule(self.now, Event::Timer { host, token });
                }
            }
        }
    }

    /// Partitions the network (see [`NetworkTopology::partition`]).
    pub fn partition(&mut self, groups: &[Vec<HostId>]) {
        self.topology.partition(groups);
        let ctx = self.fault_child();
        self.telemetry
            .event("net.partition", self.now.as_micros())
            .field("groups", groups.len())
            .field("hosts", groups.iter().map(Vec::len).sum::<usize>())
            .trace_opt(ctx)
            .emit();
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        self.topology.heal();
        let ctx = self.fault_child();
        self.telemetry
            .event("net.partition.heal", self.now.as_micros())
            .trace_opt(ctx)
            .emit();
    }

    /// Installs a fault plan: every episode is expanded into timed topology
    /// actions on the event queue ([`FaultPlan::expand`]). Times are absolute
    /// simulated seconds; actions already in the past run at the current
    /// instant, preserving their relative order. Each applied action emits a
    /// `net.fault` telemetry event, so a journal replays the fault history.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        for (time, action) in plan.expand() {
            // Each action roots its own trace; everything it knocks over
            // (host/link state, partitions, deferred-timer replays) links
            // back to it as child spans.
            let ctx = self.tracer.root();
            self.schedule(time.max(self.now), Event::Fault { action, ctx });
        }
    }

    /// Applies one primitive fault action to the live topology.
    fn apply_fault(&mut self, action: FaultAction, ctx: TraceCtx) {
        self.telemetry
            .event("net.fault", self.now.as_micros())
            .field("action", action.label())
            .trace(ctx)
            .emit();
        self.fault_ctx = Some(ctx);
        match action {
            FaultAction::HostDown(h) => self.set_host_up(h, false),
            FaultAction::HostUp(h) => self.set_host_up(h, true),
            FaultAction::PartitionStart(groups) => self.partition(&groups),
            FaultAction::PartitionHeal(groups) => {
                self.topology.heal_between(&groups);
                let child = self.fault_child();
                self.telemetry
                    .event("net.partition.heal", self.now.as_micros())
                    .trace_opt(child)
                    .emit();
            }
            FaultAction::Degrade {
                a,
                b,
                reliability_factor,
                bandwidth_factor,
            } => {
                let pair = redep_model::HostPair::new(a, b);
                if let Some(state) = self.topology.link_mut(a, b) {
                    self.degraded_specs.entry(pair).or_insert(state.spec);
                    state.spec.reliability =
                        (state.spec.reliability * reliability_factor).clamp(0.0, 1.0);
                    state.spec.bandwidth = (state.spec.bandwidth * bandwidth_factor).max(1.0);
                }
            }
            FaultAction::Restore(a, b) => {
                let pair = redep_model::HostPair::new(a, b);
                if let Some(original) = self.degraded_specs.remove(&pair) {
                    if let Some(state) = self.topology.link_mut(a, b) {
                        state.spec = original;
                    }
                }
            }
            FaultAction::LinkDown(a, b) => self.set_link_up(a, b, false),
            FaultAction::LinkUp(a, b) => self.set_link_up(a, b, true),
        }
        self.fault_ctx = None;
    }

    /// Installs a fluctuation model applied every `interval`.
    pub fn add_fluctuation(&mut self, interval: Duration, model: impl FluctuationModel) {
        assert!(
            interval > Duration::ZERO,
            "fluctuation interval must be positive"
        );
        let index = self.fluctuations.len();
        self.fluctuations.push((interval, Box::new(model)));
        self.schedule(self.now + interval, Event::Fluctuate { index });
    }

    /// Borrows the node on `host`, downcast to its concrete type.
    pub fn node_ref<T: Node>(&self, host: HostId) -> Option<&T> {
        self.nodes
            .get(&host)
            .and_then(|n| (n.as_ref() as &dyn Any).downcast_ref::<T>())
    }

    /// Mutably borrows the node on `host`, downcast to its concrete type.
    pub fn node_mut<T: Node>(&mut self, host: HostId) -> Option<&mut T> {
        self.nodes
            .get_mut(&host)
            .and_then(|n| (n.as_mut() as &mut dyn Any).downcast_mut::<T>())
    }

    /// Sends a message from outside any node (e.g. a test driver). Subject
    /// to the same loss/disconnection semantics as node sends.
    pub fn inject(&mut self, src: HostId, dst: HostId, payload: impl Into<Vec<u8>>, size: u64) {
        self.dispatch_send(src, dst, payload.into(), size);
    }

    /// Arms a timer on `host` from outside any node.
    pub fn inject_timer(&mut self, host: HostId, delay: Duration, token: u64) {
        self.schedule(self.now + delay, Event::Timer { host, token });
    }

    fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        if matches!(event, Event::Deliver { .. }) {
            self.deliver_in_flight += 1;
        }
        self.queue.push(time, seq, event);
    }

    /// Records one dropped message in the counters and the journal.
    fn record_drop(&self, src: HostId, dst: HostId, reason: &'static str) {
        let counter = match reason {
            "loss" => &self.counters.dropped_loss,
            _ => &self.counters.dropped_disconnected,
        };
        counter.inc();
        self.telemetry
            .event("net.link.drop", self.now.as_micros())
            .field("src", src.raw())
            .field("dst", dst.raw())
            .field("reason", reason)
            .emit();
    }

    /// Routes one message through the simulated network.
    fn dispatch_send(&mut self, src: HostId, dst: HostId, payload: Vec<u8>, size: u64) {
        self.stats.record_sent(src, dst);
        self.counters.sent.inc();
        if src == dst {
            // Loopback: immediate delivery if the host is up.
            if self.topology.host_is_up(src) {
                let msg = Message {
                    src,
                    dst,
                    payload,
                    size,
                    sent_at: self.now,
                };
                self.schedule(self.now, Event::Deliver { msg });
            } else {
                self.stats.record_disconnected(src, dst);
                self.record_drop(src, dst, "host_down");
            }
            return;
        }
        if !self.topology.reachable(src, dst) {
            self.stats.record_disconnected(src, dst);
            self.record_drop(src, dst, "disconnected");
            return;
        }
        let spec = self
            .topology
            .link(src, dst)
            .expect("reachable implies link exists")
            .spec;
        if !self.rng.random_bool(spec.reliability.clamp(0.0, 1.0)) {
            self.stats.record_loss(src, dst);
            self.record_drop(src, dst, "loss");
            return;
        }
        // Medium occupancy: the transmission starts when the link is free
        // and holds it for the serialization time; propagation delay then
        // runs in parallel with the next transmission.
        let pair = redep_model::HostPair::new(src, dst);
        let free_at = self
            .link_busy_until
            .get(&pair)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(self.now);
        let transmit = Duration::from_secs_f64(size as f64 / spec.bandwidth);
        let done_transmitting = free_at + transmit;
        self.link_busy_until.insert(pair, done_transmitting);
        let deliver_at = done_transmitting + Duration::from_secs_f64(spec.delay);
        let msg = Message {
            src,
            dst,
            payload,
            size,
            sent_at: self.now,
        };
        self.schedule(deliver_at, Event::Deliver { msg });
    }

    /// Runs one node callback and applies the actions it buffered.
    fn run_callback(&mut self, host: HostId, f: impl FnOnce(&mut dyn Node, &mut NodeCtx<'_>)) {
        let Some(mut node) = self.nodes.remove(&host) else {
            return;
        };
        let mut actions = std::mem::take(&mut self.scratch);
        actions.clear();
        {
            let mut ctx = NodeCtx::new(host, self.now, &mut actions);
            f(node.as_mut(), &mut ctx);
        }
        self.nodes.insert(host, node);
        for action in actions.drain(..) {
            match action {
                NodeAction::Send { dst, payload, size } => {
                    self.dispatch_send(host, dst, payload, size)
                }
                NodeAction::SetTimer { delay, token } => {
                    self.schedule(self.now + delay, Event::Timer { host, token })
                }
            }
        }
        self.scratch = actions;
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((time, _seq, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        if matches!(event, Event::Deliver { .. }) {
            self.deliver_in_flight -= 1;
        }
        match event {
            Event::Start { host } => {
                self.run_callback(host, |node, ctx| node.on_start(ctx));
            }
            Event::Deliver { msg } => {
                let (src, dst, bytes) = (msg.src, msg.dst, msg.size);
                if self.topology.host_is_up(dst) {
                    self.stats.record_delivered(src, dst, bytes);
                    self.counters.delivered.inc();
                    self.run_callback(dst, |node, ctx| node.on_message(ctx, msg));
                } else {
                    self.stats.record_disconnected(src, dst);
                    self.record_drop(src, dst, "host_down");
                }
            }
            Event::Timer { host, token } => {
                if self.topology.host_is_up(host) {
                    self.run_callback(host, |node, ctx| node.on_timer(ctx, token));
                } else if self.nodes.contains_key(&host) {
                    // Defer instead of dropping: the token replays when the
                    // host restarts, so its periodic loops survive the crash.
                    self.deferred_timers.entry(host).or_default().push(token);
                }
            }
            Event::Fault { action, ctx } => {
                self.apply_fault(action, ctx);
            }
            Event::Fluctuate { index } => {
                let (interval, mut model) = {
                    let entry = &mut self.fluctuations[index];
                    (entry.0, std::mem::replace(&mut entry.1, Box::new(NoFluct)))
                };
                model.apply(&mut self.topology, &mut self.rng);
                self.telemetry
                    .event("net.fluctuation", self.now.as_micros())
                    .field("index", index)
                    .field("model", model.name().to_owned())
                    .emit();
                self.fluctuations[index].1 = model;
                self.schedule(self.now + interval, Event::Fluctuate { index });
            }
        }
        true
    }

    /// Runs until the queue is exhausted or simulated time reaches `deadline`
    /// (events at the deadline still run). Returns the number of events
    /// processed.
    ///
    /// Fluctuation events keep a simulation alive forever, so simulations
    /// with fluctuation must be driven by deadline, never to exhaustion.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(next_time) = self.queue.peek_time() {
            if next_time > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        // Advance the clock to the deadline even if the queue drained early.
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Runs for `span` of simulated time from now.
    pub fn run_for(&mut self, span: Duration) -> u64 {
        self.run_until(self.now + span)
    }

    /// Runs until no events remain. Returns the number of events processed.
    ///
    /// # Panics
    ///
    /// Panics after `10_000_000` events as a runaway-loop guard; simulations
    /// with periodic timers or fluctuation must use [`Simulator::run_until`].
    pub fn run_to_completion(&mut self) -> u64 {
        let mut n = 0u64;
        while self.step() {
            n += 1;
            assert!(
                n < 10_000_000,
                "run_to_completion exceeded 10M events; use run_until for periodic workloads"
            );
        }
        n
    }
}

/// Placeholder swapped in while a fluctuation model runs (never applied).
#[derive(Debug)]
struct NoFluct;
impl FluctuationModel for NoFluct {
    fn name(&self) -> &str {
        "none"
    }
    fn apply(&mut self, _topology: &mut NetworkTopology, _rng: &mut ChaCha8Rng) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }

    /// Counts everything it receives.
    struct Sink {
        received: Vec<Message>,
    }
    impl Node for Sink {
        fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, msg: Message) {
            self.received.push(msg);
        }
    }

    /// Sends `count` messages of `size` bytes to `peer` on start.
    struct Burst {
        peer: HostId,
        count: u32,
        size: u64,
    }
    impl Node for Burst {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            for i in 0..self.count {
                ctx.send(self.peer, vec![i as u8], self.size);
            }
        }
    }

    fn sink() -> Sink {
        Sink {
            received: Vec::new(),
        }
    }

    #[test]
    fn perfect_link_delivers_everything() {
        let mut sim = Simulator::new(1);
        sim.add_host(
            h(0),
            Burst {
                peer: h(1),
                count: 10,
                size: 100,
            },
        );
        sim.add_host(h(1), sink());
        sim.set_link(h(0), h(1), LinkSpec::default());
        sim.run_to_completion();
        assert_eq!(sim.stats().delivered, 10);
        assert_eq!(sim.node_ref::<Sink>(h(1)).unwrap().received.len(), 10);
    }

    #[test]
    fn delivery_time_reflects_delay_and_bandwidth() {
        let mut sim = Simulator::new(1);
        sim.add_host(
            h(0),
            Burst {
                peer: h(1),
                count: 1,
                size: 1000,
            },
        );
        sim.add_host(h(1), sink());
        sim.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 1.0,
                bandwidth: 10_000.0, // 1000 bytes -> 0.1 s
                delay: 0.5,
            },
        );
        sim.run_to_completion();
        // Delivery at 0.5 + 0.1 = 0.6 s.
        assert_eq!(sim.now().as_micros(), 600_000);
    }

    #[test]
    fn unreliable_link_drops_roughly_proportionally() {
        let mut sim = Simulator::new(7);
        sim.add_host(
            h(0),
            Burst {
                peer: h(1),
                count: 1000,
                size: 10,
            },
        );
        sim.add_host(h(1), sink());
        sim.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 0.7,
                ..LinkSpec::default()
            },
        );
        sim.run_to_completion();
        let ratio = sim.stats().link(h(0), h(1)).delivery_ratio();
        assert!((ratio - 0.7).abs() < 0.05, "observed ratio {ratio}");
        assert_eq!(sim.stats().sent, 1000);
        assert_eq!(sim.stats().delivered + sim.stats().dropped_loss, 1000);
    }

    #[test]
    fn no_link_means_disconnected_drop() {
        let mut sim = Simulator::new(1);
        sim.add_host(
            h(0),
            Burst {
                peer: h(1),
                count: 3,
                size: 1,
            },
        );
        sim.add_host(h(1), sink());
        sim.run_to_completion();
        assert_eq!(sim.stats().dropped_disconnected, 3);
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    fn downed_link_drops_then_recovers() {
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), sink());
        sim.add_host(h(1), sink());
        sim.set_link(h(0), h(1), LinkSpec::default());
        sim.run_to_completion();
        sim.set_link_up(h(0), h(1), false);
        sim.inject(h(0), h(1), vec![1], 1);
        sim.run_to_completion();
        assert_eq!(sim.stats().dropped_disconnected, 1);
        sim.set_link_up(h(0), h(1), true);
        sim.inject(h(0), h(1), vec![2], 1);
        sim.run_to_completion();
        assert_eq!(sim.stats().delivered, 1);
    }

    #[test]
    fn crashed_host_receives_nothing_until_restart() {
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), sink());
        sim.add_host(h(1), sink());
        sim.set_link(h(0), h(1), LinkSpec::default());
        sim.run_to_completion();
        sim.set_host_up(h(1), false);
        sim.inject(h(0), h(1), vec![1], 1);
        sim.run_to_completion();
        assert!(sim.node_ref::<Sink>(h(1)).unwrap().received.is_empty());
        sim.set_host_up(h(1), true);
        sim.inject(h(0), h(1), vec![2], 1);
        sim.run_to_completion();
        assert_eq!(sim.node_ref::<Sink>(h(1)).unwrap().received.len(), 1);
    }

    #[test]
    fn loopback_is_immediate_and_lossless() {
        struct SelfSender {
            got: u32,
        }
        impl Node for SelfSender {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.send(ctx.host(), vec![1], 1);
            }
            fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _msg: Message) {
                self.got += 1;
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), SelfSender { got: 0 });
        sim.run_to_completion();
        assert_eq!(sim.node_ref::<SelfSender>(h(0)).unwrap().got, 1);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerNode {
            fired: Vec<u64>,
        }
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(Duration::from_millis(20), 2);
                ctx.set_timer(Duration::from_millis(10), 1);
            }
            fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, token: u64) {
                self.fired.push(token);
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), TimerNode { fired: vec![] });
        sim.run_to_completion();
        assert_eq!(sim.node_ref::<TimerNode>(h(0)).unwrap().fired, vec![1, 2]);
    }

    #[test]
    fn periodic_timer_respects_run_until() {
        struct Periodic {
            ticks: u32,
        }
        impl Node for Periodic {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(Duration::from_millis(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
                self.ticks += 1;
                ctx.set_timer(Duration::from_millis(10), 0);
            }
        }
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), Periodic { ticks: 0 });
        sim.run_until(SimTime::from_secs_f64(0.1));
        assert_eq!(sim.node_ref::<Periodic>(h(0)).unwrap().ticks, 10);
        assert_eq!(sim.now(), SimTime::from_secs_f64(0.1));
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            sim.add_host(
                h(0),
                Burst {
                    peer: h(1),
                    count: 500,
                    size: 10,
                },
            );
            sim.add_host(h(1), sink());
            sim.set_link(
                h(0),
                h(1),
                LinkSpec {
                    reliability: 0.6,
                    ..LinkSpec::default()
                },
            );
            sim.run_to_completion();
            (sim.stats().delivered, sim.stats().dropped_loss)
        }
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0); // extremely likely with 500 samples
    }

    #[test]
    fn partition_and_heal_through_simulator_api() {
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), sink());
        sim.add_host(h(1), sink());
        sim.set_link(h(0), h(1), LinkSpec::default());
        sim.run_to_completion();
        sim.partition(&[vec![h(0)], vec![h(1)]]);
        sim.inject(h(0), h(1), vec![], 1);
        sim.run_to_completion();
        assert_eq!(sim.stats().dropped_disconnected, 1);
        sim.heal();
        sim.inject(h(0), h(1), vec![], 1);
        sim.run_to_completion();
        assert_eq!(sim.stats().delivered, 1);
    }

    #[test]
    #[should_panic(expected = "already has a node")]
    fn duplicate_host_panics() {
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), sink());
        sim.add_host(h(0), sink());
    }

    #[test]
    fn fluctuation_fires_periodically_and_mutates_links() {
        use crate::fluctuation::RandomWalkFluctuation;
        let mut sim = Simulator::new(4);
        sim.add_host(h(0), sink());
        sim.add_host(h(1), sink());
        sim.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 0.5,
                ..LinkSpec::default()
            },
        );
        sim.add_fluctuation(
            Duration::from_secs_f64(1.0),
            RandomWalkFluctuation::new(0.1),
        );
        let before = sim.topology().link(h(0), h(1)).unwrap().spec.reliability;
        sim.run_until(SimTime::from_secs_f64(10.0));
        let after = sim.topology().link(h(0), h(1)).unwrap().spec.reliability;
        assert_ne!(
            before, after,
            "ten fluctuation ticks left the link untouched"
        );
        assert!((0.05..=1.0).contains(&after));
        // Deterministic: the same seed walks the same path.
        let mut sim2 = Simulator::new(4);
        sim2.add_host(h(0), sink());
        sim2.add_host(h(1), sink());
        sim2.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 0.5,
                ..LinkSpec::default()
            },
        );
        sim2.add_fluctuation(
            Duration::from_secs_f64(1.0),
            RandomWalkFluctuation::new(0.1),
        );
        sim2.run_until(SimTime::from_secs_f64(10.0));
        assert_eq!(
            after,
            sim2.topology().link(h(0), h(1)).unwrap().spec.reliability
        );
    }

    #[test]
    fn transmissions_serialize_on_a_shared_link() {
        // Two messages of 1000 bytes over a 10 kB/s link with 0.5 s delay:
        // the first transmits 0.0–0.1 and arrives at 0.6; the second waits
        // for the medium, transmits 0.1–0.2, and arrives at 0.7.
        let mut sim = Simulator::new(1);
        sim.add_host(
            h(0),
            Burst {
                peer: h(1),
                count: 2,
                size: 1000,
            },
        );
        sim.add_host(h(1), sink());
        sim.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 1.0,
                bandwidth: 10_000.0,
                delay: 0.5,
            },
        );
        sim.run_to_completion();
        assert_eq!(sim.now().as_micros(), 700_000);
        assert_eq!(sim.stats().delivered, 2);
    }

    #[test]
    fn conservation_holds_mid_flight() {
        let mut sim = Simulator::new(1);
        sim.add_host(
            h(0),
            Burst {
                peer: h(1),
                count: 50,
                size: 1000,
            },
        );
        sim.add_host(h(1), sink());
        sim.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 0.8,
                bandwidth: 10_000.0, // 0.1 s per message: many in flight
                delay: 0.5,
            },
        );
        // Stop mid-transfer.
        sim.run_until(SimTime::from_secs_f64(0.55));
        let s = sim.stats();
        assert!(sim.in_flight() > 0, "expected messages still in flight");
        assert_eq!(
            s.sent,
            s.delivered + s.dropped_loss + s.dropped_disconnected + sim.in_flight() as u64
        );
        // And after completion nothing is in flight.
        sim.run_to_completion();
        assert_eq!(sim.in_flight(), 0);
        let s = sim.stats();
        assert_eq!(
            s.sent,
            s.delivered + s.dropped_loss + s.dropped_disconnected
        );
    }

    #[test]
    fn run_until_advances_clock_past_empty_queue() {
        let mut sim = Simulator::new(1);
        sim.run_until(SimTime::from_secs_f64(5.0));
        assert_eq!(sim.now(), SimTime::from_secs_f64(5.0));
    }

    #[test]
    fn telemetry_counters_match_ground_truth() {
        let mut sim = Simulator::new(7);
        sim.set_telemetry(Telemetry::default());
        sim.add_host(
            h(0),
            Burst {
                peer: h(1),
                count: 200,
                size: 10,
            },
        );
        sim.add_host(h(1), sink());
        sim.set_link(
            h(0),
            h(1),
            LinkSpec {
                reliability: 0.7,
                ..LinkSpec::default()
            },
        );
        sim.run_to_completion();
        let metrics = sim.telemetry().metrics();
        assert_eq!(metrics.counter("net.sent").get(), sim.stats().sent);
        assert_eq!(
            metrics.counter("net.delivered").get(),
            sim.stats().delivered
        );
        assert_eq!(
            metrics.counter("net.dropped_loss").get(),
            sim.stats().dropped_loss
        );
        // Every loss left a journal record with its reason.
        let losses = sim
            .telemetry()
            .journal()
            .snapshot()
            .iter()
            .filter(|e| e.name == "net.link.drop")
            .count() as u64;
        assert_eq!(losses, sim.stats().dropped_loss);
        sim.publish_gauges();
        assert_eq!(
            metrics.gauge("net.truth.delivery_ratio").get(),
            sim.stats().delivery_ratio()
        );
    }

    #[test]
    fn topology_transitions_are_journaled() {
        let mut sim = Simulator::new(1);
        sim.set_telemetry(Telemetry::default());
        sim.add_host(h(0), sink());
        sim.add_host(h(1), sink());
        sim.set_link(h(0), h(1), LinkSpec::default());
        sim.partition(&[vec![h(0)], vec![h(1)]]);
        sim.heal();
        sim.set_link_up(h(0), h(1), false);
        sim.set_host_up(h(1), false);
        let names: Vec<String> = sim
            .telemetry()
            .journal()
            .snapshot()
            .iter()
            .map(|e| e.name.to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "net.partition",
                "net.partition.heal",
                "net.link.state",
                "net.host.state"
            ]
        );
    }

    struct Periodic2 {
        ticks: u32,
    }
    impl Node for Periodic2 {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(Duration::from_millis(100), 0);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
            self.ticks += 1;
            ctx.set_timer(Duration::from_millis(100), 0);
        }
    }

    #[test]
    fn crashed_host_resumes_periodic_timers_on_restart() {
        use crate::faultplan::{FaultKind, FaultPlan};
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), Periodic2 { ticks: 0 });
        sim.install_fault_plan(&FaultPlan::new().episode(
            1.0,
            1.0,
            FaultKind::HostCrash { host: h(0) },
        ));
        sim.run_until(SimTime::from_secs_f64(2.0));
        let at_restart = sim.node_ref::<Periodic2>(h(0)).unwrap().ticks;
        sim.run_until(SimTime::from_secs_f64(3.0));
        let after = sim.node_ref::<Periodic2>(h(0)).unwrap().ticks;
        assert!(
            after >= at_restart + 9,
            "periodic loop did not resume after restart: {at_restart} -> {after}"
        );
        // And the down window really silenced it: ~20 ticks, not ~30.
        assert!(after < 25, "crash window did not suppress ticks: {after}");
    }

    /// Records the order in which restart and timer callbacks run.
    struct RestartProbe {
        log: Vec<&'static str>,
    }
    impl Node for RestartProbe {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(Duration::from_millis(100), 0);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
            self.log.push("timer");
            ctx.set_timer(Duration::from_millis(100), 0);
        }
        fn on_restart(&mut self, _ctx: &mut NodeCtx<'_>) {
            self.log.push("restart");
        }
    }

    #[test]
    fn restart_hook_runs_before_deferred_timer_replay() {
        use crate::faultplan::{FaultKind, FaultPlan};
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), RestartProbe { log: Vec::new() });
        sim.install_fault_plan(&FaultPlan::new().episode(
            1.0,
            1.0,
            FaultKind::HostCrash { host: h(0) },
        ));
        sim.run_until(SimTime::from_secs_f64(2.05));
        let log = &sim.node_ref::<RestartProbe>(h(0)).unwrap().log;
        let restart = log
            .iter()
            .position(|&s| s == "restart")
            .expect("on_restart ran");
        // Ticks before the crash, then the restart hook, then the deferred
        // replay — recovery always observes the world before new callbacks.
        assert!(log[..restart].iter().all(|&s| s == "timer"));
        assert_eq!(log[restart + 1], "timer", "deferred replay follows hook");
    }

    #[test]
    fn redundant_host_up_is_not_a_restart() {
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), RestartProbe { log: Vec::new() });
        sim.set_host_up(h(0), true);
        assert!(
            sim.node_ref::<RestartProbe>(h(0)).unwrap().log.is_empty(),
            "up -> up must not invoke the restart hook"
        );
    }

    #[test]
    fn degrade_episode_restores_the_original_spec() {
        use crate::faultplan::{FaultKind, FaultPlan};
        let mut sim = Simulator::new(1);
        sim.add_host(h(0), sink());
        sim.add_host(h(1), sink());
        let spec = LinkSpec {
            reliability: 0.9,
            bandwidth: 50_000.0,
            delay: 0.01,
        };
        sim.set_link(h(0), h(1), spec);
        sim.install_fault_plan(&FaultPlan::new().episode(
            1.0,
            2.0,
            FaultKind::LinkDegrade {
                a: h(0),
                b: h(1),
                reliability_factor: 0.5,
                bandwidth_factor: 0.1,
            },
        ));
        sim.run_until(SimTime::from_secs_f64(1.5));
        let mid = sim.topology().link(h(0), h(1)).unwrap().spec;
        assert!((mid.reliability - 0.45).abs() < 1e-12);
        assert!((mid.bandwidth - 5_000.0).abs() < 1e-9);
        sim.run_until(SimTime::from_secs_f64(4.0));
        assert_eq!(sim.topology().link(h(0), h(1)).unwrap().spec, spec);
    }

    #[test]
    fn partition_episode_heals_only_its_own_cuts() {
        use crate::faultplan::{FaultKind, FaultPlan};
        let mut sim = Simulator::new(1);
        for n in 0..3 {
            sim.add_host(h(n), sink());
        }
        sim.set_link(h(0), h(1), LinkSpec::default());
        sim.set_link(h(1), h(2), LinkSpec::default());
        sim.set_link(h(0), h(2), LinkSpec::default());
        // An unrelated outage on 0–1 must survive the partition heal.
        sim.set_link_up(h(0), h(1), false);
        sim.install_fault_plan(&FaultPlan::new().episode(
            1.0,
            1.0,
            FaultKind::Partition {
                groups: vec![vec![h(0), h(1)], vec![h(2)]],
            },
        ));
        sim.run_until(SimTime::from_secs_f64(1.5));
        assert!(!sim.topology().reachable(h(0), h(2)));
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert!(sim.topology().reachable(h(0), h(2)));
        assert!(sim.topology().reachable(h(1), h(2)));
        // Partition start raised in-group links; heal_between left 0–1 as
        // the partition set it (up), documenting partition() semantics.
        assert!(sim.topology().reachable(h(0), h(1)));
    }

    #[test]
    fn same_fault_plan_and_seed_export_identical_journals() {
        use crate::faultplan::{FaultKind, FaultPlan};
        fn run() -> String {
            let plan = FaultPlan::new()
                .episode(0.5, 1.0, FaultKind::HostCrash { host: h(1) })
                .episode(
                    2.0,
                    1.0,
                    FaultKind::LinkFlap {
                        a: h(0),
                        b: h(1),
                        period_secs: 0.25,
                    },
                );
            let plan = FaultPlan::from_json(&plan.to_json()).unwrap();
            let mut sim = Simulator::new(77);
            sim.set_telemetry(Telemetry::default());
            sim.add_host(
                h(0),
                Burst {
                    peer: h(1),
                    count: 200,
                    size: 10,
                },
            );
            sim.add_host(h(1), sink());
            sim.set_link(
                h(0),
                h(1),
                LinkSpec {
                    reliability: 0.8,
                    ..LinkSpec::default()
                },
            );
            sim.install_fault_plan(&plan);
            sim.run_until(SimTime::from_secs_f64(5.0));
            sim.telemetry().export_jsonl()
        }
        let a = run();
        assert!(a.contains("net.fault"));
        assert_eq!(a, run(), "same plan + seed must replay byte-identically");
    }

    #[test]
    fn seeded_runs_export_byte_identical_journals() {
        use crate::fluctuation::RandomWalkFluctuation;
        fn run(seed: u64) -> String {
            let mut sim = Simulator::new(seed);
            sim.set_telemetry(Telemetry::default());
            sim.add_host(
                h(0),
                Burst {
                    peer: h(1),
                    count: 300,
                    size: 10,
                },
            );
            sim.add_host(h(1), sink());
            sim.set_link(
                h(0),
                h(1),
                LinkSpec {
                    reliability: 0.6,
                    ..LinkSpec::default()
                },
            );
            sim.add_fluctuation(
                Duration::from_secs_f64(0.5),
                RandomWalkFluctuation::new(0.1),
            );
            sim.run_until(SimTime::from_secs_f64(5.0));
            sim.telemetry().export_jsonl()
        }
        let a = run(42);
        assert!(!a.is_empty());
        assert_eq!(a, run(42), "same seed must export identical journals");
    }
}
