//! Simulated time.
//!
//! Time is kept in integer microseconds so that event ordering is exact and
//! platform-independent — a precondition for deterministic simulation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time (microseconds since simulation start).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// The far future; no event is ever scheduled at or after this instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from seconds (fractions truncated to microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time must be finite and non-negative, got {secs}"
        );
        SimTime((secs * 1e6) as u64)
    }

    /// This instant in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

/// A span of simulated time (microseconds).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis.saturating_mul(1_000))
    }

    /// Creates a span from seconds (fractions truncated to microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        Duration((secs * 1e6) as u64)
    }

    /// This span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Checked multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
        let d = Duration::from_millis(20);
        assert_eq!(d.as_micros(), 20_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100) + Duration::from_micros(50);
        assert_eq!(t.as_micros(), 150);
        assert_eq!((t - SimTime::from_micros(100)).as_micros(), 50);
        // Saturating subtraction: earlier - later = 0.
        assert_eq!((SimTime::ZERO - t).as_micros(), 0);
    }

    #[test]
    fn ordering_is_total() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::from_micros(1) < SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime::from_secs_f64(2.0).to_string(), "t=2.000000s");
        assert_eq!(Duration::from_millis(3).to_string(), "0.003000s");
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += Duration::from_micros(7);
        assert_eq!(t.as_micros(), 7);
    }
}
