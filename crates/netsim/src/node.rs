//! Node behavior: the code that runs "on" each simulated host.

use crate::message::Message;
use crate::time::{Duration, SimTime};
use redep_model::HostId;
use std::any::Any;

/// Behavior of one simulated host.
///
/// All callbacks receive a [`NodeCtx`] through which the node sends messages
/// and arms timers. Callbacks run to completion before the simulation
/// proceeds (the simulator is a classic sequential discrete-event loop), so a
/// node needs no internal synchronization.
///
/// The `Any` supertrait lets tests and harnesses inspect node state after a
/// run via [`Simulator::node_ref`](crate::Simulator::node_ref). The `Send`
/// supertrait lets the sharded simulator move nodes onto worker threads —
/// callbacks still never run concurrently for one host, so nodes need no
/// internal synchronization.
pub trait Node: Any + Send {
    /// Called once when the simulation starts (or when the node is added to
    /// a running simulation).
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let _ = ctx;
    }

    /// Called when a message is delivered to this host.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, msg: Message) {
        let _ = (ctx, msg);
    }

    /// Called when a timer armed with [`NodeCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called when this host comes back up after a crash
    /// ([`Simulator::set_host_up`](crate::Simulator::set_host_up) with
    /// `up = true` after a down period).
    ///
    /// Runs *before* any timer deferred during the outage is replayed and
    /// before any same-instant queued event is delivered, so a durable node
    /// can rebuild its state (e.g. replay a checkpoint + journal) and have
    /// everything that follows observe the recovered state. The default does
    /// nothing: a node without durable state simply resumes with whatever it
    /// held in memory, which is the pre-durability simulator behavior.
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        let _ = ctx;
    }
}

/// What a node asked the simulator to do during a callback.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum NodeAction {
    Send {
        dst: HostId,
        payload: Vec<u8>,
        size: u64,
    },
    SetTimer {
        delay: Duration,
        token: u64,
    },
}

/// The interface a node uses to act on the world during a callback.
///
/// Actions are buffered and applied by the simulator after the callback
/// returns, all stamped with the callback's instant.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    host: HostId,
    now: SimTime,
    actions: &'a mut Vec<NodeAction>,
}

impl<'a> NodeCtx<'a> {
    pub(crate) fn new(host: HostId, now: SimTime, actions: &'a mut Vec<NodeAction>) -> Self {
        NodeCtx { host, now, actions }
    }

    /// The host this node runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `payload` to `dst`, accounting `size` bytes on the wire.
    ///
    /// Delivery is not guaranteed: the message is subject to the link's
    /// reliability, and is dropped outright when no up link exists.
    pub fn send(&mut self, dst: HostId, payload: impl Into<Vec<u8>>, size: u64) {
        self.actions.push(NodeAction::Send {
            dst,
            payload: payload.into(),
            size,
        });
    }

    /// Arms a one-shot timer that fires `delay` from now with `token`.
    /// Re-arm inside [`Node::on_timer`] for periodic behavior.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.actions.push(NodeAction::SetTimer { delay, token });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_actions_in_order() {
        let mut actions = Vec::new();
        let mut ctx = NodeCtx::new(HostId::new(3), SimTime::from_micros(5), &mut actions);
        assert_eq!(ctx.host(), HostId::new(3));
        assert_eq!(ctx.now(), SimTime::from_micros(5));
        ctx.send(HostId::new(1), vec![1], 10);
        ctx.set_timer(Duration::from_millis(1), 7);
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], NodeAction::Send { size: 10, .. }));
        assert!(matches!(actions[1], NodeAction::SetTimer { token: 7, .. }));
    }
}
