//! Property-based tests on the model's core invariants.

use proptest::prelude::*;
use redep_model::{
    Availability, CommunicationVolume, ConstraintChecker, Deployment, Generator, GeneratorConfig,
    HostPair, Latency, LinkSecurity, Objective, ParamTable, Range,
};

/// Strategy: a generator configuration small enough to stay fast while
/// exploring structure (densities, sizes, seeds).
fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        1usize..=5,
        1usize..=12,
        0.0f64..=1.0,
        0.0f64..=1.0,
        any::<u64>(),
    )
        .prop_map(|(hosts, components, pd, ld, seed)| GeneratorConfig {
            hosts,
            components,
            physical_density: pd,
            logical_density: ld,
            seed,
            // Memory ranges that always admit a deployment, so the property
            // exercises structure rather than generation failure.
            host_memory: Range::new(1_000.0, 2_000.0),
            component_memory: Range::new(1.0, 10.0),
            ..GeneratorConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_systems_are_internally_consistent(config in config_strategy()) {
        let system = Generator::generate(&config).unwrap();
        system.model.validate().unwrap();
        system.initial.validate(&system.model).unwrap();
        system.model.constraints().check(&system.model, &system.initial).unwrap();
        prop_assert_eq!(system.model.host_count(), config.hosts);
        prop_assert_eq!(system.model.component_count(), config.components);
    }

    #[test]
    fn objectives_stay_in_their_ranges(config in config_strategy()) {
        let system = Generator::generate(&config).unwrap();
        let availability = Availability.evaluate(&system.model, &system.initial);
        prop_assert!((0.0..=1.0).contains(&availability), "availability {}", availability);
        let security = LinkSecurity.evaluate(&system.model, &system.initial);
        prop_assert!((0.0..=1.0).contains(&security));
        prop_assert!(Latency::new().evaluate(&system.model, &system.initial) >= 0.0);
        prop_assert!(CommunicationVolume.evaluate(&system.model, &system.initial) >= 0.0);
    }

    #[test]
    fn valid_deployments_pass_incremental_admission(config in config_strategy()) {
        // If the full deployment satisfies the constraints, then every
        // single assignment must be admissible against the rest — the
        // contract constructive algorithms rely on.
        let system = Generator::generate(&config).unwrap();
        for (c, h) in system.initial.iter() {
            let mut without = system.initial.clone();
            without.unassign(c);
            prop_assert!(
                system.model.constraints().admits(&system.model, &without, c, h),
                "assignment {c}->{h} inadmissible although the deployment is valid"
            );
        }
    }

    #[test]
    fn deployment_diff_transforms_before_into_after(
        config in config_strategy(),
        reshuffle_seed in any::<u64>(),
    ) {
        let system = Generator::generate(&config).unwrap();
        let after = {
            // A second valid-ish deployment: rotate every component one host.
            let hosts = system.model.host_ids();
            let mut d = Deployment::new();
            for (i, (c, h)) in system.initial.iter().enumerate() {
                let shift = ((reshuffle_seed as usize) + i) % hosts.len();
                let idx = (hosts.iter().position(|x| *x == h).unwrap() + shift) % hosts.len();
                d.assign(c, hosts[idx]);
            }
            d
        };
        let mut replay = system.initial.clone();
        for m in system.initial.diff(&after) {
            replay.assign(m.component, m.to);
        }
        prop_assert_eq!(replay, after);
    }

    #[test]
    fn model_serde_roundtrips(config in config_strategy()) {
        let system = Generator::generate(&config).unwrap();
        let json = serde_json::to_string(&system.model).unwrap();
        let back: redep_model::DeploymentModel = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, system.model);
    }

    #[test]
    fn host_pair_is_order_insensitive(a in 0u32..100, b in 0u32..100) {
        prop_assume!(a != b);
        let p = HostPair::new(redep_model::HostId::new(a), redep_model::HostId::new(b));
        let q = HostPair::new(redep_model::HostId::new(b), redep_model::HostId::new(a));
        prop_assert_eq!(p, q);
        prop_assert!(p.lo() < p.hi());
    }

    #[test]
    fn param_table_set_then_get(entries in proptest::collection::vec(("[a-z]{1,8}", -1e6f64..1e6), 0..20)) {
        let mut t = ParamTable::new();
        for (k, v) in &entries {
            t.set(k.clone(), *v);
        }
        // The last write per key wins.
        let mut expected = std::collections::BTreeMap::new();
        for (k, v) in &entries {
            expected.insert(k.clone(), *v);
        }
        prop_assert_eq!(t.len(), expected.len());
        for (k, v) in expected {
            prop_assert_eq!(t.get_f64(k), Some(v));
        }
    }

    #[test]
    fn collocating_a_chatty_pair_never_hurts_availability(config in config_strategy()) {
        // Moving one component onto its heaviest peer's host cannot reduce
        // the availability contribution of that pair (local = 1.0), and by
        // the exchange, total availability without that link unchanged or
        // changed; the *objective* must reflect at least the local gain for
        // an isolated pair. We test the weaker, always-true invariant:
        // a fully collocated deployment has availability 1.
        let system = Generator::generate(&config).unwrap();
        let host = system.model.host_ids()[0];
        let all_on_one: Deployment = system
            .model
            .component_ids()
            .into_iter()
            .map(|c| (c, host))
            .collect();
        let availability = Availability.evaluate(&system.model, &all_on_one);
        prop_assert!((availability - 1.0).abs() < 1e-12);
    }
}
