//! Property-based equivalence between the compiled evaluation core and the
//! naive objective implementations.
//!
//! The compiled path ([`redep_model::CompiledModel`] +
//! [`redep_model::IncrementalScore`]) must agree with the trait-object path
//! to within 1e-12 on generated systems: full scores, arbitrary delta-move
//! chains (including unassignments and re-assignments), and the compiled
//! constraint checker's feasibility verdicts.

use proptest::prelude::*;
use redep_model::{
    Availability, CommunicationVolume, CompiledModel, Composite, ConstraintChecker, Generator,
    GeneratorConfig, IncrementalScore, Latency, LinkSecurity, Objective, PathAwareAvailability,
    Range, UNASSIGNED,
};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        1usize..=5,
        1usize..=10,
        0.0f64..=1.0,
        0.0f64..=1.0,
        any::<u64>(),
    )
        .prop_map(|(hosts, components, pd, ld, seed)| GeneratorConfig {
            hosts,
            components,
            physical_density: pd,
            logical_density: ld,
            seed,
            // Memory ranges that always admit a deployment, so the property
            // exercises scoring rather than generation failure.
            host_memory: Range::new(1_000.0, 2_000.0),
            component_memory: Range::new(1.0, 10.0),
            ..GeneratorConfig::default()
        })
}

/// Every objective the compiled core supports, as boxed trait objects.
fn objectives() -> Vec<Box<dyn Objective>> {
    vec![
        Box::new(Availability),
        Box::new(PathAwareAvailability),
        Box::new(Latency::new()),
        Box::new(CommunicationVolume),
        Box::new(LinkSecurity),
        Box::new(
            Composite::new()
                .with("availability", Availability, 2.0)
                .with("latency", Latency::new(), 1.0)
                .with("volume", CommunicationVolume, 0.5),
        ),
    ]
}

/// 1e-12 agreement, relative for values above 1 in magnitude (unbounded
/// objectives like latency and volume accumulate delta drift proportional
/// to their magnitude).
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

/// Decodes a raw index vector into a (possibly partial) dense assignment:
/// indices beyond the host count become [`UNASSIGNED`].
fn to_assignment(raw: &[u32], n_hosts: usize, n_comps: usize) -> Vec<u32> {
    (0..n_comps)
        .map(|i| {
            let v = raw[i % raw.len().max(1)] % (n_hosts as u32 + 1);
            if v == n_hosts as u32 {
                UNASSIGNED
            } else {
                v
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn score_full_matches_naive_evaluate(
        config in config_strategy(),
        raw in proptest::collection::vec(any::<u32>(), 1..16),
    ) {
        let system = Generator::generate(&config).unwrap();
        let cm = CompiledModel::compile(&system.model);
        let assign = to_assignment(&raw, cm.n_hosts(), cm.n_comps());
        let deployment = cm.decode_assignment(&assign);
        for obj in objectives() {
            let co = obj.compiled().expect("objective compiles");
            let mut inc = IncrementalScore::new(&cm, &co);
            let compiled = inc.assign_from(&assign);
            let naive = obj.evaluate(&system.model, &deployment);
            prop_assert!(
                close(compiled, naive),
                "{}: compiled {compiled} vs naive {naive}",
                obj.name()
            );
        }
    }

    #[test]
    fn delta_chains_match_naive_evaluate(
        config in config_strategy(),
        raw in proptest::collection::vec(any::<u32>(), 1..16),
        moves in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..24),
    ) {
        let system = Generator::generate(&config).unwrap();
        let cm = CompiledModel::compile(&system.model);
        let n_hosts = cm.n_hosts();
        let n_comps = cm.n_comps();
        let assign = to_assignment(&raw, n_hosts, n_comps);
        for obj in objectives() {
            let co = obj.compiled().expect("objective compiles");
            let mut inc = IncrementalScore::new(&cm, &co);
            let start = inc.assign_from(&assign);
            let mut current = assign.clone();
            // Delta drift per move is rounding residue at the scale of the
            // running sums the chain has passed through — which for composite
            // parts can exceed the finalized score's scale. The algorithms
            // therefore re-anchor with score_full whenever a delta value
            // comes within NEAR_EPS = 1e-9 of the incumbent; the chain must
            // stay comfortably inside that margin.
            let mut scale = start.abs().max(1.0);
            let mut steps = 0.0;
            for &(rc, rh) in &moves {
                let comp = rc % n_comps as u32;
                // One extra slot unassigns the component.
                let h = rh % (n_hosts as u32 + 1);
                let host = if h == n_hosts as u32 { UNASSIGNED } else { h };
                // peek must predict exactly what set commits.
                let predicted = inc.peek(comp, host);
                inc.set(comp, host);
                current[comp as usize] = host;
                prop_assert_eq!(inc.value(), predicted, "{}", obj.name());
                let naive = obj.evaluate(&system.model, &cm.decode_assignment(&current));
                scale = scale.max(naive.abs());
                steps += 1.0;
                prop_assert!(
                    (inc.value() - naive).abs() <= 1e-10 * scale * steps,
                    "{}: delta {} vs naive {naive} after move {comp}->{host}",
                    obj.name(),
                    inc.value()
                );
            }
            // Re-anchoring with a full rescore erases the drift entirely, and
            // afterwards the running value is the pure score.
            let pure = inc.score_full();
            let naive = obj.evaluate(&system.model, &cm.decode_assignment(&current));
            prop_assert!(close(pure, naive), "{}", obj.name());
            prop_assert_eq!(inc.value(), pure, "{}", obj.name());
        }
    }

    #[test]
    fn compiled_constraints_agree_with_naive_checker(
        config in config_strategy(),
        raw in proptest::collection::vec(any::<u32>(), 1..16),
    ) {
        let system = Generator::generate(&config).unwrap();
        let cm = CompiledModel::compile(&system.model);
        let checker = system.model.constraints();
        let Some(cc) = checker.compile(&system.model, &cm) else {
            // Non-compilable constraint sets fall back to the naive path by
            // construction; nothing to compare.
            return Ok(());
        };
        let assign = to_assignment(&raw, cm.n_hosts(), cm.n_comps());
        let deployment = cm.decode_assignment(&assign);
        prop_assert_eq!(
            cc.check(&assign),
            checker.check(&system.model, &deployment).is_ok(),
            "feasibility verdicts disagree"
        );
        // Incremental admission agrees as well.
        for comp in 0..cm.n_comps() as u32 {
            for host in 0..cm.n_hosts() as u32 {
                let mut lifted = assign.clone();
                lifted[comp as usize] = UNASSIGNED;
                let mut without = deployment.clone();
                without.unassign(cm.comp_ids()[comp as usize]);
                prop_assert_eq!(
                    cc.admits(&lifted, comp, host),
                    checker.admits(
                        &system.model,
                        &without,
                        cm.comp_ids()[comp as usize],
                        cm.host_ids()[host as usize],
                    ),
                    "admission verdicts disagree for {comp}->{host}"
                );
            }
        }
    }

    #[test]
    fn initial_deployments_score_identically(config in config_strategy()) {
        // The generator's initial deployment is the common-case input: the
        // compiled score must be bit-identical to the naive one there (the
        // link iteration orders coincide by construction).
        let system = Generator::generate(&config).unwrap();
        let cm = CompiledModel::compile(&system.model);
        let assign = cm.compile_assignment(&system.initial);
        for obj in [&Availability as &dyn Objective, &LinkSecurity, &CommunicationVolume] {
            let co = obj.compiled().expect("objective compiles");
            let mut inc = IncrementalScore::new(&cm, &co);
            let compiled = inc.assign_from(&assign);
            let naive = obj.evaluate(&system.model, &system.initial);
            prop_assert_eq!(compiled, naive, "{}", obj.name());
        }
    }
}
