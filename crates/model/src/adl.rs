//! Architecture-description documents (the xADL 2.0 integration point).
//!
//! The paper integrates DeSi with xADL 2.0 so that properties known at design
//! time ("initial deployment of the system, available memory on each host,
//! etc.") flow from the architecture description into the model. This module
//! provides the equivalent channel as a schema-versioned JSON document: the
//! document embeds a full [`DeploymentModel`] (with its extensible parameter
//! tables and constraints) and optionally the initial [`Deployment`].

use crate::deployment::Deployment;
use crate::model::DeploymentModel;
use crate::ModelError;
use serde::{Deserialize, Serialize};

/// The document schema version this library reads and writes.
pub const SCHEMA_VERSION: u32 = 1;

/// An architecture-description document: design-time user input for the
/// framework's `UserInput` component.
///
/// # Example
///
/// ```
/// use redep_model::{AdlDocument, DeploymentModel};
///
/// let mut model = DeploymentModel::new();
/// model.add_host("hq")?;
/// let doc = AdlDocument::new(model.clone(), None);
/// let json = doc.to_json()?;
/// let back = AdlDocument::from_json(&json)?;
/// assert_eq!(back.model, model);
/// # Ok::<(), redep_model::ModelError>(())
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AdlDocument {
    /// Schema version; documents with a newer major version are rejected.
    pub schema: u32,
    /// The described deployment architecture.
    pub model: DeploymentModel,
    /// The initial deployment, when the architect prescribes one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deployment: Option<Deployment>,
}

impl AdlDocument {
    /// Wraps a model (and optional initial deployment) into a document.
    pub fn new(model: DeploymentModel, deployment: Option<Deployment>) -> Self {
        AdlDocument {
            schema: SCHEMA_VERSION,
            model,
            deployment,
        }
    }

    /// Serializes the document to pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Adl`] if serialization fails (it cannot for
    /// well-formed models; the error path exists for forward compatibility).
    pub fn to_json(&self) -> Result<String, ModelError> {
        serde_json::to_string_pretty(self).map_err(|e| ModelError::Adl(e.to_string()))
    }

    /// Parses and validates a document from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Adl`] for malformed JSON or an unsupported
    /// schema version, and propagates model-integrity errors (dangling link
    /// endpoints, constraints over unknown parts, deployments onto unknown
    /// hosts).
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        let doc: AdlDocument =
            serde_json::from_str(json).map_err(|e| ModelError::Adl(e.to_string()))?;
        if doc.schema > SCHEMA_VERSION {
            return Err(ModelError::Adl(format!(
                "unsupported schema version {} (this library reads ≤ {})",
                doc.schema, SCHEMA_VERSION
            )));
        }
        doc.model.validate()?;
        if let Some(d) = &doc.deployment {
            d.validate(&doc.model)?;
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};

    #[test]
    fn roundtrip_preserves_generated_system() {
        let s = Generator::generate(&GeneratorConfig::sized(4, 10)).unwrap();
        let doc = AdlDocument::new(s.model.clone(), Some(s.initial.clone()));
        let json = doc.to_json().unwrap();
        let back = AdlDocument::from_json(&json).unwrap();
        assert_eq!(back.model, s.model);
        assert_eq!(back.deployment, Some(s.initial));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            AdlDocument::from_json("{not json"),
            Err(ModelError::Adl(_))
        ));
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let mut model = DeploymentModel::new();
        model.add_host("h").unwrap();
        let mut doc = AdlDocument::new(model, None);
        doc.schema = SCHEMA_VERSION + 1;
        let json = serde_json::to_string(&doc).unwrap();
        let err = AdlDocument::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn invalid_deployment_is_rejected() {
        let mut model = DeploymentModel::new();
        let h = model.add_host("h").unwrap();
        let c = model.add_component("c").unwrap();
        let mut other = Deployment::new();
        other.assign(c, crate::HostId::new(42)); // unknown host
        let doc = AdlDocument {
            schema: SCHEMA_VERSION,
            model,
            deployment: Some(other),
        };
        let json = serde_json::to_string(&doc).unwrap();
        assert!(AdlDocument::from_json(&json).is_err());
        let _ = h;
    }

    #[test]
    fn document_without_deployment_omits_field() {
        let doc = AdlDocument::new(DeploymentModel::new(), None);
        let json = doc.to_json().unwrap();
        assert!(!json.contains("deployment"));
    }
}
