//! Deployments: mappings of components onto hosts.

use crate::ids::{ComponentId, HostId};
use crate::model::DeploymentModel;
use crate::ModelError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A deployment architecture: an assignment of components to hosts.
///
/// A `Deployment` is data, independent of any particular
/// [`DeploymentModel`] — algorithms produce candidate deployments, objectives
/// score them against a model, and effectors realize them in a running system.
///
/// # Example
///
/// ```
/// use redep_model::{Deployment, ComponentId, HostId};
/// let mut d = Deployment::new();
/// d.assign(ComponentId::new(0), HostId::new(1));
/// assert_eq!(d.host_of(ComponentId::new(0)), Some(HostId::new(1)));
/// assert_eq!(d.len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Deployment {
    assignment: BTreeMap<ComponentId, HostId>,
}

impl Deployment {
    /// Creates an empty deployment.
    pub fn new() -> Self {
        Deployment::default()
    }

    /// Assigns `component` to `host`, returning the previous host if any.
    pub fn assign(&mut self, component: ComponentId, host: HostId) -> Option<HostId> {
        self.assignment.insert(component, host)
    }

    /// Removes the assignment of `component`, returning its host if any.
    pub fn unassign(&mut self, component: ComponentId) -> Option<HostId> {
        self.assignment.remove(&component)
    }

    /// Returns the host `component` is deployed on.
    pub fn host_of(&self, component: ComponentId) -> Option<HostId> {
        self.assignment.get(&component).copied()
    }

    /// Returns `true` if the two components are deployed on the same host.
    ///
    /// Unassigned components are on no host, hence never collocated.
    pub fn collocated(&self, a: ComponentId, b: ComponentId) -> bool {
        match (self.host_of(a), self.host_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Returns the components deployed on `host`, in id order.
    pub fn components_on(&self, host: HostId) -> Vec<ComponentId> {
        self.assignment
            .iter()
            .filter(|(_, h)| **h == host)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Number of assigned components.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` if no component is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Iterates over `(component, host)` pairs in component order.
    pub fn iter(&self) -> impl Iterator<Item = (ComponentId, HostId)> + '_ {
        self.assignment.iter().map(|(c, h)| (*c, *h))
    }

    /// Checks that every component of `model` is assigned to an existing host.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::IncompleteDeployment`] for the first unassigned
    /// component, [`ModelError::UnknownComponent`] for an assignment of a
    /// component the model does not contain, and [`ModelError::UnknownHost`]
    /// for an assignment onto a host the model does not contain.
    pub fn validate(&self, model: &DeploymentModel) -> Result<(), ModelError> {
        for (c, h) in self.iter() {
            if !model.contains_component(c) {
                return Err(ModelError::UnknownComponent(c));
            }
            if !model.contains_host(h) {
                return Err(ModelError::UnknownHost(h));
            }
        }
        for c in model.component_ids() {
            if self.host_of(c).is_none() {
                return Err(ModelError::IncompleteDeployment(c));
            }
        }
        Ok(())
    }

    /// Computes the migrations needed to turn `self` into `target`.
    ///
    /// Components present only in `target` appear with `from: None`
    /// (fresh installation); components present in both but on different
    /// hosts appear with `from: Some(old_host)`. Components missing from
    /// `target` are not reported — redeployment never silently drops
    /// components; removal is an explicit model edit.
    pub fn diff(&self, target: &Deployment) -> Vec<Migration> {
        let mut migrations = Vec::new();
        for (c, to) in target.iter() {
            match self.host_of(c) {
                Some(from) if from == to => {}
                from => migrations.push(Migration {
                    component: c,
                    from,
                    to,
                }),
            }
        }
        migrations
    }
}

impl FromIterator<(ComponentId, HostId)> for Deployment {
    fn from_iter<I: IntoIterator<Item = (ComponentId, HostId)>>(iter: I) -> Self {
        Deployment {
            assignment: iter.into_iter().collect(),
        }
    }
}

impl Extend<(ComponentId, HostId)> for Deployment {
    fn extend<I: IntoIterator<Item = (ComponentId, HostId)>>(&mut self, iter: I) {
        self.assignment.extend(iter);
    }
}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (c, h)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}→{h}")?;
        }
        write!(f, "}}")
    }
}

/// A single component relocation produced by [`Deployment::diff`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Migration {
    /// The component being moved.
    pub component: ComponentId,
    /// The host the component currently resides on (`None` = fresh install).
    pub from: Option<HostId>,
    /// The destination host.
    pub to: HostId,
}

impl fmt::Display for Migration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.from {
            Some(from) => write!(f, "{}: {} → {}", self.component, from, self.to),
            None => write!(f, "{}: (new) → {}", self.component, self.to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }
    fn c(n: u32) -> ComponentId {
        ComponentId::new(n)
    }

    #[test]
    fn assign_and_reassign() {
        let mut d = Deployment::new();
        assert_eq!(d.assign(c(0), h(0)), None);
        assert_eq!(d.assign(c(0), h(1)), Some(h(0)));
        assert_eq!(d.host_of(c(0)), Some(h(1)));
    }

    #[test]
    fn unassign_removes() {
        let mut d = Deployment::new();
        d.assign(c(0), h(0));
        assert_eq!(d.unassign(c(0)), Some(h(0)));
        assert_eq!(d.host_of(c(0)), None);
        assert!(d.is_empty());
    }

    #[test]
    fn collocation_requires_both_assigned() {
        let mut d = Deployment::new();
        d.assign(c(0), h(0));
        assert!(!d.collocated(c(0), c(1)));
        d.assign(c(1), h(0));
        assert!(d.collocated(c(0), c(1)));
        d.assign(c(1), h(1));
        assert!(!d.collocated(c(0), c(1)));
    }

    #[test]
    fn components_on_host_is_ordered() {
        let mut d = Deployment::new();
        d.assign(c(3), h(0));
        d.assign(c(1), h(0));
        d.assign(c(2), h(1));
        assert_eq!(d.components_on(h(0)), vec![c(1), c(3)]);
        assert_eq!(d.components_on(h(1)), vec![c(2)]);
        assert!(d.components_on(h(9)).is_empty());
    }

    #[test]
    fn diff_reports_moves_and_installs() {
        let mut before = Deployment::new();
        before.assign(c(0), h(0));
        before.assign(c(1), h(0));
        let mut after = Deployment::new();
        after.assign(c(0), h(1)); // moved
        after.assign(c(1), h(0)); // unchanged
        after.assign(c(2), h(2)); // new

        let migrations = before.diff(&after);
        assert_eq!(migrations.len(), 2);
        assert!(migrations.contains(&Migration {
            component: c(0),
            from: Some(h(0)),
            to: h(1)
        }));
        assert!(migrations.contains(&Migration {
            component: c(2),
            from: None,
            to: h(2)
        }));
    }

    #[test]
    fn diff_of_identical_deployments_is_empty() {
        let d: Deployment = [(c(0), h(0)), (c(1), h(1))].into_iter().collect();
        assert!(d.diff(&d.clone()).is_empty());
    }

    #[test]
    fn display_is_compact() {
        let d: Deployment = [(c(0), h(1))].into_iter().collect();
        assert_eq!(d.to_string(), "{c0→h1}");
    }

    #[test]
    fn migration_display() {
        let m = Migration {
            component: c(1),
            from: Some(h(0)),
            to: h(2),
        };
        assert_eq!(m.to_string(), "c1: h0 → h2");
        let m = Migration {
            component: c(1),
            from: None,
            to: h(2),
        };
        assert_eq!(m.to_string(), "c1: (new) → h2");
    }

    #[test]
    fn serde_roundtrip() {
        let d: Deployment = [(c(0), h(1)), (c(5), h(2))].into_iter().collect();
        let json = serde_json::to_string(&d).unwrap();
        let back: Deployment = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
