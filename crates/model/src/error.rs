//! Error types for model construction and manipulation.

use crate::ids::{ComponentId, HostId};
use std::error::Error;
use std::fmt;

/// An error produced while building or manipulating a [`DeploymentModel`].
///
/// [`DeploymentModel`]: crate::DeploymentModel
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ModelError {
    /// The referenced host does not exist in the model.
    UnknownHost(HostId),
    /// The referenced component does not exist in the model.
    UnknownComponent(ComponentId),
    /// No physical link exists between the two hosts.
    NoPhysicalLink(HostId, HostId),
    /// No logical link exists between the two components.
    NoLogicalLink(ComponentId, ComponentId),
    /// A deployment does not assign every component to a host.
    IncompleteDeployment(ComponentId),
    /// A host still carries deployed components and cannot be removed.
    HostInUse(HostId),
    /// An architecture-description document could not be parsed or is
    /// incompatible with this library version.
    Adl(String),
    /// The generator could not produce a valid system for the given
    /// configuration (e.g. components cannot fit into host memories).
    Generation(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownHost(h) => write!(f, "unknown host {h}"),
            ModelError::UnknownComponent(c) => write!(f, "unknown component {c}"),
            ModelError::NoPhysicalLink(a, b) => {
                write!(f, "no physical link between {a} and {b}")
            }
            ModelError::NoLogicalLink(a, b) => {
                write!(f, "no logical link between {a} and {b}")
            }
            ModelError::IncompleteDeployment(c) => {
                write!(f, "deployment does not assign component {c} to any host")
            }
            ModelError::HostInUse(h) => {
                write!(f, "host {h} still has deployed components")
            }
            ModelError::Adl(msg) => write!(f, "invalid architecture description: {msg}"),
            ModelError::Generation(msg) => write!(f, "generation failed: {msg}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ModelError::UnknownHost(HostId::new(3));
        assert_eq!(e.to_string(), "unknown host h3");
        let e = ModelError::IncompleteDeployment(ComponentId::new(1));
        assert!(e.to_string().contains("c1"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ModelError>();
    }
}
