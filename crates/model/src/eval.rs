//! Compiled evaluation core: dense-index model snapshots and incremental
//! (delta) objective scoring.
//!
//! The paper's premise is that redeployment algorithms must score very large
//! numbers of candidate deployments at runtime (§5: the Exact algorithm's kⁿ
//! blow-up is the reason Avala, Stochastic and DecAp exist). The naive
//! [`Objective::evaluate`] walks a `BTreeMap` of logical links with per-pair
//! `BTreeMap` reliability lookups on *every* candidate — even when only one
//! component moved. This module removes that cost without changing any
//! observable result:
//!
//! * [`CompiledModel`] — an immutable snapshot of a [`DeploymentModel`] with
//!   hosts/components flattened to dense `u32` indices, logical links in a
//!   flat `Vec<CompiledLink>` plus a per-component incident-link CSR index,
//!   and host-pair reliability/security/delay/bandwidth as dense n×n
//!   matrices. On first use it computes (and caches) the all-pairs best-path
//!   reliability matrix, turning [`PathAwareAvailability`] from a Dijkstra
//!   per pair into an O(1) lookup per link while objectives that never need
//!   paths skip the O(n²) build entirely.
//! * [`CompiledObjective`] — the flattened form of the six built-in
//!   objectives (obtained via [`Objective::compiled`]).
//! * [`IncrementalScore`] — `score_full` / `set` / `peek` delta scoring:
//!   moving one component re-touches only its incident links, O(deg(c))
//!   instead of O(L).
//! * [`CompiledConstraints`] — the dense form of [`ConstraintSet`] /
//!   [`MemoryConstraint`] checks (obtained via
//!   [`ConstraintChecker::compile`]).
//! * [`Uncompiled`] — an opt-out wrapper forcing the naive path (used by
//!   benchmarks and equivalence tests).
//!
//! # Exactness
//!
//! The compiled evaluators are written to be *bit-identical* to the naive
//! ones for full evaluations: links are stored in the same
//! ([`ComponentPair`]) order the `BTreeMap` iterates in, sums run
//! left-to-right in that order, and the path-reliability matrix replays
//! [`DeploymentModel::best_path`]'s exact search per pair. Delta updates
//! (`set`/`peek`) are subject to ordinary floating-point drift of the order
//! of a few ULPs; callers that need exact agreement with the naive path
//! (e.g. for recording a best-so-far value) re-anchor with
//! [`IncrementalScore::score_full`].
//!
//! [`Objective::evaluate`]: crate::Objective::evaluate
//! [`Objective::compiled`]: crate::Objective::compiled
//! [`ConstraintChecker::compile`]: crate::ConstraintChecker::compile
//! [`ConstraintSet`]: crate::ConstraintSet
//! [`MemoryConstraint`]: crate::MemoryConstraint
//! [`PathAwareAvailability`]: crate::PathAwareAvailability
//! [`ComponentPair`]: crate::ComponentPair

use crate::deployment::Deployment;
use crate::ids::{ComponentId, HostId};
use crate::model::DeploymentModel;
use crate::objectives::Direction;
use std::sync::OnceLock;

/// Sentinel host index marking an unassigned component in a dense
/// assignment vector.
pub const UNASSIGNED: u32 = u32::MAX;

/// One logical link in dense-index form.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CompiledLink {
    /// Dense index of the lower-id endpoint component.
    pub a: u32,
    /// Dense index of the higher-id endpoint component.
    pub b: u32,
    /// Interaction frequency (events per time unit).
    pub frequency: f64,
    /// Average event size.
    pub event_size: f64,
    /// Precomputed `frequency * event_size`.
    pub volume: f64,
}

impl CompiledLink {
    /// The dense index of the endpoint opposite `comp`.
    #[inline]
    pub fn other(&self, comp: u32) -> u32 {
        if self.a == comp {
            self.b
        } else {
            self.a
        }
    }
}

/// An immutable dense-index snapshot of a [`DeploymentModel`].
///
/// Compile once per analysis, then evaluate millions of candidate
/// assignments against it. The snapshot does not observe later model edits.
#[derive(Clone, Debug)]
pub struct CompiledModel {
    host_ids: Vec<HostId>,
    comp_ids: Vec<ComponentId>,
    links: Vec<CompiledLink>,
    /// CSR offsets into `incident_links`, length `n_comps + 1`.
    incident_offsets: Vec<u32>,
    /// Link indices incident to each component, grouped per component and
    /// ordered ascending by the opposite endpoint's dense index.
    incident_links: Vec<u32>,
    reliability: Vec<f64>,
    security: Vec<f64>,
    delay: Vec<f64>,
    bandwidth: Vec<f64>,
    connected: Vec<bool>,
    /// All-pairs best-path reliability, computed lazily on first use: the
    /// O(n²) best-path replay is prohibitive at fleet scale and only
    /// [`PathAwareAvailability`](crate::PathAwareAvailability) needs it.
    path_reliability: OnceLock<Vec<f64>>,
    /// Σ frequency over links with positive frequency, in link order — the
    /// denominator shared by the frequency-weighted objectives.
    total_weight: f64,
    comp_memory: Vec<f64>,
    host_memory: Vec<f64>,
}

impl PartialEq for CompiledModel {
    /// Structural equality; the lazily-built path-reliability cache is
    /// derived data and deliberately excluded so an evaluated snapshot still
    /// equals a fresh compile of the same model.
    fn eq(&self, other: &Self) -> bool {
        self.host_ids == other.host_ids
            && self.comp_ids == other.comp_ids
            && self.links == other.links
            && self.reliability == other.reliability
            && self.security == other.security
            && self.delay == other.delay
            && self.bandwidth == other.bandwidth
            && self.connected == other.connected
            && self.total_weight == other.total_weight
            && self.comp_memory == other.comp_memory
            && self.host_memory == other.host_memory
    }
}

/// Builds the per-component incident-link CSR index. Because `links` are
/// sorted by (lo, hi) pairs, each component's incident list — taking the
/// `hi` role first, then the `lo` role — comes out ordered ascending by the
/// opposite endpoint, matching `logical_neighbors` order.
fn build_incident_index(links: &[CompiledLink], n_comps: usize) -> (Vec<u32>, Vec<u32>) {
    let mut degree = vec![0u32; n_comps];
    for l in links {
        degree[l.a as usize] += 1;
        degree[l.b as usize] += 1;
    }
    let mut incident_offsets = vec![0u32; n_comps + 1];
    for c in 0..n_comps {
        incident_offsets[c + 1] = incident_offsets[c] + degree[c];
    }
    let mut incident_links = vec![0u32; incident_offsets[n_comps] as usize];
    let mut cursor: Vec<u32> = incident_offsets[..n_comps].to_vec();
    // Pass 1: links where the component is the higher endpoint (the
    // opposite endpoint is *smaller*), in link order — ascending other.
    for (li, l) in links.iter().enumerate() {
        let c = l.b as usize;
        incident_links[cursor[c] as usize] = li as u32;
        cursor[c] += 1;
    }
    // Pass 2: links where the component is the lower endpoint (the
    // opposite endpoint is *larger*), in link order — ascending other.
    for (li, l) in links.iter().enumerate() {
        let c = l.a as usize;
        incident_links[cursor[c] as usize] = li as u32;
        cursor[c] += 1;
    }
    (incident_offsets, incident_links)
}

impl CompiledModel {
    /// Builds the snapshot.
    pub fn compile(model: &DeploymentModel) -> CompiledModel {
        let host_ids = model.host_ids(); // ascending
        let comp_ids = model.component_ids(); // ascending
        let n = host_ids.len();

        let host_index = |h: HostId| host_ids.binary_search(&h).ok();
        let comp_index = |c: ComponentId| comp_ids.binary_search(&c).ok();

        // Host-pair matrices, mirroring the DeploymentModel accessors:
        // reliability/security are 1.0 on the diagonal and 0.0 for missing
        // links; delay is 0.0 / ∞; bandwidth is ∞ / 0.0.
        let mut reliability = vec![0.0; n * n];
        let mut security = vec![0.0; n * n];
        let mut delay = vec![f64::INFINITY; n * n];
        let mut bandwidth = vec![0.0; n * n];
        let mut connected = vec![false; n * n];
        for i in 0..n {
            reliability[i * n + i] = 1.0;
            security[i * n + i] = 1.0;
            delay[i * n + i] = 0.0;
            bandwidth[i * n + i] = f64::INFINITY;
        }
        for l in model.physical_links() {
            let (Some(a), Some(b)) = (host_index(l.ends().lo()), host_index(l.ends().hi())) else {
                continue;
            };
            for (x, y) in [(a, b), (b, a)] {
                reliability[x * n + y] = l.reliability();
                security[x * n + y] = l.security();
                delay[x * n + y] = l.delay();
                bandwidth[x * n + y] = l.bandwidth();
                connected[x * n + y] = true;
            }
        }

        // Logical links in BTreeMap (ComponentPair) order — the exact order
        // the naive objective loops iterate in.
        let mut links = Vec::with_capacity(model.logical_link_count());
        let mut total_weight = 0.0;
        for l in model.logical_links() {
            let (Some(a), Some(b)) = (comp_index(l.ends().lo()), comp_index(l.ends().hi())) else {
                continue;
            };
            let frequency = l.frequency();
            if frequency > 0.0 || frequency.is_nan() {
                // Mirrors the naive `freq <= 0.0 → skip` gate (NaN is *not*
                // skipped there, so it is not skipped here either).
                total_weight += frequency;
            }
            links.push(CompiledLink {
                a: a as u32,
                b: b as u32,
                frequency,
                event_size: l.event_size(),
                volume: frequency * l.event_size(),
            });
        }

        let (incident_offsets, incident_links) = build_incident_index(&links, comp_ids.len());

        let comp_memory = comp_ids
            .iter()
            .map(|&c| {
                model
                    .component(c)
                    .map(|x| x.required_memory())
                    .unwrap_or(0.0)
            })
            .collect();
        let host_memory = host_ids
            .iter()
            .map(|&h| model.host(h).map(|x| x.memory()).unwrap_or(0.0))
            .collect();

        CompiledModel {
            host_ids,
            comp_ids,
            links,
            incident_offsets,
            incident_links,
            reliability,
            security,
            delay,
            bandwidth,
            connected,
            path_reliability: OnceLock::new(),
            total_weight,
            comp_memory,
            host_memory,
        }
    }

    /// Assembles a snapshot directly from dense parts — the hierarchy pass
    /// uses this to build the super-node coarse model without materializing
    /// a naive [`DeploymentModel`]. `host_ids` and `comp_ids` must be
    /// ascending; matrices are row-major `n×n` over `host_ids`.
    #[allow(clippy::too_many_arguments)] // dense assembly mirrors the struct
    pub(crate) fn from_parts(
        host_ids: Vec<HostId>,
        comp_ids: Vec<ComponentId>,
        links: Vec<CompiledLink>,
        reliability: Vec<f64>,
        security: Vec<f64>,
        delay: Vec<f64>,
        bandwidth: Vec<f64>,
        connected: Vec<bool>,
        comp_memory: Vec<f64>,
        host_memory: Vec<f64>,
    ) -> CompiledModel {
        debug_assert!(host_ids.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(comp_ids.windows(2).all(|w| w[0] < w[1]));
        let mut total_weight = 0.0;
        for l in &links {
            if l.frequency > 0.0 || l.frequency.is_nan() {
                total_weight += l.frequency;
            }
        }
        let (incident_offsets, incident_links) = build_incident_index(&links, comp_ids.len());
        CompiledModel {
            host_ids,
            comp_ids,
            links,
            incident_offsets,
            incident_links,
            reliability,
            security,
            delay,
            bandwidth,
            connected,
            path_reliability: OnceLock::new(),
            total_weight,
            comp_memory,
            host_memory,
        }
    }

    /// All-pairs best-path reliabilities, replaying
    /// [`DeploymentModel::best_path`]'s search per pair so the results are
    /// bit-identical (including its tie-breaking through stable frontier
    /// sorting). Unreachable pairs score 0.0, matching the naive
    /// `best_path(..).map(|p| p.reliability).unwrap_or(0.0)`.
    fn all_pairs_path_reliability(&self) -> Vec<f64> {
        let n = self.host_ids.len();
        let mut out = vec![0.0; n * n];
        let mut best = vec![0.0f64; n];
        let mut frontier: Vec<usize> = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    out[a * n + b] = 1.0;
                    continue;
                }
                best.iter_mut().for_each(|x| *x = 0.0);
                best[a] = 1.0;
                frontier.clear();
                frontier.push(a);
                loop {
                    // Extract the frontier host with the highest reliability
                    // so far (stable sort + pop, exactly as best_path does).
                    frontier.sort_by(|&x, &y| {
                        best[x]
                            .partial_cmp(&best[y])
                            .expect("reliabilities are finite")
                    });
                    let Some(u) = frontier.pop() else { break };
                    if u == b {
                        break;
                    }
                    let through = best[u];
                    for v in (0..n).filter(|&v| self.connected[u * n + v]) {
                        let r = through * self.reliability[u * n + v];
                        if r > 0.0 && r > best[v] {
                            best[v] = r;
                            frontier.push(v);
                        }
                    }
                }
                out[a * n + b] = best[b];
            }
        }
        out
    }

    /// Number of hosts.
    #[inline]
    pub fn n_hosts(&self) -> usize {
        self.host_ids.len()
    }

    /// Number of components.
    #[inline]
    pub fn n_comps(&self) -> usize {
        self.comp_ids.len()
    }

    /// Host ids in dense-index order (ascending).
    #[inline]
    pub fn host_ids(&self) -> &[HostId] {
        &self.host_ids
    }

    /// Component ids in dense-index order (ascending).
    #[inline]
    pub fn comp_ids(&self) -> &[ComponentId] {
        &self.comp_ids
    }

    /// The logical links in [`ComponentPair`](crate::ComponentPair) order.
    #[inline]
    pub fn links(&self) -> &[CompiledLink] {
        &self.links
    }

    /// Indices (into [`links`](Self::links)) of the links incident to
    /// `comp`, ordered ascending by the opposite endpoint's dense index.
    #[inline]
    pub fn incident(&self, comp: u32) -> &[u32] {
        let lo = self.incident_offsets[comp as usize] as usize;
        let hi = self.incident_offsets[comp as usize + 1] as usize;
        &self.incident_links[lo..hi]
    }

    /// Direct-link reliability between two dense host indices.
    #[inline]
    pub fn reliability(&self, a: u32, b: u32) -> f64 {
        self.reliability[a as usize * self.host_ids.len() + b as usize]
    }

    /// Link security between two dense host indices.
    #[inline]
    pub fn security(&self, a: u32, b: u32) -> f64 {
        self.security[a as usize * self.host_ids.len() + b as usize]
    }

    /// Transmission delay between two dense host indices.
    #[inline]
    pub fn delay(&self, a: u32, b: u32) -> f64 {
        self.delay[a as usize * self.host_ids.len() + b as usize]
    }

    /// Bandwidth between two dense host indices.
    #[inline]
    pub fn bandwidth(&self, a: u32, b: u32) -> f64 {
        self.bandwidth[a as usize * self.host_ids.len() + b as usize]
    }

    /// Whether a physical link connects two dense host indices.
    #[inline]
    pub fn connected(&self, a: u32, b: u32) -> bool {
        self.connected[a as usize * self.host_ids.len() + b as usize]
    }

    /// Best-path reliability between two dense host indices (1.0 on the
    /// diagonal, 0.0 when unreachable).
    ///
    /// The underlying all-pairs matrix is built on first call (O(n²)
    /// best-path replays) and cached; snapshots that never score a
    /// path-aware objective never pay for it.
    #[inline]
    pub fn path_reliability(&self, a: u32, b: u32) -> f64 {
        let matrix = self
            .path_reliability
            .get_or_init(|| self.all_pairs_path_reliability());
        matrix[a as usize * self.host_ids.len() + b as usize]
    }

    /// Σ frequency over positive-frequency links, the shared denominator of
    /// the frequency-weighted objectives.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Required memory per dense component index.
    #[inline]
    pub fn comp_memory(&self) -> &[f64] {
        &self.comp_memory
    }

    /// Available memory per dense host index.
    #[inline]
    pub fn host_memory(&self) -> &[f64] {
        &self.host_memory
    }

    /// Dense index of a host id, if the host is in the snapshot.
    #[inline]
    pub fn host_index(&self, h: HostId) -> Option<u32> {
        self.host_ids.binary_search(&h).ok().map(|i| i as u32)
    }

    /// Dense index of a component id, if the component is in the snapshot.
    #[inline]
    pub fn comp_index(&self, c: ComponentId) -> Option<u32> {
        self.comp_ids.binary_search(&c).ok().map(|i| i as u32)
    }

    /// Flattens a [`Deployment`] over this model into a dense assignment
    /// vector. Components of the model missing from the deployment (and
    /// components assigned to hosts outside the model) map to
    /// [`UNASSIGNED`]; components unknown to the model are ignored.
    pub fn compile_assignment(&self, deployment: &Deployment) -> Vec<u32> {
        self.comp_ids
            .iter()
            .map(|&c| {
                deployment
                    .host_of(c)
                    .and_then(|h| self.host_index(h))
                    .unwrap_or(UNASSIGNED)
            })
            .collect()
    }

    /// Expands a dense assignment back into a [`Deployment`].
    pub fn decode_assignment(&self, assign: &[u32]) -> Deployment {
        let mut d = Deployment::new();
        for (i, &h) in assign.iter().enumerate() {
            if h != UNASSIGNED {
                d.assign(self.comp_ids[i], self.host_ids[h as usize]);
            }
        }
        d
    }
}

// ---- compiled objectives --------------------------------------------------

/// One flattened objective term.
///
/// Each kind mirrors the per-link arithmetic of the corresponding naive
/// [`Objective`](crate::Objective) implementation exactly.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PartKind {
    /// [`crate::Availability`]: frequency-weighted direct-link reliability.
    Availability,
    /// [`crate::PathAwareAvailability`]: frequency-weighted best-path
    /// reliability.
    PathAwareAvailability,
    /// [`crate::Latency`]: frequency-weighted mean remote-interaction cost.
    Latency {
        /// Latency charged for disconnected or unassigned interactions.
        penalty: f64,
    },
    /// [`crate::CommunicationVolume`]: total remote traffic.
    CommunicationVolume,
    /// [`crate::LinkSecurity`]: frequency-weighted link security.
    LinkSecurity,
}

impl PartKind {
    /// Whether this term is maximized or minimized.
    pub fn direction(&self) -> Direction {
        match self {
            PartKind::Availability | PartKind::PathAwareAvailability | PartKind::LinkSecurity => {
                Direction::Maximize
            }
            PartKind::Latency { .. } | PartKind::CommunicationVolume => Direction::Minimize,
        }
    }

    /// This link's contribution to the part's raw sum under the given
    /// endpoint assignments ([`UNASSIGNED`] allowed).
    #[inline]
    fn contribution(&self, m: &CompiledModel, link: &CompiledLink, ha: u32, hb: u32) -> f64 {
        match *self {
            PartKind::Availability => {
                if link.frequency <= 0.0 {
                    return 0.0;
                }
                if ha != UNASSIGNED && hb != UNASSIGNED {
                    link.frequency * m.reliability(ha, hb)
                } else {
                    0.0
                }
            }
            PartKind::PathAwareAvailability => {
                if link.frequency <= 0.0 {
                    return 0.0;
                }
                if ha != UNASSIGNED && hb != UNASSIGNED {
                    link.frequency * m.path_reliability(ha, hb)
                } else {
                    0.0
                }
            }
            PartKind::Latency { penalty } => {
                if link.frequency <= 0.0 {
                    return 0.0;
                }
                let cost = if ha != UNASSIGNED && hb != UNASSIGNED {
                    if ha == hb {
                        0.0
                    } else if m.connected(ha, hb) {
                        m.delay(ha, hb) + link.event_size / m.bandwidth(ha, hb)
                    } else {
                        penalty
                    }
                } else {
                    penalty
                };
                link.frequency * cost
            }
            PartKind::CommunicationVolume => {
                if ha != UNASSIGNED && hb != UNASSIGNED && ha == hb {
                    0.0
                } else {
                    link.volume
                }
            }
            PartKind::LinkSecurity => {
                if link.frequency <= 0.0 {
                    return 0.0;
                }
                if ha != UNASSIGNED && hb != UNASSIGNED {
                    link.frequency * m.security(ha, hb)
                } else {
                    0.0
                }
            }
        }
    }

    /// Maps the accumulated raw sum into the objective's natural units,
    /// mirroring the naive finalization (`Σ weighted / Σ freq` with the
    /// empty-interaction defaults).
    #[inline]
    fn finalize(&self, m: &CompiledModel, sum: f64) -> f64 {
        match self {
            PartKind::Availability | PartKind::PathAwareAvailability | PartKind::LinkSecurity => {
                if m.total_weight() == 0.0 {
                    1.0
                } else {
                    sum / m.total_weight()
                }
            }
            PartKind::Latency { .. } => {
                if m.total_weight() == 0.0 {
                    0.0
                } else {
                    sum / m.total_weight()
                }
            }
            PartKind::CommunicationVolume => sum,
        }
    }

    /// The larger-is-better utility of a finalized value, mirroring
    /// [`Objective::utility_of`](crate::Objective::utility_of).
    #[inline]
    fn utility_of(&self, value: f64) -> f64 {
        match self.direction() {
            Direction::Maximize => value,
            Direction::Minimize => 1.0 / (1.0 + value.max(0.0)),
        }
    }
}

/// The flattened form of an [`Objective`](crate::Objective): either a single
/// [`PartKind`] or a weighted composite of them.
#[derive(Clone, PartialEq, Debug)]
pub struct CompiledObjective {
    parts: Vec<(PartKind, f64)>,
    composite: bool,
}

impl CompiledObjective {
    /// A single-term objective.
    pub fn single(kind: PartKind) -> CompiledObjective {
        CompiledObjective {
            parts: vec![(kind, 1.0)],
            composite: false,
        }
    }

    /// A weighted composite of terms (maximized, like
    /// [`Composite`](crate::Composite)).
    pub fn composite(parts: Vec<(PartKind, f64)>) -> CompiledObjective {
        CompiledObjective {
            parts,
            composite: true,
        }
    }

    /// The terms with their weights.
    pub fn parts(&self) -> &[(PartKind, f64)] {
        &self.parts
    }

    /// Whether this is a composite (weighted-utility) objective.
    pub fn is_composite(&self) -> bool {
        self.composite
    }

    /// The single term, when this is not a composite.
    pub fn as_single(&self) -> Option<PartKind> {
        if self.composite {
            None
        } else {
            self.parts.first().map(|(k, _)| *k)
        }
    }

    /// Whether the score is maximized or minimized.
    pub fn direction(&self) -> Direction {
        if self.composite {
            Direction::Maximize
        } else {
            self.parts[0].0.direction()
        }
    }

    /// Returns `true` if `candidate` is strictly better than `incumbent`.
    #[inline]
    pub fn is_improvement(&self, incumbent: f64, candidate: f64) -> bool {
        match self.direction() {
            Direction::Maximize => candidate > incumbent,
            Direction::Minimize => candidate < incumbent,
        }
    }

    /// The worst possible score, used to seed search loops.
    pub fn worst(&self) -> f64 {
        match self.direction() {
            Direction::Maximize => f64::NEG_INFINITY,
            Direction::Minimize => f64::INFINITY,
        }
    }

    /// Final score from per-part raw sums.
    #[inline]
    fn score(&self, sums: &[f64], m: &CompiledModel) -> f64 {
        if !self.composite {
            let (kind, _) = self.parts[0];
            kind.finalize(m, sums[0])
        } else {
            self.parts
                .iter()
                .zip(sums)
                .map(|(&(kind, w), &s)| w * kind.utility_of(kind.finalize(m, s)))
                .sum()
        }
    }
}

// ---- incremental scoring --------------------------------------------------

/// Incremental (delta) scorer over a [`CompiledModel`].
///
/// Holds a dense assignment plus per-part raw sums. [`score_full`] rebuilds
/// the sums by walking every link (bit-identical to the naive evaluator);
/// [`set`] commits a single-component move touching only its incident links
/// (O(deg(c))); [`peek`] prices a move without committing it.
///
/// [`score_full`]: IncrementalScore::score_full
/// [`set`]: IncrementalScore::set
/// [`peek`]: IncrementalScore::peek
#[derive(Clone, Debug)]
pub struct IncrementalScore<'m> {
    model: &'m CompiledModel,
    objective: CompiledObjective,
    assign: Vec<u32>,
    sums: Vec<f64>,
    scratch: Vec<f64>,
    full_evals: u64,
    delta_evals: u64,
}

impl<'m> IncrementalScore<'m> {
    /// Creates a scorer with every component unassigned.
    pub fn new(model: &'m CompiledModel, objective: &CompiledObjective) -> IncrementalScore<'m> {
        let n_parts = objective.parts().len();
        IncrementalScore {
            model,
            objective: objective.clone(),
            assign: vec![UNASSIGNED; model.n_comps()],
            sums: vec![0.0; n_parts],
            scratch: vec![0.0; n_parts],
            full_evals: 0,
            delta_evals: 0,
        }
    }

    /// The model being scored.
    pub fn model(&self) -> &'m CompiledModel {
        self.model
    }

    /// The current dense assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assign
    }

    /// Adopts `assign` and returns its full (pure) score.
    pub fn assign_from(&mut self, assign: &[u32]) -> f64 {
        debug_assert_eq!(assign.len(), self.model.n_comps());
        self.assign.clear();
        self.assign.extend_from_slice(assign);
        self.score_full()
    }

    /// Recomputes every per-part sum by walking all links in link order —
    /// bit-identical to the naive `Objective::evaluate` — and returns the
    /// score. Also re-anchors any drift accumulated by deltas.
    pub fn score_full(&mut self) -> f64 {
        let m = self.model;
        for (p, &(kind, _)) in self.objective.parts().iter().enumerate() {
            let mut sum = 0.0;
            for link in m.links() {
                let ha = self.assign[link.a as usize];
                let hb = self.assign[link.b as usize];
                sum += kind.contribution(m, link, ha, hb);
            }
            self.sums[p] = sum;
        }
        self.full_evals += 1;
        self.value()
    }

    /// The score implied by the current sums (no recomputation).
    #[inline]
    pub fn value(&self) -> f64 {
        self.objective.score(&self.sums, self.model)
    }

    /// Commits moving `comp` to `host` ([`UNASSIGNED`] to unassign),
    /// updating only the incident links' contributions.
    pub fn set(&mut self, comp: u32, host: u32) {
        self.delta_evals += 1;
        let old = self.assign[comp as usize];
        if old == host {
            return;
        }
        let m = self.model;
        for &li in m.incident(comp) {
            let link = &m.links()[li as usize];
            let (oa, ob, na, nb) = if link.a == comp {
                let hb = self.assign[link.b as usize];
                (old, hb, host, hb)
            } else {
                let ha = self.assign[link.a as usize];
                (ha, old, ha, host)
            };
            for (p, &(kind, _)) in self.objective.parts().iter().enumerate() {
                self.sums[p] +=
                    kind.contribution(m, link, na, nb) - kind.contribution(m, link, oa, ob);
            }
        }
        self.assign[comp as usize] = host;
    }

    /// The score the assignment would have after moving `comp` to `host`,
    /// without committing the move.
    pub fn peek(&mut self, comp: u32, host: u32) -> f64 {
        self.delta_evals += 1;
        self.scratch.copy_from_slice(&self.sums);
        let old = self.assign[comp as usize];
        if old != host {
            let m = self.model;
            for &li in m.incident(comp) {
                let link = &m.links()[li as usize];
                let (oa, ob, na, nb) = if link.a == comp {
                    let hb = self.assign[link.b as usize];
                    (old, hb, host, hb)
                } else {
                    let ha = self.assign[link.a as usize];
                    (ha, old, ha, host)
                };
                for (p, &(kind, _)) in self.objective.parts().iter().enumerate() {
                    self.scratch[p] +=
                        kind.contribution(m, link, na, nb) - kind.contribution(m, link, oa, ob);
                }
            }
        }
        self.objective.score(&self.scratch, self.model)
    }

    /// How many full-sum recomputations this scorer performed.
    pub fn full_evaluations(&self) -> u64 {
        self.full_evals
    }

    /// How many delta evaluations (`set` + `peek`) this scorer performed.
    pub fn delta_evaluations(&self) -> u64 {
        self.delta_evals
    }
}

// ---- compiled constraints -------------------------------------------------

/// Kind of a compiled component group constraint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GroupKind {
    /// All members must share a host.
    Collocated,
    /// No two members may share a host.
    Separated,
}

/// The dense form of a constraint checker: a per-component allowed-host
/// mask, component groups, and the built-in memory-capacity check.
///
/// Produced by [`ConstraintChecker::compile`](crate::ConstraintChecker::compile);
/// `check`/`admits` return the same booleans the naive checker's
/// `check(..).is_ok()` / `admits(..)` return for deployments over the
/// compiled model's components and hosts.
#[derive(Clone, PartialEq, Debug)]
pub struct CompiledConstraints {
    n_hosts: usize,
    n_comps: usize,
    require_complete: bool,
    allowed: Vec<bool>,
    groups: Vec<(GroupKind, Vec<u32>)>,
    member_groups: Vec<Vec<u32>>,
    enforce_memory: bool,
    comp_memory: Vec<f64>,
    host_memory: Vec<f64>,
}

impl CompiledConstraints {
    /// Creates a checker admitting everything (subject to `enforce_memory`),
    /// to be narrowed with [`pin_to`](Self::pin_to) /
    /// [`forbid_on`](Self::forbid_on) / [`add_group`](Self::add_group).
    ///
    /// `require_complete` makes [`check`](Self::check) reject assignments
    /// with unassigned components (the [`ConstraintSet`](crate::ConstraintSet)
    /// semantics).
    pub fn new(model: &CompiledModel, require_complete: bool, enforce_memory: bool) -> Self {
        CompiledConstraints {
            n_hosts: model.n_hosts(),
            n_comps: model.n_comps(),
            require_complete,
            allowed: vec![true; model.n_comps() * model.n_hosts()],
            groups: Vec::new(),
            member_groups: vec![Vec::new(); model.n_comps()],
            enforce_memory,
            comp_memory: model.comp_memory().to_vec(),
            host_memory: model.host_memory().to_vec(),
        }
    }

    /// Restricts `comp` to the listed hosts (intersection semantics, like
    /// [`Constraint::PinnedTo`](crate::Constraint::PinnedTo)).
    pub fn pin_to(&mut self, comp: u32, hosts: &[u32]) {
        let row = comp as usize * self.n_hosts;
        for h in 0..self.n_hosts {
            if !hosts.contains(&(h as u32)) {
                self.allowed[row + h] = false;
            }
        }
    }

    /// Forbids `comp` from the listed hosts (like
    /// [`Constraint::NotOn`](crate::Constraint::NotOn)).
    pub fn forbid_on(&mut self, comp: u32, hosts: &[u32]) {
        let row = comp as usize * self.n_hosts;
        for &h in hosts {
            if (h as usize) < self.n_hosts {
                self.allowed[row + h as usize] = false;
            }
        }
    }

    /// Adds a collocation/separation group. Groups with fewer than two
    /// members are dropped (they can never be violated).
    pub fn add_group(&mut self, kind: GroupKind, members: Vec<u32>) {
        if members.len() < 2 {
            return;
        }
        let gi = self.groups.len() as u32;
        for &m in &members {
            self.member_groups[m as usize].push(gi);
        }
        self.groups.push((kind, members));
    }

    /// Checks a complete (dense) assignment, mirroring the naive checker's
    /// `check(..).is_ok()`.
    pub fn check(&self, assign: &[u32]) -> bool {
        if self.require_complete && assign.contains(&UNASSIGNED) {
            return false;
        }
        for (c, &h) in assign.iter().enumerate() {
            if h != UNASSIGNED && !self.allowed[c * self.n_hosts + h as usize] {
                return false;
            }
        }
        for (kind, members) in &self.groups {
            match kind {
                GroupKind::Collocated => {
                    let mut first = UNASSIGNED;
                    for &m in members {
                        let h = assign[m as usize];
                        if h == UNASSIGNED {
                            continue;
                        }
                        if first == UNASSIGNED {
                            first = h;
                        } else if h != first {
                            return false;
                        }
                    }
                }
                GroupKind::Separated => {
                    for (i, &m) in members.iter().enumerate() {
                        let h = assign[m as usize];
                        if h == UNASSIGNED {
                            continue;
                        }
                        for &o in &members[i + 1..] {
                            if assign[o as usize] == h {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        if self.enforce_memory {
            for h in 0..self.n_hosts {
                let mut used = 0.0;
                let mut any = false;
                for (c, &hc) in assign.iter().enumerate() {
                    if hc as usize == h {
                        used += self.comp_memory[c];
                        any = true;
                    }
                }
                if any && used > self.host_memory[h] {
                    return false;
                }
            }
        }
        true
    }

    /// May `comp` be placed on `host` given the (possibly partial)
    /// assignment built so far? Mirrors the naive checker's `admits`,
    /// including its collocation semantics (a member already assigned
    /// elsewhere — `comp` itself included — blocks the move; callers
    /// unassign `comp` first when pricing a relocation).
    pub fn admits(&self, assign: &[u32], comp: u32, host: u32) -> bool {
        let c = comp as usize;
        let h = host as usize;
        if !self.allowed[c * self.n_hosts + h] {
            return false;
        }
        for &g in &self.member_groups[c] {
            let (kind, members) = &self.groups[g as usize];
            match kind {
                GroupKind::Collocated => {
                    for &p in members {
                        let hp = assign[p as usize];
                        if hp != UNASSIGNED && hp != host {
                            return false;
                        }
                    }
                }
                GroupKind::Separated => {
                    for &p in members {
                        if p != comp && assign[p as usize] == host {
                            return false;
                        }
                    }
                }
            }
        }
        if self.enforce_memory {
            let mut used = 0.0;
            for (o, &ho) in assign.iter().enumerate() {
                if ho == host && o != c {
                    used += self.comp_memory[o];
                }
            }
            if used + self.comp_memory[c] > self.host_memory[h] {
                return false;
            }
        }
        true
    }

    /// The per-host memory load of an assignment: Σ required memory of the
    /// components currently assigned to each host. Callers that place many
    /// components in sequence maintain this vector incrementally and use
    /// [`admits_with_load`](Self::admits_with_load) to turn the O(n_comps)
    /// memory rescan inside [`admits`](Self::admits) into an O(1) lookup.
    pub fn load_of(&self, assign: &[u32]) -> Vec<f64> {
        let mut load = vec![0.0; self.n_hosts];
        for (c, &h) in assign.iter().enumerate() {
            if h != UNASSIGNED {
                load[h as usize] += self.comp_memory[c];
            }
        }
        load
    }

    /// [`admits`](Self::admits) with the memory scan replaced by a
    /// caller-maintained per-host load vector. `load` must account for every
    /// assigned component — including `comp` at its current host, which is
    /// subtracted out here, mirroring the naive checker's exclusion of the
    /// component being placed. Returns exactly what `admits` returns, in
    /// O(groups(comp)) instead of O(n_comps).
    pub fn admits_with_load(&self, assign: &[u32], load: &[f64], comp: u32, host: u32) -> bool {
        let c = comp as usize;
        let h = host as usize;
        if !self.allowed[c * self.n_hosts + h] {
            return false;
        }
        for &g in &self.member_groups[c] {
            let (kind, members) = &self.groups[g as usize];
            match kind {
                GroupKind::Collocated => {
                    for &p in members {
                        let hp = assign[p as usize];
                        if hp != UNASSIGNED && hp != host {
                            return false;
                        }
                    }
                }
                GroupKind::Separated => {
                    for &p in members {
                        if p != comp && assign[p as usize] == host {
                            return false;
                        }
                    }
                }
            }
        }
        if self.enforce_memory {
            let mut used = load[h];
            if assign[c] == host {
                used -= self.comp_memory[c];
            }
            if used + self.comp_memory[c] > self.host_memory[h] {
                return false;
            }
        }
        true
    }

    /// Projects the checker onto super-node clusters for the coarse phase of
    /// hierarchical placement: "host" `k` of the projection is cluster `k`.
    ///
    /// * a component may go to a cluster iff at least one of the cluster's
    ///   hosts allows it;
    /// * collocated groups survive (same host ⇒ same cluster);
    /// * separated groups are dropped — distinct hosts may share a cluster,
    ///   so the projection cannot express them (refinement re-checks against
    ///   the exact constraints);
    /// * the memory check compares against aggregate cluster capacity.
    ///
    /// The result is a *relaxation*: every assignment the exact checker
    /// admits maps to an admitted cluster assignment, never the other way
    /// around, so coarse solutions always need the within-cluster
    /// refinement + repair pass to become exact.
    pub fn project_to_clusters(
        &self,
        cluster_of: &[u32],
        n_clusters: usize,
        cluster_capacity: &[f64],
    ) -> CompiledConstraints {
        debug_assert_eq!(cluster_of.len(), self.n_hosts);
        debug_assert_eq!(cluster_capacity.len(), n_clusters);
        let mut allowed = vec![false; self.n_comps * n_clusters];
        for c in 0..self.n_comps {
            for h in 0..self.n_hosts {
                if self.allowed[c * self.n_hosts + h] {
                    allowed[c * n_clusters + cluster_of[h] as usize] = true;
                }
            }
        }
        let mut projected = CompiledConstraints {
            n_hosts: n_clusters,
            n_comps: self.n_comps,
            require_complete: self.require_complete,
            allowed,
            groups: Vec::new(),
            member_groups: vec![Vec::new(); self.n_comps],
            enforce_memory: self.enforce_memory,
            comp_memory: self.comp_memory.clone(),
            host_memory: cluster_capacity.to_vec(),
        };
        for (kind, members) in &self.groups {
            if *kind == GroupKind::Collocated {
                projected.add_group(GroupKind::Collocated, members.clone());
            }
        }
        projected
    }

    /// Number of hosts in the compiled model this checker was built for.
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of components in the compiled model this checker was built for.
    pub fn n_comps(&self) -> usize {
        self.n_comps
    }
}

// ---- opt-out wrapper ------------------------------------------------------

/// Wraps an objective and hides its compiled form, forcing every algorithm
/// onto the naive evaluation path. Used by benchmarks and the
/// compiled-vs-naive equivalence tests.
#[derive(Debug)]
pub struct Uncompiled<'a>(pub &'a dyn crate::Objective);

impl crate::Objective for Uncompiled<'_> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn direction(&self) -> Direction {
        self.0.direction()
    }

    fn evaluate(&self, model: &DeploymentModel, deployment: &Deployment) -> f64 {
        self.0.evaluate(model, deployment)
    }

    fn is_improvement(&self, incumbent: f64, candidate: f64) -> bool {
        self.0.is_improvement(incumbent, candidate)
    }

    fn worst(&self) -> f64 {
        self.0.worst()
    }

    fn utility_of(&self, value: f64) -> f64 {
        self.0.utility_of(value)
    }

    fn utility(&self, model: &DeploymentModel, deployment: &Deployment) -> f64 {
        self.0.utility(model, deployment)
    }

    fn compiled(&self) -> Option<CompiledObjective> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{Constraint, ConstraintChecker, MemoryConstraint};
    use crate::objectives::{
        Availability, CommunicationVolume, Composite, Latency, LinkSecurity, Objective,
        PathAwareAvailability,
    };

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }
    fn c(n: u32) -> ComponentId {
        ComponentId::new(n)
    }

    /// Three hosts in a line (a—b—c), three components in a triangle.
    fn fixture() -> DeploymentModel {
        let mut m = DeploymentModel::new();
        let ha = m.add_host("a").unwrap();
        let hb = m.add_host("b").unwrap();
        let hc = m.add_host("c").unwrap();
        m.set_physical_link(ha, hb, |l| {
            l.set_reliability(0.9);
            l.set_bandwidth(10.0);
            l.set_delay(2.0);
            l.set_security(0.5);
        })
        .unwrap();
        m.set_physical_link(hb, hc, |l| {
            l.set_reliability(0.8);
            l.set_bandwidth(5.0);
            l.set_delay(1.0);
            l.set_security(0.75);
        })
        .unwrap();
        let x = m.add_component("x").unwrap();
        let y = m.add_component("y").unwrap();
        let z = m.add_component("z").unwrap();
        m.set_logical_link(x, y, |l| {
            l.set_frequency(4.0);
            l.set_event_size(20.0);
        })
        .unwrap();
        m.set_logical_link(y, z, |l| {
            l.set_frequency(2.0);
            l.set_event_size(8.0);
        })
        .unwrap();
        m.set_logical_link(x, z, |l| {
            l.set_frequency(1.0);
            l.set_event_size(16.0);
        })
        .unwrap();
        m
    }

    fn all_deployments(n_hosts: u32, n_comps: u32) -> Vec<Deployment> {
        let mut out = Vec::new();
        let total = (n_hosts as usize).pow(n_comps);
        for code in 0..total {
            let mut d = Deployment::new();
            let mut rem = code;
            for comp in 0..n_comps {
                d.assign(c(comp), h((rem % n_hosts as usize) as u32));
                rem /= n_hosts as usize;
            }
            out.push(d);
        }
        out
    }

    fn objectives() -> Vec<Box<dyn Objective>> {
        vec![
            Box::new(Availability),
            Box::new(PathAwareAvailability),
            Box::new(Latency::new()),
            Box::new(CommunicationVolume),
            Box::new(LinkSecurity),
            Box::new(
                Composite::new()
                    .with("availability", PathAwareAvailability, 0.6)
                    .with("latency", Latency::new(), 0.3)
                    .with("security", LinkSecurity, 0.1),
            ),
        ]
    }

    #[test]
    fn compiled_links_follow_btreemap_order() {
        let m = fixture();
        let cm = CompiledModel::compile(&m);
        assert_eq!(cm.n_hosts(), 3);
        assert_eq!(cm.n_comps(), 3);
        let pairs: Vec<(u32, u32)> = cm.links().iter().map(|l| (l.a, l.b)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        // CSR incident lists are ascending by the opposite endpoint.
        for comp in 0..3 {
            let others: Vec<u32> = cm
                .incident(comp)
                .iter()
                .map(|&li| cm.links()[li as usize].other(comp))
                .collect();
            let mut sorted = others.clone();
            sorted.sort_unstable();
            assert_eq!(others, sorted, "incident list of {comp} not ascending");
        }
    }

    #[test]
    fn path_reliability_matrix_matches_best_path() {
        let m = fixture();
        let cm = CompiledModel::compile(&m);
        for (ai, &a) in cm.host_ids().iter().enumerate() {
            for (bi, &b) in cm.host_ids().iter().enumerate() {
                let naive = if a == b {
                    1.0
                } else {
                    m.best_path(a, b).map(|p| p.reliability).unwrap_or(0.0)
                };
                assert_eq!(
                    cm.path_reliability(ai as u32, bi as u32),
                    naive,
                    "path reliability mismatch for ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn score_full_matches_naive_for_every_objective_and_deployment() {
        let m = fixture();
        let cm = CompiledModel::compile(&m);
        for obj in objectives() {
            let co = obj.compiled().expect("built-in objectives compile");
            let mut inc = IncrementalScore::new(&cm, &co);
            for d in all_deployments(3, 3) {
                let naive = obj.evaluate(&m, &d);
                let compiled = inc.assign_from(&cm.compile_assignment(&d));
                assert!(
                    (naive - compiled).abs() <= 1e-12,
                    "{}: naive {naive} vs compiled {compiled}",
                    obj.name()
                );
            }
        }
    }

    #[test]
    fn partial_deployments_score_identically() {
        let m = fixture();
        let cm = CompiledModel::compile(&m);
        let mut d = Deployment::new();
        d.assign(c(0), h(1));
        for obj in objectives() {
            let co = obj.compiled().unwrap();
            let mut inc = IncrementalScore::new(&cm, &co);
            let compiled = inc.assign_from(&cm.compile_assignment(&d));
            assert!(
                (obj.evaluate(&m, &d) - compiled).abs() <= 1e-12,
                "{}",
                obj.name()
            );
        }
    }

    #[test]
    fn delta_moves_track_full_rescoring() {
        let m = fixture();
        let cm = CompiledModel::compile(&m);
        for obj in objectives() {
            let co = obj.compiled().unwrap();
            let mut inc = IncrementalScore::new(&cm, &co);
            inc.assign_from(&[0, 0, 0]);
            let moves = [
                (0u32, 1u32),
                (2, 2),
                (1, 1),
                (0, 0),
                (2, UNASSIGNED),
                (2, 1),
            ];
            for &(comp, host) in &moves {
                let peeked = inc.peek(comp, host);
                inc.set(comp, host);
                assert_eq!(inc.value(), peeked, "peek must equal committed value");
                let mut fresh = IncrementalScore::new(&cm, &co);
                let full = fresh.assign_from(inc.assignment());
                assert!(
                    (inc.value() - full).abs() <= 1e-9,
                    "{}: delta {} vs full {full}",
                    obj.name(),
                    inc.value()
                );
            }
            assert_eq!(inc.full_evaluations(), 1);
            // each move is scored twice: one peek + one committed set
            assert_eq!(inc.delta_evaluations(), 2 * moves.len() as u64);
        }
    }

    #[test]
    fn assignment_roundtrips_through_dense_form() {
        let m = fixture();
        let cm = CompiledModel::compile(&m);
        let mut d = Deployment::new();
        d.assign(c(0), h(2));
        d.assign(c(2), h(0));
        let dense = cm.compile_assignment(&d);
        assert_eq!(dense, vec![2, UNASSIGNED, 0]);
        assert_eq!(cm.decode_assignment(&dense), d);
    }

    #[test]
    fn compiled_constraints_match_naive_check_and_admits() {
        let mut m = fixture();
        m.constraints_mut().add(Constraint::Separated {
            components: [c(0), c(1)].into_iter().collect(),
        });
        m.constraints_mut().add(Constraint::NotOn {
            component: c(2),
            hosts: [h(0)].into_iter().collect(),
        });
        m.component_mut(c(0)).unwrap().set_required_memory(6.0);
        m.component_mut(c(1)).unwrap().set_required_memory(6.0);
        m.host_mut(h(0)).unwrap().set_memory(10.0);
        m.constraints_mut().set_enforce_memory(true);
        let cm = CompiledModel::compile(&m);
        let naive = m.constraints().clone();
        let cc = naive.compile(&m, &cm).expect("constraint set compiles");

        for d in all_deployments(3, 3) {
            let dense = cm.compile_assignment(&d);
            assert_eq!(
                naive.check(&m, &d).is_ok(),
                cc.check(&dense),
                "check mismatch for {dense:?}"
            );
            for comp in 0..3u32 {
                let mut without = d.clone();
                without.unassign(c(comp));
                let mut dense_w = cm.compile_assignment(&without);
                dense_w[comp as usize] = UNASSIGNED;
                for host in 0..3u32 {
                    assert_eq!(
                        naive.admits(&m, &without, c(comp), h(host)),
                        cc.admits(&dense_w, comp, host),
                        "admits mismatch for {dense_w:?} comp {comp} host {host}"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_constraint_compiles_standalone() {
        let mut m = fixture();
        m.component_mut(c(0)).unwrap().set_required_memory(8.0);
        m.host_mut(h(1)).unwrap().set_memory(4.0);
        let cm = CompiledModel::compile(&m);
        let cc = MemoryConstraint.compile(&m, &cm).expect("memory compiles");
        let mut dense = vec![UNASSIGNED; 3];
        assert!(cc.admits(&dense, 0, 0));
        assert!(!cc.admits(&dense, 0, 1));
        dense[0] = 1;
        assert!(!cc.check(&dense));
        dense[0] = 0;
        assert!(cc.check(&dense));
    }

    #[test]
    fn uncompiled_wrapper_hides_the_compiled_form() {
        let obj = Availability;
        assert!(obj.compiled().is_some());
        let wrapped = Uncompiled(&obj);
        assert!(wrapped.compiled().is_none());
        let m = fixture();
        let d: Deployment = [(c(0), h(0)), (c(1), h(1)), (c(2), h(1))]
            .into_iter()
            .collect();
        assert_eq!(wrapped.evaluate(&m, &d), obj.evaluate(&m, &d));
        assert_eq!(wrapped.name(), obj.name());
    }
}
