//! Physical (host-to-host) and logical (component-to-component) links.
//!
//! Both kinds of link are *undirected*: the pair types normalize their
//! endpoint order so that `(a, b)` and `(b, a)` name the same link.

use crate::ids::{ComponentId, HostId};
use crate::params::{keys, ParamTable, ParamValue};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An unordered pair of distinct hosts, used to key physical links.
///
/// # Example
///
/// ```
/// use redep_model::{HostPair, HostId};
/// let a = HostId::new(1);
/// let b = HostId::new(2);
/// assert_eq!(HostPair::new(a, b), HostPair::new(b, a));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct HostPair {
    lo: HostId,
    hi: HostId,
}

impl HostPair {
    /// Creates a normalized pair.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; a host has no physical link to itself.
    pub fn new(a: HostId, b: HostId) -> Self {
        assert_ne!(a, b, "a physical link must connect two distinct hosts");
        if a < b {
            HostPair { lo: a, hi: b }
        } else {
            HostPair { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    pub fn lo(self) -> HostId {
        self.lo
    }

    /// The larger endpoint.
    pub fn hi(self) -> HostId {
        self.hi
    }

    /// Returns `true` if `h` is one of the endpoints.
    pub fn contains(self, h: HostId) -> bool {
        self.lo == h || self.hi == h
    }

    /// Given one endpoint, returns the other; `None` if `h` is not an endpoint.
    pub fn other(self, h: HostId) -> Option<HostId> {
        if h == self.lo {
            Some(self.hi)
        } else if h == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Display for HostPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}–{}", self.lo, self.hi)
    }
}

/// An unordered pair of distinct components, used to key logical links.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ComponentPair {
    lo: ComponentId,
    hi: ComponentId,
}

impl ComponentPair {
    /// Creates a normalized pair.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; a component has no logical link to itself.
    pub fn new(a: ComponentId, b: ComponentId) -> Self {
        assert_ne!(a, b, "a logical link must connect two distinct components");
        if a < b {
            ComponentPair { lo: a, hi: b }
        } else {
            ComponentPair { lo: b, hi: a }
        }
    }

    /// The smaller endpoint.
    pub fn lo(self) -> ComponentId {
        self.lo
    }

    /// The larger endpoint.
    pub fn hi(self) -> ComponentId {
        self.hi
    }

    /// Returns `true` if `c` is one of the endpoints.
    pub fn contains(self, c: ComponentId) -> bool {
        self.lo == c || self.hi == c
    }

    /// Given one endpoint, returns the other; `None` if `c` is not an endpoint.
    pub fn other(self, c: ComponentId) -> Option<ComponentId> {
        if c == self.lo {
            Some(self.hi)
        } else if c == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Display for ComponentPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}–{}", self.lo, self.hi)
    }
}

/// A network link between two hosts.
///
/// The built-in objectives read three parameters, all optional:
/// reliability (default `1.0`), bandwidth (default unlimited) and
/// transmission delay (default `0.0`). Absence of a physical link between two
/// hosts means they cannot communicate at all (reliability `0.0`).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PhysicalLink {
    ends: HostPair,
    params: ParamTable,
}

impl PhysicalLink {
    /// Creates a link between `a` and `b` with an empty parameter table.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: HostId, b: HostId) -> Self {
        PhysicalLink {
            ends: HostPair::new(a, b),
            params: ParamTable::new(),
        }
    }

    /// Returns the link's endpoints.
    pub fn ends(&self) -> HostPair {
        self.ends
    }

    /// Returns the link's parameter table.
    pub fn params(&self) -> &ParamTable {
        &self.params
    }

    /// Returns the link's parameter table for modification.
    pub fn params_mut(&mut self) -> &mut ParamTable {
        &mut self.params
    }

    /// Link reliability in `[0, 1]` ([`keys::LINK_RELIABILITY`]); default `1.0`.
    pub fn reliability(&self) -> f64 {
        self.params.get_f64_or(keys::LINK_RELIABILITY, 1.0)
    }

    /// Sets the link reliability.
    ///
    /// # Panics
    ///
    /// Panics if `reliability` is not within `[0, 1]`.
    pub fn set_reliability(&mut self, reliability: f64) -> Option<ParamValue> {
        assert!(
            (0.0..=1.0).contains(&reliability),
            "reliability must be in [0, 1], got {reliability}"
        );
        self.params.set(keys::LINK_RELIABILITY, reliability)
    }

    /// Link bandwidth ([`keys::LINK_BANDWIDTH`]); default unlimited.
    pub fn bandwidth(&self) -> f64 {
        self.params.get_f64_or(keys::LINK_BANDWIDTH, f64::INFINITY)
    }

    /// Sets the link bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not positive.
    pub fn set_bandwidth(&mut self, bandwidth: f64) -> Option<ParamValue> {
        assert!(
            bandwidth > 0.0,
            "bandwidth must be positive, got {bandwidth}"
        );
        self.params.set(keys::LINK_BANDWIDTH, bandwidth)
    }

    /// Transmission delay ([`keys::LINK_DELAY`]); default `0.0`.
    pub fn delay(&self) -> f64 {
        self.params.get_f64_or(keys::LINK_DELAY, 0.0)
    }

    /// Sets the transmission delay.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn set_delay(&mut self, delay: f64) -> Option<ParamValue> {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.params.set(keys::LINK_DELAY, delay)
    }

    /// Link security level in `[0, 1]` ([`keys::LINK_SECURITY`]); default `1.0`.
    pub fn security(&self) -> f64 {
        self.params.get_f64_or(keys::LINK_SECURITY, 1.0)
    }

    /// Sets the link security level.
    ///
    /// # Panics
    ///
    /// Panics if `security` is not within `[0, 1]`.
    pub fn set_security(&mut self, security: f64) -> Option<ParamValue> {
        assert!(
            (0.0..=1.0).contains(&security),
            "security must be in [0, 1], got {security}"
        );
        self.params.set(keys::LINK_SECURITY, security)
    }
}

impl fmt::Display for PhysicalLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "physical link {}", self.ends)
    }
}

/// An interaction path between two components.
///
/// The built-in objectives read two parameters: interaction frequency
/// (default `0.0`: no interaction) and average event size (default `1.0`).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LogicalLink {
    ends: ComponentPair,
    params: ParamTable,
}

impl LogicalLink {
    /// Creates a link between `a` and `b` with an empty parameter table.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(a: ComponentId, b: ComponentId) -> Self {
        LogicalLink {
            ends: ComponentPair::new(a, b),
            params: ParamTable::new(),
        }
    }

    /// Returns the link's endpoints.
    pub fn ends(&self) -> ComponentPair {
        self.ends
    }

    /// Returns the link's parameter table.
    pub fn params(&self) -> &ParamTable {
        &self.params
    }

    /// Returns the link's parameter table for modification.
    pub fn params_mut(&mut self) -> &mut ParamTable {
        &mut self.params
    }

    /// Interaction frequency ([`keys::INTERACTION_FREQUENCY`]); default `0.0`.
    pub fn frequency(&self) -> f64 {
        self.params.get_f64_or(keys::INTERACTION_FREQUENCY, 0.0)
    }

    /// Sets the interaction frequency.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is negative.
    pub fn set_frequency(&mut self, frequency: f64) -> Option<ParamValue> {
        assert!(
            frequency >= 0.0,
            "frequency must be non-negative, got {frequency}"
        );
        self.params.set(keys::INTERACTION_FREQUENCY, frequency)
    }

    /// Average event size ([`keys::EVENT_SIZE`]); default `1.0`.
    pub fn event_size(&self) -> f64 {
        self.params.get_f64_or(keys::EVENT_SIZE, 1.0)
    }

    /// Sets the average event size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not positive.
    pub fn set_event_size(&mut self, size: f64) -> Option<ParamValue> {
        assert!(size > 0.0, "event size must be positive, got {size}");
        self.params.set(keys::EVENT_SIZE, size)
    }
}

impl fmt::Display for LogicalLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "logical link {}", self.ends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }
    fn c(n: u32) -> ComponentId {
        ComponentId::new(n)
    }

    #[test]
    fn host_pair_normalizes_order() {
        let p = HostPair::new(h(5), h(2));
        assert_eq!(p.lo(), h(2));
        assert_eq!(p.hi(), h(5));
        assert_eq!(p, HostPair::new(h(2), h(5)));
    }

    #[test]
    #[should_panic(expected = "distinct hosts")]
    fn host_pair_rejects_self_loop() {
        let _ = HostPair::new(h(1), h(1));
    }

    #[test]
    fn host_pair_other_endpoint() {
        let p = HostPair::new(h(1), h(2));
        assert_eq!(p.other(h(1)), Some(h(2)));
        assert_eq!(p.other(h(2)), Some(h(1)));
        assert_eq!(p.other(h(3)), None);
        assert!(p.contains(h(1)) && p.contains(h(2)) && !p.contains(h(9)));
    }

    #[test]
    fn component_pair_normalizes_order() {
        assert_eq!(
            ComponentPair::new(c(9), c(1)),
            ComponentPair::new(c(1), c(9))
        );
    }

    #[test]
    #[should_panic(expected = "distinct components")]
    fn component_pair_rejects_self_loop() {
        let _ = ComponentPair::new(c(4), c(4));
    }

    #[test]
    fn physical_link_defaults() {
        let l = PhysicalLink::new(h(0), h(1));
        assert_eq!(l.reliability(), 1.0);
        assert_eq!(l.bandwidth(), f64::INFINITY);
        assert_eq!(l.delay(), 0.0);
        assert_eq!(l.security(), 1.0);
    }

    #[test]
    fn physical_link_setters() {
        let mut l = PhysicalLink::new(h(0), h(1));
        l.set_reliability(0.5);
        l.set_bandwidth(100.0);
        l.set_delay(2.0);
        l.set_security(0.3);
        assert_eq!(l.reliability(), 0.5);
        assert_eq!(l.bandwidth(), 100.0);
        assert_eq!(l.delay(), 2.0);
        assert_eq!(l.security(), 0.3);
    }

    #[test]
    #[should_panic(expected = "reliability must be in [0, 1]")]
    fn reliability_out_of_range_panics() {
        PhysicalLink::new(h(0), h(1)).set_reliability(1.5);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        PhysicalLink::new(h(0), h(1)).set_bandwidth(0.0);
    }

    #[test]
    fn logical_link_defaults() {
        let l = LogicalLink::new(c(0), c(1));
        assert_eq!(l.frequency(), 0.0);
        assert_eq!(l.event_size(), 1.0);
    }

    #[test]
    fn logical_link_setters() {
        let mut l = LogicalLink::new(c(0), c(1));
        l.set_frequency(12.0);
        l.set_event_size(256.0);
        assert_eq!(l.frequency(), 12.0);
        assert_eq!(l.event_size(), 256.0);
    }

    #[test]
    #[should_panic(expected = "frequency must be non-negative")]
    fn negative_frequency_panics() {
        LogicalLink::new(c(0), c(1)).set_frequency(-1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(HostPair::new(h(1), h(0)).to_string(), "h0–h1");
        assert_eq!(
            PhysicalLink::new(h(1), h(0)).to_string(),
            "physical link h0–h1"
        );
        assert_eq!(
            LogicalLink::new(c(2), c(1)).to_string(),
            "logical link c1–c2"
        );
    }
}
