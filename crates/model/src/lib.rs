//! # redep-model
//!
//! The extensible deployment-architecture **Model** at the heart of the
//! deployment-improvement framework of Malek et al. (DSN 2004).
//!
//! A *deployment architecture* is a distribution of a software system's
//! components onto its hardware hosts. The model is composed of four kinds of
//! parts, exactly as in the paper:
//!
//! * [`Host`] — a hardware host (PDA, laptop, server, …),
//! * [`Component`] — a software component,
//! * [`PhysicalLink`] — a network link between two hosts,
//! * [`LogicalLink`] — an interaction path between two components,
//!
//! each carrying an *arbitrary*, extensible set of parameters (a
//! [`ParamTable`]): memory, CPU, reliability, bandwidth, delay, interaction
//! frequency, event size, security, … New parameters can be attached at any
//! time without changing any code, which is the paper's first extensibility
//! dimension.
//!
//! On top of the structural model the crate provides:
//!
//! * [`Deployment`] — a mapping of components to hosts, with diffing,
//! * [`ConstraintSet`] — location, collocation, memory and bandwidth
//!   constraints restricting the space of valid deployments,
//! * [`Objective`] implementations — [`Availability`], [`Latency`],
//!   [`CommunicationVolume`], [`LinkSecurity`] and weighted [`Composite`]
//!   objectives,
//! * [`Generator`] / [`Modifier`] — the backends of DeSi's controller
//!   subsystem for fabricating and tuning hypothetical architectures,
//! * [`AwarenessGraph`] — per-host partial views for decentralized systems,
//! * [`adl`] — an xADL-style architecture-description document (JSON) for
//!   design-time user input.
//!
//! # Example
//!
//! ```
//! use redep_model::{DeploymentModel, Deployment, Availability, Objective};
//!
//! let mut model = DeploymentModel::new();
//! let hq = model.add_host("headquarters")?;
//! let pda = model.add_host("commander-pda")?;
//! model.set_physical_link(hq, pda, |l| {
//!     l.set_reliability(0.8);
//!     l.set_bandwidth(1_000.0);
//! })?;
//!
//! let gui = model.add_component("status-display")?;
//! let tracker = model.add_component("troop-tracker")?;
//! model.set_logical_link(gui, tracker, |l| l.set_frequency(40.0))?;
//!
//! let mut d = Deployment::new();
//! d.assign(gui, hq);
//! d.assign(tracker, pda);
//!
//! // 40 remote interactions over a 0.8-reliable link => availability 0.8.
//! let availability = Availability.evaluate(&model, &d);
//! assert!((availability - 0.8).abs() < 1e-9);
//! # Ok::<(), redep_model::ModelError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adl;
pub mod awareness;
pub mod constraints;
pub mod deployment;
pub mod error;
pub mod eval;
pub mod generator;
pub mod hierarchy;
pub mod ids;
pub mod links;
pub mod model;
pub mod modifier;
pub mod objectives;
pub mod params;
pub mod parts;

pub use adl::AdlDocument;
pub use awareness::AwarenessGraph;
pub use constraints::{
    BandwidthConstraint, Constraint, ConstraintChecker, ConstraintSet, ConstraintViolation,
    MemoryConstraint,
};
pub use deployment::{Deployment, Migration};
pub use error::ModelError;
pub use eval::{
    CompiledConstraints, CompiledLink, CompiledModel, CompiledObjective, GroupKind,
    IncrementalScore, PartKind, Uncompiled, UNASSIGNED,
};
pub use generator::{GeneratedSystem, Generator, GeneratorConfig, Range};
pub use hierarchy::{Hierarchy, HierarchyConfig};
pub use ids::{ComponentId, HostId};
pub use links::{ComponentPair, HostPair, LogicalLink, PhysicalLink};
pub use model::{DeploymentModel, PathQuality};
pub use modifier::{ModelEdit, Modifier};
pub use objectives::{
    Availability, CommunicationVolume, Composite, Direction, Latency, LinkSecurity, Objective,
    PathAwareAvailability,
};
pub use params::{keys, ParamKey, ParamTable, ParamValue};
pub use parts::{Component, Host};
