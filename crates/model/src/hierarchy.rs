//! Host hierarchy: super-node decomposition for hierarchical placement.
//!
//! Fleet-scale placement cannot afford to treat every host as a peer: the
//! paper's algorithms score candidates against all `k` hosts, so their cost
//! grows with the full host count even though most host pairs are
//! interchangeable from a single component's point of view. This module
//! computes a deterministic partition of the hosts into *clusters*
//! (super-nodes) plus aggregated cluster-pair link matrices, so a placement
//! engine can first solve the small comp→cluster problem on a coarse model
//! and then refine host choices within each cluster independently.
//!
//! Clustering follows the same recipe as `netsim::shard`'s partitioner:
//! hosts joined by low-delay links (delay ≤ [`HierarchyConfig::delay_threshold`])
//! are unioned into connectivity communities with a path-halving union-find,
//! and the resulting units are folded round-robin — in ascending order of
//! their smallest host index — into the target number of clusters. The
//! whole construction is a pure function of the compiled model and the
//! config: no RNG, no iteration-order dependence, so hierarchical results
//! stay byte-identical at any thread count.

use crate::eval::{CompiledLink, CompiledModel};
use crate::ids::HostId;

/// Configuration of the host-clustering pass.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct HierarchyConfig {
    /// Hosts joined by a physical link with delay ≤ this threshold are
    /// placed in the same cluster (zero/low-delay connectivity communities).
    /// The default `0.0` unions only zero-delay links.
    pub delay_threshold: f64,
    /// Desired number of clusters. Communities beyond this count are folded
    /// round-robin; `0` picks `⌈√hosts⌉` automatically, which balances the
    /// coarse problem (k clusters) against the refinement problems
    /// (~k hosts each).
    pub target_clusters: usize,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            delay_threshold: 0.0,
            target_clusters: 0,
        }
    }
}

/// A deterministic partition of a [`CompiledModel`]'s hosts into super-node
/// clusters, with aggregated cluster-pair link matrices.
///
/// Aggregation is optimistic: cross-cluster reliability/security/bandwidth
/// take the best link between the two clusters, delay the smallest — the
/// coarse model answers "how well could these clusters talk", and the
/// within-cluster refinement settles which concrete hosts do.
#[derive(Clone, PartialEq, Debug)]
pub struct Hierarchy {
    /// Cluster index per dense host index.
    cluster_of: Vec<u32>,
    /// Dense host indices per cluster, ascending within each cluster.
    clusters: Vec<Vec<u32>>,
    /// Aggregate memory capacity per cluster (Σ host memory).
    capacity: Vec<f64>,
    /// k×k best cross-link reliability (1.0 on the diagonal).
    reliability: Vec<f64>,
    /// k×k best cross-link security (1.0 on the diagonal).
    security: Vec<f64>,
    /// k×k least cross-link delay (0.0 on the diagonal, ∞ when unlinked).
    delay: Vec<f64>,
    /// k×k best cross-link bandwidth (∞ on the diagonal, 0.0 when unlinked).
    bandwidth: Vec<f64>,
    /// k×k cross-link existence (false on the diagonal, like host matrices).
    connected: Vec<bool>,
}

impl Hierarchy {
    /// Clusters the snapshot's hosts. Pure in `(model, config)`.
    pub fn build(model: &CompiledModel, config: &HierarchyConfig) -> Hierarchy {
        let n = model.n_hosts();
        if n == 0 {
            return Hierarchy {
                cluster_of: Vec::new(),
                clusters: Vec::new(),
                capacity: Vec::new(),
                reliability: Vec::new(),
                security: Vec::new(),
                delay: Vec::new(),
                bandwidth: Vec::new(),
                connected: Vec::new(),
            };
        }

        // Union-find with path halving over low-delay links, exactly the
        // machinery netsim::shard partitions simulation shards with.
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if model.connected(a as u32, b as u32)
                    && model.delay(a as u32, b as u32) <= config.delay_threshold
                {
                    let (ra, rb) = (find(&mut parent, a as u32), find(&mut parent, b as u32));
                    if ra != rb {
                        // Deterministic orientation: smaller root wins.
                        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                        parent[hi as usize] = lo;
                    }
                }
            }
        }

        // Units in ascending order of their smallest member (= their root,
        // because unions always keep the smaller index as root).
        let mut unit_of_root = vec![u32::MAX; n];
        let mut units: Vec<Vec<u32>> = Vec::new();
        for h in 0..n as u32 {
            let r = find(&mut parent, h) as usize;
            if unit_of_root[r] == u32::MAX {
                unit_of_root[r] = units.len() as u32;
                units.push(Vec::new());
            }
            units[unit_of_root[r] as usize].push(h);
        }

        // Fold units round-robin into the target cluster count.
        let target = if config.target_clusters == 0 {
            (n as f64).sqrt().ceil() as usize
        } else {
            config.target_clusters
        }
        .clamp(1, n);
        let k = units.len().min(target);
        let mut clusters: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (i, unit) in units.into_iter().enumerate() {
            clusters[i % k].extend(unit);
        }
        for c in &mut clusters {
            c.sort_unstable();
        }
        let mut cluster_of = vec![0u32; n];
        for (ci, hosts) in clusters.iter().enumerate() {
            for &h in hosts {
                cluster_of[h as usize] = ci as u32;
            }
        }

        // Aggregated cluster-pair matrices, mirroring the host-matrix
        // conventions (reliability/security 1.0 on the diagonal, delay 0.0,
        // bandwidth ∞, connected false).
        let capacity: Vec<f64> = clusters
            .iter()
            .map(|hosts| hosts.iter().map(|&h| model.host_memory()[h as usize]).sum())
            .collect();
        let mut reliability = vec![0.0f64; k * k];
        let mut security = vec![0.0f64; k * k];
        let mut delay = vec![f64::INFINITY; k * k];
        let mut bandwidth = vec![0.0; k * k];
        let mut connected = vec![false; k * k];
        for i in 0..k {
            reliability[i * k + i] = 1.0;
            security[i * k + i] = 1.0;
            delay[i * k + i] = 0.0;
            bandwidth[i * k + i] = f64::INFINITY;
        }
        for a in 0..n as u32 {
            let ca = cluster_of[a as usize] as usize;
            for b in 0..n as u32 {
                let cb = cluster_of[b as usize] as usize;
                if ca == cb || !model.connected(a, b) {
                    continue;
                }
                let cell = ca * k + cb;
                connected[cell] = true;
                reliability[cell] = reliability[cell].max(model.reliability(a, b));
                security[cell] = security[cell].max(model.security(a, b));
                delay[cell] = delay[cell].min(model.delay(a, b));
                bandwidth[cell] = bandwidth[cell].max(model.bandwidth(a, b));
            }
        }

        Hierarchy {
            cluster_of,
            clusters,
            capacity,
            reliability,
            security,
            delay,
            bandwidth,
            connected,
        }
    }

    /// Number of clusters.
    #[inline]
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The cluster a dense host index belongs to.
    #[inline]
    pub fn cluster_of(&self, host: u32) -> u32 {
        self.cluster_of[host as usize]
    }

    /// Cluster index per dense host index.
    #[inline]
    pub fn cluster_map(&self) -> &[u32] {
        &self.cluster_of
    }

    /// The dense host indices of one cluster, ascending.
    #[inline]
    pub fn hosts(&self, cluster: u32) -> &[u32] {
        &self.clusters[cluster as usize]
    }

    /// Aggregate memory capacity per cluster.
    #[inline]
    pub fn capacities(&self) -> &[f64] {
        &self.capacity
    }

    /// The coarse super-node model: one pseudo-host per cluster carrying the
    /// aggregated matrices and capacity, with the original components and
    /// logical links. Pseudo-host ids are the cluster indices — meaningful
    /// only inside the coarse problem, never decoded back into a
    /// [`crate::Deployment`].
    pub fn coarse_model(&self, model: &CompiledModel) -> CompiledModel {
        let host_ids: Vec<HostId> = (0..self.clusters.len())
            .map(|i| HostId::new(i as u32))
            .collect();
        let links: Vec<CompiledLink> = model.links().to_vec();
        CompiledModel::from_parts(
            host_ids,
            model.comp_ids().to_vec(),
            links,
            self.reliability.clone(),
            self.security.clone(),
            self.delay.clone(),
            self.bandwidth.clone(),
            self.connected.clone(),
            model.comp_memory().to_vec(),
            self.capacity.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};
    use crate::model::DeploymentModel;

    fn compiled(hosts: usize, comps: usize, seed: u64) -> CompiledModel {
        let s = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(seed)).unwrap();
        CompiledModel::compile(&s.model)
    }

    #[test]
    fn every_host_lands_in_exactly_one_cluster() {
        let cm = compiled(20, 40, 1);
        let h = Hierarchy::build(&cm, &HierarchyConfig::default());
        assert!(h.n_clusters() >= 1);
        let mut seen = vec![false; cm.n_hosts()];
        for k in 0..h.n_clusters() as u32 {
            for &host in h.hosts(k) {
                assert!(!seen[host as usize], "host {host} in two clusters");
                seen[host as usize] = true;
                assert_eq!(h.cluster_of(host), k);
            }
        }
        assert!(seen.iter().all(|&s| s), "a host was dropped");
    }

    #[test]
    fn default_target_is_sqrt_of_hosts() {
        let cm = compiled(20, 10, 2);
        let h = Hierarchy::build(&cm, &HierarchyConfig::default());
        assert_eq!(h.n_clusters(), 5); // ⌈√20⌉
        let h3 = Hierarchy::build(
            &cm,
            &HierarchyConfig {
                target_clusters: 3,
                ..HierarchyConfig::default()
            },
        );
        assert_eq!(h3.n_clusters(), 3);
    }

    #[test]
    fn zero_delay_communities_stay_together() {
        // Two zero-delay pairs joined by a slow bridge: with the default
        // threshold the pairs must not be split across clusters.
        let mut m = DeploymentModel::new();
        let hs: Vec<_> = (0..4)
            .map(|i| m.add_host(format!("h{i}")).unwrap())
            .collect();
        m.set_physical_link(hs[0], hs[1], |l| l.set_delay(0.0))
            .unwrap();
        m.set_physical_link(hs[2], hs[3], |l| l.set_delay(0.0))
            .unwrap();
        m.set_physical_link(hs[1], hs[2], |l| l.set_delay(9.0))
            .unwrap();
        let cm = CompiledModel::compile(&m);
        let h = Hierarchy::build(&cm, &HierarchyConfig::default());
        assert_eq!(h.n_clusters(), 2);
        assert_eq!(h.cluster_of(0), h.cluster_of(1));
        assert_eq!(h.cluster_of(2), h.cluster_of(3));
        assert_ne!(h.cluster_of(0), h.cluster_of(2));
    }

    #[test]
    fn aggregates_take_the_best_cross_link() {
        let mut m = DeploymentModel::new();
        let hs: Vec<_> = (0..3)
            .map(|i| m.add_host(format!("h{i}")).unwrap())
            .collect();
        // h0 | h1,h2 — two links from h0 into the other cluster.
        m.set_physical_link(hs[0], hs[1], |l| {
            l.set_reliability(0.5);
            l.set_delay(4.0);
            l.set_bandwidth(10.0);
        })
        .unwrap();
        m.set_physical_link(hs[0], hs[2], |l| {
            l.set_reliability(0.9);
            l.set_delay(2.0);
            l.set_bandwidth(5.0);
        })
        .unwrap();
        m.set_physical_link(hs[1], hs[2], |l| l.set_delay(0.0))
            .unwrap();
        let cm = CompiledModel::compile(&m);
        let h = Hierarchy::build(
            &cm,
            &HierarchyConfig {
                target_clusters: 2,
                ..HierarchyConfig::default()
            },
        );
        assert_eq!(h.n_clusters(), 2);
        let coarse = h.coarse_model(&cm);
        let (a, b) = (h.cluster_of(0), h.cluster_of(1));
        assert_eq!(coarse.reliability(a, b), 0.9);
        assert_eq!(coarse.delay(a, b), 2.0);
        assert_eq!(coarse.bandwidth(a, b), 10.0);
        assert!(coarse.connected(a, b));
        assert_eq!(coarse.reliability(a, a), 1.0);
        assert_eq!(coarse.delay(a, a), 0.0);
    }

    #[test]
    fn coarse_model_preserves_components_and_capacity() {
        let cm = compiled(12, 30, 3);
        let h = Hierarchy::build(&cm, &HierarchyConfig::default());
        let coarse = h.coarse_model(&cm);
        assert_eq!(coarse.n_hosts(), h.n_clusters());
        assert_eq!(coarse.n_comps(), cm.n_comps());
        assert_eq!(coarse.links().len(), cm.links().len());
        assert_eq!(coarse.total_weight(), cm.total_weight());
        for k in 0..h.n_clusters() {
            let sum: f64 = h
                .hosts(k as u32)
                .iter()
                .map(|&x| cm.host_memory()[x as usize])
                .sum();
            assert_eq!(coarse.host_memory()[k], sum);
            assert_eq!(h.capacities()[k], sum);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let cm = compiled(16, 8, 4);
        let a = Hierarchy::build(&cm, &HierarchyConfig::default());
        let b = Hierarchy::build(&cm, &HierarchyConfig::default());
        assert_eq!(a, b);
    }
}
