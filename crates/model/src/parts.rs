//! Hosts and components — the node-level parts of a deployment architecture.

use crate::ids::{ComponentId, HostId};
use crate::params::{keys, ParamTable, ParamValue};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A hardware host: a device onto which software components can be deployed.
///
/// Beyond its identity and human-readable name, a host is described entirely
/// by its extensible [`ParamTable`] — available memory, CPU speed, battery
/// power, installed software, and whatever else a particular deployment
/// problem needs.
///
/// # Example
///
/// ```
/// use redep_model::{DeploymentModel, keys};
/// let mut model = DeploymentModel::new();
/// let id = model.add_host("commander-pda")?;
/// model.host_mut(id)?.params_mut().set(keys::HOST_MEMORY, 64.0);
/// assert_eq!(model.host(id)?.memory(), 64.0);
/// # Ok::<(), redep_model::ModelError>(())
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Host {
    id: HostId,
    name: String,
    params: ParamTable,
}

impl Host {
    /// Creates a host with the given id and name and an empty parameter table.
    pub fn new(id: HostId, name: impl Into<String>) -> Self {
        Host {
            id,
            name: name.into(),
            params: ParamTable::new(),
        }
    }

    /// Returns the host's id.
    pub fn id(&self) -> HostId {
        self.id
    }

    /// Returns the host's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the host.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Returns the host's parameter table.
    pub fn params(&self) -> &ParamTable {
        &self.params
    }

    /// Returns the host's parameter table for modification.
    pub fn params_mut(&mut self) -> &mut ParamTable {
        &mut self.params
    }

    /// Available memory ([`keys::HOST_MEMORY`]); unlimited when unspecified.
    pub fn memory(&self) -> f64 {
        self.params.get_f64_or(keys::HOST_MEMORY, f64::INFINITY)
    }

    /// Sets the available memory.
    pub fn set_memory(&mut self, memory: f64) -> Option<ParamValue> {
        self.params.set(keys::HOST_MEMORY, memory)
    }

    /// Processing speed ([`keys::HOST_CPU`]); unlimited when unspecified.
    pub fn cpu(&self) -> f64 {
        self.params.get_f64_or(keys::HOST_CPU, f64::INFINITY)
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.id)
    }
}

/// A software component: a unit of computation that is deployed onto exactly
/// one host at a time and can be migrated between hosts.
///
/// Like [`Host`], a component is described by its extensible [`ParamTable`]
/// (required memory, CPU demand, …).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Component {
    id: ComponentId,
    name: String,
    params: ParamTable,
}

impl Component {
    /// Creates a component with the given id and name and an empty table.
    pub fn new(id: ComponentId, name: impl Into<String>) -> Self {
        Component {
            id,
            name: name.into(),
            params: ParamTable::new(),
        }
    }

    /// Returns the component's id.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Returns the component's human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the component.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Returns the component's parameter table.
    pub fn params(&self) -> &ParamTable {
        &self.params
    }

    /// Returns the component's parameter table for modification.
    pub fn params_mut(&mut self) -> &mut ParamTable {
        &mut self.params
    }

    /// Memory required by the component ([`keys::COMPONENT_MEMORY`]);
    /// zero when unspecified.
    pub fn required_memory(&self) -> f64 {
        self.params.get_f64_or(keys::COMPONENT_MEMORY, 0.0)
    }

    /// Sets the required memory.
    pub fn set_required_memory(&mut self, memory: f64) -> Option<ParamValue> {
        self.params.set(keys::COMPONENT_MEMORY, memory)
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_defaults_are_unconstrained() {
        let h = Host::new(HostId::new(0), "hq");
        assert_eq!(h.memory(), f64::INFINITY);
        assert_eq!(h.cpu(), f64::INFINITY);
    }

    #[test]
    fn host_memory_setter() {
        let mut h = Host::new(HostId::new(0), "hq");
        h.set_memory(128.0);
        assert_eq!(h.memory(), 128.0);
    }

    #[test]
    fn component_defaults_require_nothing() {
        let c = Component::new(ComponentId::new(0), "gui");
        assert_eq!(c.required_memory(), 0.0);
    }

    #[test]
    fn component_memory_setter() {
        let mut c = Component::new(ComponentId::new(0), "gui");
        c.set_required_memory(12.5);
        assert_eq!(c.required_memory(), 12.5);
    }

    #[test]
    fn rename_parts() {
        let mut h = Host::new(HostId::new(1), "a");
        h.set_name("b");
        assert_eq!(h.name(), "b");
        let mut c = Component::new(ComponentId::new(1), "x");
        c.set_name("y");
        assert_eq!(c.name(), "y");
    }

    #[test]
    fn display_includes_name_and_id() {
        let h = Host::new(HostId::new(2), "hq");
        assert_eq!(h.to_string(), "hq (h2)");
        let c = Component::new(ComponentId::new(3), "gui");
        assert_eq!(c.to_string(), "gui (c3)");
    }
}
