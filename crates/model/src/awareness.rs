//! Awareness graphs: per-host partial knowledge for decentralized systems.
//!
//! The paper's decentralized instantiation extends the centralized model
//! "to include the notion of *awareness*. Awareness denotes the extent of
//! each host's knowledge about the global system parameters. […] if there
//! are two hosts in the system that are not aware of (i.e., connected to)
//! each other, then the respective models maintained by the two hosts do not
//! contain each other's system parameters."
//!
//! An [`AwarenessGraph`] records which hosts each host knows about, and
//! [`AwarenessGraph::partial_view`] projects the global model down to the
//! submodel a given host can see.

use crate::deployment::Deployment;
use crate::ids::HostId;
use crate::model::DeploymentModel;
use crate::ModelError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Which hosts each host is aware of.
///
/// Awareness always includes the host itself and is kept symmetric
/// (if `a` knows `b`, `b` knows `a`), matching the paper's reading of
/// awareness as direct connectivity.
///
/// # Example
///
/// ```
/// use redep_model::{DeploymentModel, AwarenessGraph};
/// let mut model = DeploymentModel::new();
/// let a = model.add_host("a")?;
/// let b = model.add_host("b")?;
/// let c = model.add_host("c")?;
/// model.set_physical_link(a, b, |_| {})?;
/// // Awareness from physical connectivity: a and b know each other; c is alone.
/// let g = AwarenessGraph::from_connectivity(&model);
/// assert!(g.aware_of(a).contains(&b));
/// assert!(!g.aware_of(a).contains(&c));
/// # Ok::<(), redep_model::ModelError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct AwarenessGraph {
    aware: BTreeMap<HostId, BTreeSet<HostId>>,
}

impl AwarenessGraph {
    /// Creates an empty graph covering the given hosts (each host aware only
    /// of itself).
    pub fn isolated(hosts: impl IntoIterator<Item = HostId>) -> Self {
        let aware = hosts
            .into_iter()
            .map(|h| (h, BTreeSet::from([h])))
            .collect();
        AwarenessGraph { aware }
    }

    /// Derives awareness from the model's physical connectivity: each host is
    /// aware of itself and its direct neighbors (the paper's default).
    pub fn from_connectivity(model: &DeploymentModel) -> Self {
        let mut g = AwarenessGraph::isolated(model.host_ids());
        for link in model.physical_links() {
            g.connect(link.ends().lo(), link.ends().hi());
        }
        g
    }

    /// Full awareness: every host knows every other (degenerates to the
    /// centralized case).
    pub fn complete(hosts: impl IntoIterator<Item = HostId>) -> Self {
        let all: BTreeSet<HostId> = hosts.into_iter().collect();
        let aware = all.iter().map(|h| (*h, all.clone())).collect();
        AwarenessGraph { aware }
    }

    /// Random symmetric awareness where each host knows roughly
    /// `fraction` of its peers; deterministic in `seed`. Self-awareness is
    /// always included.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn random(hosts: &[HostId], fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1], got {fraction}"
        );
        let mut g = AwarenessGraph::isolated(hosts.iter().copied());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for (i, &a) in hosts.iter().enumerate() {
            let mut peers: Vec<HostId> = hosts[i + 1..].to_vec();
            peers.shuffle(&mut rng);
            let keep = ((peers.len() as f64) * fraction).round() as usize;
            for &b in peers.iter().take(keep) {
                g.connect(a, b);
            }
        }
        g
    }

    /// Makes `a` and `b` mutually aware.
    pub fn connect(&mut self, a: HostId, b: HostId) {
        self.aware.entry(a).or_default().insert(a);
        self.aware.entry(b).or_default().insert(b);
        self.aware.get_mut(&a).expect("just inserted").insert(b);
        self.aware.get_mut(&b).expect("just inserted").insert(a);
    }

    /// Removes mutual awareness between `a` and `b` (self-awareness stays).
    pub fn disconnect(&mut self, a: HostId, b: HostId) {
        if a == b {
            return;
        }
        if let Some(s) = self.aware.get_mut(&a) {
            s.remove(&b);
        }
        if let Some(s) = self.aware.get_mut(&b) {
            s.remove(&a);
        }
    }

    /// The set of hosts `h` is aware of (including itself). Empty for hosts
    /// the graph does not cover.
    pub fn aware_of(&self, h: HostId) -> BTreeSet<HostId> {
        self.aware.get(&h).cloned().unwrap_or_default()
    }

    /// Returns `true` if `a` is aware of `b`.
    pub fn is_aware(&self, a: HostId, b: HostId) -> bool {
        self.aware.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// Hosts covered by this graph, in id order.
    pub fn hosts(&self) -> Vec<HostId> {
        self.aware.keys().copied().collect()
    }

    /// Mean fraction of peers each host is aware of (`1.0` = complete).
    pub fn mean_awareness(&self) -> f64 {
        let n = self.aware.len();
        if n <= 1 {
            return 1.0;
        }
        let total: usize = self.aware.values().map(|s| s.len() - 1).sum();
        total as f64 / (n * (n - 1)) as f64
    }

    /// Projects the global model and deployment down to what `observer` can
    /// see: the hosts it is aware of, physical links among them, the
    /// components deployed on them, logical links among those components, and
    /// the constraints restricted to visible entities.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownHost`] if `observer` is not part of the
    /// model.
    pub fn partial_view(
        &self,
        model: &DeploymentModel,
        deployment: &Deployment,
        observer: HostId,
    ) -> Result<PartialView, ModelError> {
        if !model.contains_host(observer) {
            return Err(ModelError::UnknownHost(observer));
        }
        let visible_hosts = self.aware_of(observer);

        let mut view = DeploymentModel::new();
        // Rebuild the submodel by cloning visible parts. Fresh ids would break
        // cross-host agreement, so the view preserves global ids by cloning
        // parts into a new model via the import API below.
        let mut local = Deployment::new();
        let mut visible_components = BTreeSet::new();
        for (c, h) in deployment.iter() {
            if visible_hosts.contains(&h) {
                visible_components.insert(c);
                local.assign(c, h);
            }
        }

        for &h in &visible_hosts {
            if let Ok(host) = model.host(h) {
                view.import_host(host.clone());
            }
        }
        for &c in &visible_components {
            if let Ok(component) = model.component(c) {
                view.import_component(component.clone());
            }
        }
        for link in model.physical_links() {
            let ends = link.ends();
            if visible_hosts.contains(&ends.lo()) && visible_hosts.contains(&ends.hi()) {
                view.import_physical_link(link.clone());
            }
        }
        for link in model.logical_links() {
            let ends = link.ends();
            if visible_components.contains(&ends.lo()) && visible_components.contains(&ends.hi()) {
                view.import_logical_link(link.clone());
            }
        }
        for constraint in model.constraints().iter() {
            if view.constraint_is_local(constraint) {
                view.constraints_mut().add(constraint.clone());
            }
        }

        Ok(PartialView {
            observer,
            model: view,
            deployment: local,
        })
    }
}

/// What one host can see of the global system.
#[derive(Clone, PartialEq, Debug)]
pub struct PartialView {
    /// The host this view belongs to.
    pub observer: HostId,
    /// The visible submodel (ids match the global model).
    pub model: DeploymentModel,
    /// The visible part of the deployment.
    pub deployment: Deployment,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ComponentId;

    fn line_model() -> (DeploymentModel, Vec<HostId>, Vec<ComponentId>) {
        // a — b — c (line topology), one component per host.
        let mut m = DeploymentModel::new();
        let hosts: Vec<HostId> = (0..3)
            .map(|i| m.add_host(format!("h{i}")).unwrap())
            .collect();
        m.set_physical_link(hosts[0], hosts[1], |l| l.set_reliability(0.9))
            .unwrap();
        m.set_physical_link(hosts[1], hosts[2], |l| l.set_reliability(0.8))
            .unwrap();
        let comps: Vec<ComponentId> = (0..3)
            .map(|i| m.add_component(format!("c{i}")).unwrap())
            .collect();
        m.set_logical_link(comps[0], comps[1], |l| l.set_frequency(1.0))
            .unwrap();
        m.set_logical_link(comps[1], comps[2], |l| l.set_frequency(2.0))
            .unwrap();
        m.set_logical_link(comps[0], comps[2], |l| l.set_frequency(3.0))
            .unwrap();
        (m, hosts, comps)
    }

    #[test]
    fn connectivity_awareness_is_symmetric() {
        let (m, hosts, _) = line_model();
        let g = AwarenessGraph::from_connectivity(&m);
        assert!(g.is_aware(hosts[0], hosts[1]));
        assert!(g.is_aware(hosts[1], hosts[0]));
        assert!(!g.is_aware(hosts[0], hosts[2]));
        assert!(g.is_aware(hosts[0], hosts[0]));
    }

    #[test]
    fn complete_awareness_sees_everything() {
        let (m, hosts, _) = line_model();
        let g = AwarenessGraph::complete(m.host_ids());
        assert!(g.is_aware(hosts[0], hosts[2]));
        assert_eq!(g.mean_awareness(), 1.0);
    }

    #[test]
    fn disconnect_removes_mutual_awareness() {
        let (m, hosts, _) = line_model();
        let mut g = AwarenessGraph::from_connectivity(&m);
        g.disconnect(hosts[0], hosts[1]);
        assert!(!g.is_aware(hosts[0], hosts[1]));
        assert!(!g.is_aware(hosts[1], hosts[0]));
        assert!(g.is_aware(hosts[0], hosts[0]));
    }

    #[test]
    fn partial_view_restricts_hosts_components_and_links() {
        let (m, hosts, comps) = line_model();
        let d: Deployment = comps.iter().zip(&hosts).map(|(c, h)| (*c, *h)).collect();
        let g = AwarenessGraph::from_connectivity(&m);
        let view = g.partial_view(&m, &d, hosts[0]).unwrap();
        // h0 sees itself and h1 (direct neighbor), not h2.
        assert!(view.model.contains_host(hosts[0]));
        assert!(view.model.contains_host(hosts[1]));
        assert!(!view.model.contains_host(hosts[2]));
        // It sees components c0 and c1 but not c2.
        assert!(view.model.contains_component(comps[0]));
        assert!(view.model.contains_component(comps[1]));
        assert!(!view.model.contains_component(comps[2]));
        // The only visible logical link is c0–c1.
        assert_eq!(view.model.logical_link_count(), 1);
        // And the only visible physical link is h0–h1 with its parameters.
        assert_eq!(view.model.physical_link_count(), 1);
        assert_eq!(view.model.reliability(hosts[0], hosts[1]), 0.9);
        // Deployment restricted accordingly.
        assert_eq!(view.deployment.len(), 2);
    }

    #[test]
    fn partial_view_preserves_global_ids() {
        let (m, hosts, comps) = line_model();
        let d: Deployment = comps.iter().zip(&hosts).map(|(c, h)| (*c, *h)).collect();
        let g = AwarenessGraph::from_connectivity(&m);
        let view = g.partial_view(&m, &d, hosts[1]).unwrap();
        // The middle host sees everything here, with identical ids.
        assert_eq!(view.model.host_ids(), m.host_ids());
        assert_eq!(view.model.component_ids(), m.component_ids());
    }

    #[test]
    fn partial_view_projects_constraints_onto_visible_components() {
        use crate::Constraint;
        use std::collections::BTreeSet;
        let (mut m, hosts, comps) = {
            let (m, h, c) = line_model();
            (m, h, c)
        };
        // c0 pinned to h0 (both visible from h0's view); c2 separated from
        // c0 (c2 invisible from h0, so the constraint must be dropped).
        m.constraints_mut().add(Constraint::PinnedTo {
            component: comps[0],
            hosts: BTreeSet::from([hosts[0]]),
        });
        m.constraints_mut().add(Constraint::Separated {
            components: BTreeSet::from([comps[0], comps[2]]),
        });
        let d: Deployment = comps.iter().zip(&hosts).map(|(c, h)| (*c, *h)).collect();
        let g = AwarenessGraph::from_connectivity(&m);
        let view = g.partial_view(&m, &d, hosts[0]).unwrap();
        assert_eq!(view.model.constraints().len(), 1);
        assert!(matches!(
            view.model.constraints().iter().next().unwrap(),
            Constraint::PinnedTo { .. }
        ));
    }

    #[test]
    fn partial_view_for_unknown_observer_errors() {
        let (m, _, _) = line_model();
        let g = AwarenessGraph::from_connectivity(&m);
        assert!(g
            .partial_view(&m, &Deployment::new(), HostId::new(99))
            .is_err());
    }

    #[test]
    fn random_awareness_is_deterministic_and_bounded() {
        let hosts: Vec<HostId> = (0..10).map(HostId::new).collect();
        let a = AwarenessGraph::random(&hosts, 0.5, 42);
        let b = AwarenessGraph::random(&hosts, 0.5, 42);
        assert_eq!(a, b);
        let zero = AwarenessGraph::random(&hosts, 0.0, 42);
        assert_eq!(zero.mean_awareness(), 0.0);
        let one = AwarenessGraph::random(&hosts, 1.0, 42);
        assert_eq!(one.mean_awareness(), 1.0);
    }

    #[test]
    fn mean_awareness_of_single_host_is_one() {
        let g = AwarenessGraph::isolated([HostId::new(0)]);
        assert_eq!(g.mean_awareness(), 1.0);
    }
}
