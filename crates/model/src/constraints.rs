//! Deployment constraints and pluggable constraint checkers.
//!
//! The paper distinguishes two kinds of architect input that restrict the
//! space of valid deployment architectures:
//!
//! * **Location constraints** — the subset of hosts a component may (or may
//!   not) legally be deployed on ([`Constraint::PinnedTo`],
//!   [`Constraint::NotOn`]);
//! * **Collocation constraints** — subsets of components that must share a
//!   host ([`Constraint::Collocated`]) or must not ([`Constraint::Separated`]).
//!
//! In addition, resource limits (host memory, link bandwidth) are expressed as
//! reusable [`ConstraintChecker`]s — the second variation point of the
//! paper's algorithm-development methodology, so that the same checkers plug
//! into every [`RedeploymentAlgorithm`](crate::ConstraintChecker) body.

use crate::eval::{CompiledConstraints, CompiledModel, GroupKind};
use crate::ids::{ComponentId, HostId};
use crate::model::DeploymentModel;
use crate::Deployment;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A single architect-supplied deployment constraint.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Constraint {
    /// The component may only be deployed on one of the listed hosts.
    PinnedTo {
        /// The constrained component.
        component: ComponentId,
        /// The allowed hosts.
        hosts: BTreeSet<HostId>,
    },
    /// The component may not be deployed on any of the listed hosts.
    NotOn {
        /// The constrained component.
        component: ComponentId,
        /// The forbidden hosts.
        hosts: BTreeSet<HostId>,
    },
    /// All listed components must be deployed on the same host.
    Collocated {
        /// The components that must share a host.
        components: BTreeSet<ComponentId>,
    },
    /// No two of the listed components may share a host.
    Separated {
        /// The components that must be pairwise on different hosts.
        components: BTreeSet<ComponentId>,
    },
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::PinnedTo { component, hosts } => {
                write!(f, "{component} pinned to {{")?;
                write_ids(f, hosts.iter())?;
                write!(f, "}}")
            }
            Constraint::NotOn { component, hosts } => {
                write!(f, "{component} not on {{")?;
                write_ids(f, hosts.iter())?;
                write!(f, "}}")
            }
            Constraint::Collocated { components } => {
                write!(f, "collocated {{")?;
                write_ids(f, components.iter())?;
                write!(f, "}}")
            }
            Constraint::Separated { components } => {
                write!(f, "separated {{")?;
                write_ids(f, components.iter())?;
                write!(f, "}}")
            }
        }
    }
}

fn write_ids<T: fmt::Display>(
    f: &mut fmt::Formatter<'_>,
    ids: impl Iterator<Item = T>,
) -> fmt::Result {
    for (i, id) in ids.enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{id}")?;
    }
    Ok(())
}

/// Why a deployment violates the constraints.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ConstraintViolation {
    /// A component sits on a host its location constraints forbid.
    Location {
        /// The offending component.
        component: ComponentId,
        /// The host it was (illegally) placed on.
        host: HostId,
    },
    /// A collocation group is split across hosts.
    Collocation {
        /// The components that should share a host but do not.
        components: Vec<ComponentId>,
    },
    /// A separation group has two members on the same host.
    Separation {
        /// The two components illegally sharing a host.
        components: (ComponentId, ComponentId),
        /// The shared host.
        host: HostId,
    },
    /// The components deployed on a host require more memory than available.
    Memory {
        /// The overloaded host.
        host: HostId,
        /// Memory required by the components deployed there.
        required: f64,
        /// Memory the host offers.
        available: f64,
    },
    /// The traffic routed over a physical link exceeds its bandwidth.
    Bandwidth {
        /// Endpoints of the saturated link.
        hosts: (HostId, HostId),
        /// Traffic the deployment routes over the link.
        required: f64,
        /// Bandwidth the link offers.
        available: f64,
    },
    /// A component is assigned to no host at all.
    Unassigned {
        /// The unassigned component.
        component: ComponentId,
    },
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintViolation::Location { component, host } => {
                write!(f, "location constraint violated: {component} on {host}")
            }
            ConstraintViolation::Collocation { components } => {
                write!(f, "collocation constraint violated for {{")?;
                write_ids(f, components.iter())?;
                write!(f, "}}")
            }
            ConstraintViolation::Separation { components, host } => write!(
                f,
                "separation constraint violated: {} and {} both on {host}",
                components.0, components.1
            ),
            ConstraintViolation::Memory {
                host,
                required,
                available,
            } => write!(
                f,
                "memory exceeded on {host}: requires {required}, available {available}"
            ),
            ConstraintViolation::Bandwidth {
                hosts,
                required,
                available,
            } => write!(
                f,
                "bandwidth exceeded on {}–{}: requires {required}, available {available}",
                hosts.0, hosts.1
            ),
            ConstraintViolation::Unassigned { component } => {
                write!(f, "component {component} is not assigned to any host")
            }
        }
    }
}

impl std::error::Error for ConstraintViolation {}

/// A pluggable deployment-validity check.
///
/// This is the paper's second algorithm variation point: algorithm bodies
/// (greedy, stochastic, exact, …) are written once against this trait and
/// composed with whatever checks a concrete problem needs.
pub trait ConstraintChecker: fmt::Debug + Send + Sync {
    /// A short human-readable name for diagnostics.
    fn name(&self) -> &str;

    /// Checks a complete deployment.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    fn check(
        &self,
        model: &DeploymentModel,
        deployment: &Deployment,
    ) -> Result<(), ConstraintViolation>;

    /// Fast incremental check: may `component` be placed on `host` given the
    /// (possibly partial) deployment built so far?
    ///
    /// Used by constructive algorithms (greedy, auctions) to prune candidates
    /// without re-validating the whole deployment. The default implementation
    /// conservatively accepts and relies on [`ConstraintChecker::check`].
    fn admits(
        &self,
        model: &DeploymentModel,
        partial: &Deployment,
        component: ComponentId,
        host: HostId,
    ) -> bool {
        let _ = (model, partial, component, host);
        true
    }

    /// Compiles this checker into a dense form over `compiled`'s index
    /// space, if it supports one.
    ///
    /// The compiled checker's `check`/`admits` must return the same booleans
    /// as the naive `check(..).is_ok()` / `admits(..)` for deployments over
    /// the compiled model's components and hosts. Checkers without a dense
    /// form return `None` (the default), which keeps algorithms on the naive
    /// path.
    fn compile(
        &self,
        model: &DeploymentModel,
        compiled: &CompiledModel,
    ) -> Option<CompiledConstraints> {
        let _ = (model, compiled);
        None
    }
}

/// The architect's constraint set: location and collocation constraints plus
/// an always-on memory-capacity check.
///
/// # Example
///
/// ```
/// use redep_model::{DeploymentModel, Deployment, Constraint, ConstraintChecker};
/// use std::collections::BTreeSet;
///
/// let mut model = DeploymentModel::new();
/// let h0 = model.add_host("h0")?;
/// let h1 = model.add_host("h1")?;
/// let c0 = model.add_component("c0")?;
/// model.constraints_mut().add(Constraint::PinnedTo {
///     component: c0,
///     hosts: BTreeSet::from([h0]),
/// });
///
/// let mut bad = Deployment::new();
/// bad.assign(c0, h1);
/// assert!(model.constraints().check(&model, &bad).is_err());
///
/// let mut good = Deployment::new();
/// good.assign(c0, h0);
/// assert!(model.constraints().check(&model, &good).is_ok());
/// # Ok::<(), redep_model::ModelError>(())
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
    #[serde(default = "default_true")]
    enforce_memory: bool,
}

fn default_true() -> bool {
    true
}

impl Default for ConstraintSet {
    fn default() -> Self {
        ConstraintSet::new()
    }
}

impl ConstraintSet {
    /// Creates an empty set (memory capacity still enforced).
    pub fn new() -> Self {
        ConstraintSet {
            constraints: Vec::new(),
            enforce_memory: true,
        }
    }

    /// Adds a constraint.
    pub fn add(&mut self, constraint: Constraint) {
        self.constraints.push(constraint);
    }

    /// Iterates over the constraints in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Number of explicit constraints (the memory check not included).
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` if no explicit constraint has been added.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Removes all constraints.
    pub fn clear(&mut self) {
        self.constraints.clear();
    }

    /// Enables or disables the built-in host-memory capacity check.
    pub fn set_enforce_memory(&mut self, enforce: bool) {
        self.enforce_memory = enforce;
    }

    /// Whether the built-in host-memory capacity check is enabled.
    pub fn enforces_memory(&self) -> bool {
        self.enforce_memory
    }

    /// Hosts `component` may legally be deployed on, intersecting all
    /// location constraints.
    pub fn allowed_hosts(
        &self,
        model: &DeploymentModel,
        component: ComponentId,
    ) -> BTreeSet<HostId> {
        let mut allowed: BTreeSet<HostId> = model.host_ids().into_iter().collect();
        for c in &self.constraints {
            match c {
                Constraint::PinnedTo {
                    component: cc,
                    hosts,
                } if *cc == component => {
                    allowed = allowed.intersection(hosts).copied().collect();
                }
                Constraint::NotOn {
                    component: cc,
                    hosts,
                } if *cc == component => {
                    allowed = allowed.difference(hosts).copied().collect();
                }
                _ => {}
            }
        }
        allowed
    }

    /// All components referenced by any constraint.
    pub fn referenced_components(&self) -> BTreeSet<ComponentId> {
        let mut out = BTreeSet::new();
        for c in &self.constraints {
            match c {
                Constraint::PinnedTo { component, .. } | Constraint::NotOn { component, .. } => {
                    out.insert(*component);
                }
                Constraint::Collocated { components } | Constraint::Separated { components } => {
                    out.extend(components.iter().copied());
                }
            }
        }
        out
    }

    /// All hosts referenced by any constraint.
    pub fn referenced_hosts(&self) -> BTreeSet<HostId> {
        let mut out = BTreeSet::new();
        for c in &self.constraints {
            match c {
                Constraint::PinnedTo { hosts, .. } | Constraint::NotOn { hosts, .. } => {
                    out.extend(hosts.iter().copied());
                }
                _ => {}
            }
        }
        out
    }
}

impl ConstraintChecker for ConstraintSet {
    fn name(&self) -> &str {
        "architect constraints"
    }

    fn check(
        &self,
        model: &DeploymentModel,
        deployment: &Deployment,
    ) -> Result<(), ConstraintViolation> {
        // Every component must be assigned.
        for c in model.component_ids() {
            if deployment.host_of(c).is_none() {
                return Err(ConstraintViolation::Unassigned { component: c });
            }
        }

        for constraint in &self.constraints {
            match constraint {
                Constraint::PinnedTo { component, hosts } => {
                    if let Some(h) = deployment.host_of(*component) {
                        if !hosts.contains(&h) {
                            return Err(ConstraintViolation::Location {
                                component: *component,
                                host: h,
                            });
                        }
                    }
                }
                Constraint::NotOn { component, hosts } => {
                    if let Some(h) = deployment.host_of(*component) {
                        if hosts.contains(&h) {
                            return Err(ConstraintViolation::Location {
                                component: *component,
                                host: h,
                            });
                        }
                    }
                }
                Constraint::Collocated { components } => {
                    let hosts: BTreeSet<_> = components
                        .iter()
                        .filter_map(|c| deployment.host_of(*c))
                        .collect();
                    if hosts.len() > 1 {
                        return Err(ConstraintViolation::Collocation {
                            components: components.iter().copied().collect(),
                        });
                    }
                }
                Constraint::Separated { components } => {
                    let mut seen: BTreeMap<HostId, ComponentId> = BTreeMap::new();
                    for c in components {
                        if let Some(h) = deployment.host_of(*c) {
                            if let Some(prev) = seen.insert(h, *c) {
                                return Err(ConstraintViolation::Separation {
                                    components: (prev, *c),
                                    host: h,
                                });
                            }
                        }
                    }
                }
            }
        }

        if self.enforce_memory {
            MemoryConstraint.check(model, deployment)?;
        }
        Ok(())
    }

    fn admits(
        &self,
        model: &DeploymentModel,
        partial: &Deployment,
        component: ComponentId,
        host: HostId,
    ) -> bool {
        for constraint in &self.constraints {
            match constraint {
                Constraint::PinnedTo {
                    component: cc,
                    hosts,
                } => {
                    if *cc == component && !hosts.contains(&host) {
                        return false;
                    }
                }
                Constraint::NotOn {
                    component: cc,
                    hosts,
                } => {
                    if *cc == component && hosts.contains(&host) {
                        return false;
                    }
                }
                Constraint::Collocated { components } => {
                    if components.contains(&component) {
                        for peer in components {
                            if let Some(h) = partial.host_of(*peer) {
                                if h != host {
                                    return false;
                                }
                            }
                        }
                    }
                }
                Constraint::Separated { components } => {
                    if components.contains(&component) {
                        for peer in components {
                            if *peer != component && partial.host_of(*peer) == Some(host) {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        if self.enforce_memory && !MemoryConstraint.admits(model, partial, component, host) {
            return false;
        }
        true
    }

    fn compile(
        &self,
        _model: &DeploymentModel,
        compiled: &CompiledModel,
    ) -> Option<CompiledConstraints> {
        let mut cc = CompiledConstraints::new(compiled, true, self.enforce_memory);
        // Constraints naming components or hosts outside the model can never
        // affect a deployment over the model's components, so dropping the
        // unknown ids preserves check/admits semantics.
        for constraint in &self.constraints {
            match constraint {
                Constraint::PinnedTo { component, hosts } => {
                    if let Some(c) = compiled.comp_index(*component) {
                        let dense: Vec<u32> = hosts
                            .iter()
                            .filter_map(|&h| compiled.host_index(h))
                            .collect();
                        cc.pin_to(c, &dense);
                    }
                }
                Constraint::NotOn { component, hosts } => {
                    if let Some(c) = compiled.comp_index(*component) {
                        let dense: Vec<u32> = hosts
                            .iter()
                            .filter_map(|&h| compiled.host_index(h))
                            .collect();
                        cc.forbid_on(c, &dense);
                    }
                }
                Constraint::Collocated { components } => {
                    let members: Vec<u32> = components
                        .iter()
                        .filter_map(|&c| compiled.comp_index(c))
                        .collect();
                    cc.add_group(GroupKind::Collocated, members);
                }
                Constraint::Separated { components } => {
                    let members: Vec<u32> = components
                        .iter()
                        .filter_map(|&c| compiled.comp_index(c))
                        .collect();
                    cc.add_group(GroupKind::Separated, members);
                }
            }
        }
        Some(cc)
    }
}

/// Built-in checker: the memory required by the components deployed on a
/// host may not exceed the host's available memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemoryConstraint;

impl ConstraintChecker for MemoryConstraint {
    fn name(&self) -> &str {
        "host memory capacity"
    }

    fn check(
        &self,
        model: &DeploymentModel,
        deployment: &Deployment,
    ) -> Result<(), ConstraintViolation> {
        let mut used: BTreeMap<HostId, f64> = BTreeMap::new();
        for (c, h) in deployment.iter() {
            if let Ok(component) = model.component(c) {
                *used.entry(h).or_insert(0.0) += component.required_memory();
            }
        }
        for (h, required) in used {
            let available = model.host(h).map(|host| host.memory()).unwrap_or(0.0);
            if required > available {
                return Err(ConstraintViolation::Memory {
                    host: h,
                    required,
                    available,
                });
            }
        }
        Ok(())
    }

    fn admits(
        &self,
        model: &DeploymentModel,
        partial: &Deployment,
        component: ComponentId,
        host: HostId,
    ) -> bool {
        let available = match model.host(host) {
            Ok(h) => h.memory(),
            Err(_) => return false,
        };
        let new = match model.component(component) {
            Ok(c) => c.required_memory(),
            Err(_) => return false,
        };
        let used: f64 = partial
            .components_on(host)
            .into_iter()
            .filter(|c| *c != component)
            .filter_map(|c| model.component(c).ok())
            .map(|c| c.required_memory())
            .sum();
        used + new <= available
    }

    fn compile(
        &self,
        _model: &DeploymentModel,
        compiled: &CompiledModel,
    ) -> Option<CompiledConstraints> {
        Some(CompiledConstraints::new(compiled, false, true))
    }
}

/// Built-in checker: the traffic a deployment routes over each physical link
/// (Σ frequency × event size of remote interactions between its endpoints)
/// may not exceed the link's bandwidth.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BandwidthConstraint;

impl ConstraintChecker for BandwidthConstraint {
    fn name(&self) -> &str {
        "link bandwidth capacity"
    }

    fn check(
        &self,
        model: &DeploymentModel,
        deployment: &Deployment,
    ) -> Result<(), ConstraintViolation> {
        let mut traffic: BTreeMap<(HostId, HostId), f64> = BTreeMap::new();
        for link in model.logical_links() {
            let (a, b) = (link.ends().lo(), link.ends().hi());
            if let (Some(ha), Some(hb)) = (deployment.host_of(a), deployment.host_of(b)) {
                if ha != hb {
                    let key = if ha < hb { (ha, hb) } else { (hb, ha) };
                    *traffic.entry(key).or_insert(0.0) += link.frequency() * link.event_size();
                }
            }
        }
        for ((ha, hb), required) in traffic {
            let available = model.bandwidth(ha, hb);
            if required > available {
                return Err(ConstraintViolation::Bandwidth {
                    hosts: (ha, hb),
                    required,
                    available,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with(hosts: usize, components: usize) -> DeploymentModel {
        let mut m = DeploymentModel::new();
        for i in 0..hosts {
            m.add_host(format!("h{i}")).unwrap();
        }
        for i in 0..components {
            m.add_component(format!("c{i}")).unwrap();
        }
        m
    }

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }
    fn c(n: u32) -> ComponentId {
        ComponentId::new(n)
    }

    #[test]
    fn empty_set_accepts_complete_deployment() {
        let m = model_with(2, 2);
        let d: Deployment = [(c(0), h(0)), (c(1), h(1))].into_iter().collect();
        assert!(m.constraints().check(&m, &d).is_ok());
    }

    #[test]
    fn incomplete_deployment_is_rejected() {
        let m = model_with(2, 2);
        let d: Deployment = [(c(0), h(0))].into_iter().collect();
        assert_eq!(
            m.constraints().check(&m, &d).unwrap_err(),
            ConstraintViolation::Unassigned { component: c(1) }
        );
    }

    #[test]
    fn pinned_to_enforced() {
        let mut m = model_with(2, 1);
        m.constraints_mut().add(Constraint::PinnedTo {
            component: c(0),
            hosts: BTreeSet::from([h(0)]),
        });
        let bad: Deployment = [(c(0), h(1))].into_iter().collect();
        assert!(matches!(
            m.constraints().check(&m, &bad),
            Err(ConstraintViolation::Location { .. })
        ));
        let good: Deployment = [(c(0), h(0))].into_iter().collect();
        assert!(m.constraints().check(&m, &good).is_ok());
    }

    #[test]
    fn not_on_enforced() {
        let mut m = model_with(2, 1);
        m.constraints_mut().add(Constraint::NotOn {
            component: c(0),
            hosts: BTreeSet::from([h(1)]),
        });
        let bad: Deployment = [(c(0), h(1))].into_iter().collect();
        assert!(m.constraints().check(&m, &bad).is_err());
    }

    #[test]
    fn collocation_enforced() {
        let mut m = model_with(2, 2);
        m.constraints_mut().add(Constraint::Collocated {
            components: BTreeSet::from([c(0), c(1)]),
        });
        let bad: Deployment = [(c(0), h(0)), (c(1), h(1))].into_iter().collect();
        assert!(matches!(
            m.constraints().check(&m, &bad),
            Err(ConstraintViolation::Collocation { .. })
        ));
        let good: Deployment = [(c(0), h(0)), (c(1), h(0))].into_iter().collect();
        assert!(m.constraints().check(&m, &good).is_ok());
    }

    #[test]
    fn separation_enforced() {
        let mut m = model_with(2, 2);
        m.constraints_mut().add(Constraint::Separated {
            components: BTreeSet::from([c(0), c(1)]),
        });
        let bad: Deployment = [(c(0), h(0)), (c(1), h(0))].into_iter().collect();
        assert!(matches!(
            m.constraints().check(&m, &bad),
            Err(ConstraintViolation::Separation { .. })
        ));
        let good: Deployment = [(c(0), h(0)), (c(1), h(1))].into_iter().collect();
        assert!(m.constraints().check(&m, &good).is_ok());
    }

    #[test]
    fn memory_capacity_enforced() {
        let mut m = model_with(1, 2);
        m.host_mut(h(0)).unwrap().set_memory(10.0);
        m.component_mut(c(0)).unwrap().set_required_memory(6.0);
        m.component_mut(c(1)).unwrap().set_required_memory(6.0);
        let d: Deployment = [(c(0), h(0)), (c(1), h(0))].into_iter().collect();
        assert!(matches!(
            m.constraints().check(&m, &d),
            Err(ConstraintViolation::Memory { .. })
        ));
    }

    #[test]
    fn memory_check_can_be_disabled() {
        let mut m = model_with(1, 2);
        m.host_mut(h(0)).unwrap().set_memory(10.0);
        m.component_mut(c(0)).unwrap().set_required_memory(6.0);
        m.component_mut(c(1)).unwrap().set_required_memory(6.0);
        m.constraints_mut().set_enforce_memory(false);
        let d: Deployment = [(c(0), h(0)), (c(1), h(0))].into_iter().collect();
        assert!(m.constraints().check(&m, &d).is_ok());
    }

    #[test]
    fn admits_checks_location_and_memory_incrementally() {
        let mut m = model_with(2, 2);
        m.host_mut(h(0)).unwrap().set_memory(10.0);
        m.component_mut(c(0)).unwrap().set_required_memory(6.0);
        m.component_mut(c(1)).unwrap().set_required_memory(6.0);
        m.constraints_mut().add(Constraint::NotOn {
            component: c(1),
            hosts: BTreeSet::from([h(1)]),
        });
        let mut partial = Deployment::new();
        assert!(m.constraints().admits(&m, &partial, c(0), h(0)));
        partial.assign(c(0), h(0));
        // Memory full on h0:
        assert!(!m.constraints().admits(&m, &partial, c(1), h(0)));
        // Location forbids h1:
        assert!(!m.constraints().admits(&m, &partial, c(1), h(1)));
    }

    #[test]
    fn admits_respects_collocation_groups() {
        let mut m = model_with(2, 3);
        m.constraints_mut().add(Constraint::Collocated {
            components: BTreeSet::from([c(0), c(1)]),
        });
        let mut partial = Deployment::new();
        partial.assign(c(0), h(0));
        assert!(m.constraints().admits(&m, &partial, c(1), h(0)));
        assert!(!m.constraints().admits(&m, &partial, c(1), h(1)));
        // An unrelated component is unaffected.
        assert!(m.constraints().admits(&m, &partial, c(2), h(1)));
    }

    #[test]
    fn allowed_hosts_intersects_constraints() {
        let mut m = model_with(3, 1);
        m.constraints_mut().add(Constraint::PinnedTo {
            component: c(0),
            hosts: BTreeSet::from([h(0), h(1)]),
        });
        m.constraints_mut().add(Constraint::NotOn {
            component: c(0),
            hosts: BTreeSet::from([h(1)]),
        });
        assert_eq!(
            m.constraints().allowed_hosts(&m, c(0)),
            BTreeSet::from([h(0)])
        );
    }

    #[test]
    fn bandwidth_constraint_flags_saturated_links() {
        let mut m = model_with(2, 2);
        m.set_physical_link(h(0), h(1), |l| l.set_bandwidth(10.0))
            .unwrap();
        m.set_logical_link(c(0), c(1), |l| {
            l.set_frequency(4.0);
            l.set_event_size(5.0); // traffic 20 > bandwidth 10
        })
        .unwrap();
        let remote: Deployment = [(c(0), h(0)), (c(1), h(1))].into_iter().collect();
        assert!(matches!(
            BandwidthConstraint.check(&m, &remote),
            Err(ConstraintViolation::Bandwidth { .. })
        ));
        // Local deployment routes nothing over the link.
        let local: Deployment = [(c(0), h(0)), (c(1), h(0))].into_iter().collect();
        assert!(BandwidthConstraint.check(&m, &local).is_ok());
    }

    #[test]
    fn referenced_ids_cover_all_constraint_kinds() {
        let mut s = ConstraintSet::new();
        s.add(Constraint::PinnedTo {
            component: c(0),
            hosts: BTreeSet::from([h(1)]),
        });
        s.add(Constraint::Separated {
            components: BTreeSet::from([c(1), c(2)]),
        });
        assert_eq!(
            s.referenced_components(),
            BTreeSet::from([c(0), c(1), c(2)])
        );
        assert_eq!(s.referenced_hosts(), BTreeSet::from([h(1)]));
    }

    #[test]
    fn constraint_display_is_readable() {
        let con = Constraint::Collocated {
            components: BTreeSet::from([c(0), c(1)]),
        };
        assert_eq!(con.to_string(), "collocated {c0, c1}");
    }
}
