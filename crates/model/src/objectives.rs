//! Objective functions scoring deployment architectures.
//!
//! An [`Objective`] formalizes one desired system characteristic, the paper's
//! first algorithm variation point. Built-ins:
//!
//! * [`Availability`] — the paper's §5 objective (maximize),
//! * [`PathAwareAvailability`] — the same formula with multi-hop path
//!   reliabilities (for relaying platforms),
//! * [`Latency`] — mean remote-interaction latency (minimize),
//! * [`CommunicationVolume`] — total remote traffic, the objective of the I5
//!   related work (minimize),
//! * [`LinkSecurity`] — interaction-weighted link security (maximize),
//! * [`Composite`] — a weighted combination for multi-objective analysis.

use crate::deployment::Deployment;
use crate::eval::{CompiledObjective, PartKind};
use crate::model::DeploymentModel;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;

/// Whether larger or smaller objective values are better.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// Larger values are better (e.g. availability).
    Maximize,
    /// Smaller values are better (e.g. latency).
    Minimize,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Maximize => f.write_str("maximize"),
            Direction::Minimize => f.write_str("minimize"),
        }
    }
}

/// A formally specified desired system characteristic.
///
/// Objectives are pure functions of a model and a candidate deployment, so a
/// single evaluation never mutates anything and algorithms may call them
/// millions of times.
pub trait Objective: fmt::Debug + Send + Sync {
    /// Short name for reports (e.g. `"availability"`).
    fn name(&self) -> &str;

    /// Whether this objective is maximized or minimized.
    fn direction(&self) -> Direction;

    /// Scores `deployment` against `model` in the objective's natural units.
    fn evaluate(&self, model: &DeploymentModel, deployment: &Deployment) -> f64;

    /// Returns `true` if `candidate` is strictly better than `incumbent`.
    fn is_improvement(&self, incumbent: f64, candidate: f64) -> bool {
        match self.direction() {
            Direction::Maximize => candidate > incumbent,
            Direction::Minimize => candidate < incumbent,
        }
    }

    /// The worst possible score, used to seed search loops.
    fn worst(&self) -> f64 {
        match self.direction() {
            Direction::Maximize => f64::NEG_INFINITY,
            Direction::Minimize => f64::INFINITY,
        }
    }

    /// Maps an already-computed score into a `[0, 1]`-ish utility where
    /// larger is better, enabling composition across objectives with
    /// different units.
    ///
    /// The default maps maximizing objectives through the identity and
    /// minimizing objectives through `1 / (1 + value)`.
    fn utility_of(&self, value: f64) -> f64 {
        match self.direction() {
            Direction::Maximize => value,
            Direction::Minimize => 1.0 / (1.0 + value.max(0.0)),
        }
    }

    /// Evaluates and maps through [`utility_of`](Self::utility_of) in one
    /// call.
    fn utility(&self, model: &DeploymentModel, deployment: &Deployment) -> f64 {
        self.utility_of(self.evaluate(model, deployment))
    }

    /// The dense compiled form of this objective, if it has one.
    ///
    /// Returning `Some` lets algorithms score candidates through
    /// [`IncrementalScore`](crate::IncrementalScore) instead of
    /// [`evaluate`](Self::evaluate); the compiled form must produce the same
    /// value as `evaluate` for any deployment over the compiled model.
    /// Custom objectives default to `None`, which keeps every algorithm on
    /// the naive path.
    fn compiled(&self) -> Option<CompiledObjective> {
        None
    }
}

/// The paper's availability objective (maximize).
///
/// `availability(d) = Σ freq(cᵢ,cⱼ) · rel(d(cᵢ), d(cⱼ)) / Σ freq(cᵢ,cⱼ)`
///
/// — the frequency-weighted probability that an interaction succeeds, where
/// local interactions always succeed (`rel(h,h) = 1`) and interactions across
/// missing links always fail (`rel = 0`). A system whose most frequent and
/// voluminous interactions are local or run over reliable links scores high.
///
/// A model with no interactions at all is defined to be perfectly available
/// (score `1.0`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Availability;

impl Objective for Availability {
    fn name(&self) -> &str {
        "availability"
    }

    fn direction(&self) -> Direction {
        Direction::Maximize
    }

    fn evaluate(&self, model: &DeploymentModel, deployment: &Deployment) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for link in model.logical_links() {
            let freq = link.frequency();
            if freq <= 0.0 {
                continue;
            }
            total += freq;
            let (a, b) = (link.ends().lo(), link.ends().hi());
            if let (Some(ha), Some(hb)) = (deployment.host_of(a), deployment.host_of(b)) {
                weighted += freq * model.reliability(ha, hb);
            }
        }
        if total == 0.0 {
            1.0
        } else {
            weighted / total
        }
    }

    fn compiled(&self) -> Option<CompiledObjective> {
        Some(CompiledObjective::single(PartKind::Availability))
    }
}

/// Availability with multi-hop path semantics (maximize).
///
/// Identical to [`Availability`] except that interactions between
/// non-adjacent hosts are scored with the best path's compounded per-hop
/// reliability ([`DeploymentModel::best_path`]) instead of zero. Use it when
/// the running platform relays frames hop-by-hop (as `redep-prism` does);
/// experiment A3 shows it tracking measured availability within fractions of
/// a percent.
///
/// Evaluation runs a shortest-path search per interacting host pair, so it
/// is noticeably more expensive than [`Availability`] — fine for analyzers
/// and auction bids, slow inside the Exact algorithm's kⁿ loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PathAwareAvailability;

thread_local! {
    /// Reusable per-thread path-reliability cache for the naive
    /// [`PathAwareAvailability::evaluate`] path, so repeated scalar
    /// evaluations don't allocate a fresh map per call. Entries are
    /// `(lo, hi, reliability)` with `lo < hi`; the list is tiny (bounded by
    /// the interacting host pairs of one deployment), so a linear scan beats
    /// a tree.
    static PATH_CACHE: RefCell<Vec<(crate::HostId, crate::HostId, f64)>> =
        const { RefCell::new(Vec::new()) };
}

impl Objective for PathAwareAvailability {
    fn name(&self) -> &str {
        "availability (path-aware)"
    }

    fn direction(&self) -> Direction {
        Direction::Maximize
    }

    fn evaluate(&self, model: &DeploymentModel, deployment: &Deployment) -> f64 {
        PATH_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            cache.clear();
            let mut weighted = 0.0;
            let mut total = 0.0;
            for link in model.logical_links() {
                let freq = link.frequency();
                if freq <= 0.0 {
                    continue;
                }
                total += freq;
                let (a, b) = (link.ends().lo(), link.ends().hi());
                if let (Some(ha), Some(hb)) = (deployment.host_of(a), deployment.host_of(b)) {
                    let (lo, hi) = if ha < hb { (ha, hb) } else { (hb, ha) };
                    let rel = match cache.iter().find(|&&(a, b, _)| a == lo && b == hi) {
                        Some(&(_, _, rel)) => rel,
                        None => {
                            let rel = model
                                .best_path(ha, hb)
                                .map(|p| p.reliability)
                                .unwrap_or(0.0);
                            cache.push((lo, hi, rel));
                            rel
                        }
                    };
                    weighted += freq * rel;
                }
            }
            if total == 0.0 {
                1.0
            } else {
                weighted / total
            }
        })
    }

    fn compiled(&self) -> Option<CompiledObjective> {
        Some(CompiledObjective::single(PartKind::PathAwareAvailability))
    }
}

/// Mean remote-interaction latency (minimize).
///
/// Each interaction between components on hosts `ha ≠ hb` costs
/// `delay(ha,hb) + event_size / bandwidth(ha,hb)`; local interactions are
/// free. The score is the frequency-weighted mean cost per interaction.
/// Interactions across missing links contribute a large finite penalty
/// ([`Latency::DISCONNECTED_PENALTY`]) rather than infinity so that partial
/// connectivity still yields comparable scores.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Latency {
    penalty: f64,
}

impl Latency {
    /// Latency charged for an interaction between disconnected hosts.
    pub const DISCONNECTED_PENALTY: f64 = 1e6;

    /// Creates the objective with the default disconnection penalty.
    pub fn new() -> Self {
        Latency {
            penalty: Self::DISCONNECTED_PENALTY,
        }
    }

    /// Creates the objective with a custom disconnection penalty.
    ///
    /// # Panics
    ///
    /// Panics if `penalty` is negative.
    pub fn with_penalty(penalty: f64) -> Self {
        assert!(penalty >= 0.0, "penalty must be non-negative");
        Latency { penalty }
    }
}

impl Default for Latency {
    fn default() -> Self {
        Latency::new()
    }
}

impl Objective for Latency {
    fn name(&self) -> &str {
        "latency"
    }

    fn direction(&self) -> Direction {
        Direction::Minimize
    }

    fn evaluate(&self, model: &DeploymentModel, deployment: &Deployment) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for link in model.logical_links() {
            let freq = link.frequency();
            if freq <= 0.0 {
                continue;
            }
            total += freq;
            let (a, b) = (link.ends().lo(), link.ends().hi());
            let cost = match (deployment.host_of(a), deployment.host_of(b)) {
                (Some(ha), Some(hb)) if ha == hb => 0.0,
                (Some(ha), Some(hb)) => match model.physical_link(ha, hb) {
                    Some(l) => l.delay() + link.event_size() / l.bandwidth(),
                    None => self.penalty,
                },
                _ => self.penalty,
            };
            weighted += freq * cost;
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }

    fn compiled(&self) -> Option<CompiledObjective> {
        Some(CompiledObjective::single(PartKind::Latency {
            penalty: self.penalty,
        }))
    }
}

/// Total remote communication volume (minimize) — the objective minimized by
/// the I5 binary-integer-programming approach the paper compares against.
///
/// `volume(d) = Σ_{d(cᵢ) ≠ d(cⱼ)} freq(cᵢ,cⱼ) · size(cᵢ,cⱼ)`
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CommunicationVolume;

impl Objective for CommunicationVolume {
    fn name(&self) -> &str {
        "communication volume"
    }

    fn direction(&self) -> Direction {
        Direction::Minimize
    }

    fn evaluate(&self, model: &DeploymentModel, deployment: &Deployment) -> f64 {
        let mut volume = 0.0;
        for link in model.logical_links() {
            let (a, b) = (link.ends().lo(), link.ends().hi());
            match (deployment.host_of(a), deployment.host_of(b)) {
                (Some(ha), Some(hb)) if ha == hb => {}
                _ => volume += link.frequency() * link.event_size(),
            }
        }
        volume
    }

    fn compiled(&self) -> Option<CompiledObjective> {
        Some(CompiledObjective::single(PartKind::CommunicationVolume))
    }
}

/// Interaction-weighted link security (maximize).
///
/// `security(d) = Σ freq(cᵢ,cⱼ) · sec(d(cᵢ), d(cⱼ)) / Σ freq(cᵢ,cⱼ)`
///
/// where local interactions are perfectly secure. Link security is an
/// architect-supplied parameter ([`keys::LINK_SECURITY`]) — the paper's
/// example of a parameter that cannot be monitored.
///
/// [`keys::LINK_SECURITY`]: crate::keys::LINK_SECURITY
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LinkSecurity;

impl Objective for LinkSecurity {
    fn name(&self) -> &str {
        "security"
    }

    fn direction(&self) -> Direction {
        Direction::Maximize
    }

    fn evaluate(&self, model: &DeploymentModel, deployment: &Deployment) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0.0;
        for link in model.logical_links() {
            let freq = link.frequency();
            if freq <= 0.0 {
                continue;
            }
            total += freq;
            let (a, b) = (link.ends().lo(), link.ends().hi());
            if let (Some(ha), Some(hb)) = (deployment.host_of(a), deployment.host_of(b)) {
                weighted += freq * model.security(ha, hb);
            }
        }
        if total == 0.0 {
            1.0
        } else {
            weighted / total
        }
    }

    fn compiled(&self) -> Option<CompiledObjective> {
        Some(CompiledObjective::single(PartKind::LinkSecurity))
    }
}

/// A weighted combination of objectives, for multi-objective analysis
/// (the paper's §6 future-work direction: "mitigating techniques for
/// situations where different desired system characteristics may be
/// conflicting").
///
/// Each part contributes `weight · utility`, where [`Objective::utility`]
/// maps every objective onto a larger-is-better scale. The composite itself
/// is maximized.
///
/// # Example
///
/// ```
/// use redep_model::{Composite, Availability, Latency, Objective, Direction};
/// let combined = Composite::new()
///     .with("availability", Availability, 0.7)
///     .with("latency", Latency::new(), 0.3);
/// assert_eq!(combined.direction(), Direction::Maximize);
/// ```
#[derive(Debug, Default)]
pub struct Composite {
    parts: Vec<(String, Box<dyn Objective>, f64)>,
}

impl Composite {
    /// Creates an empty composite.
    pub fn new() -> Self {
        Composite { parts: Vec::new() }
    }

    /// Adds a weighted part (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative.
    pub fn with(
        mut self,
        label: impl Into<String>,
        objective: impl Objective + 'static,
        weight: f64,
    ) -> Self {
        self.push(label, objective, weight);
        self
    }

    /// Adds a weighted part.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative.
    pub fn push(
        &mut self,
        label: impl Into<String>,
        objective: impl Objective + 'static,
        weight: f64,
    ) {
        assert!(weight >= 0.0, "weight must be non-negative, got {weight}");
        self.parts.push((label.into(), Box::new(objective), weight));
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Returns `true` if the composite has no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Per-part `(label, raw value, weighted utility)` breakdown.
    ///
    /// Each part is evaluated exactly once; the weighted utility is derived
    /// from the raw value via [`Objective::utility_of`].
    pub fn breakdown(
        &self,
        model: &DeploymentModel,
        deployment: &Deployment,
    ) -> Vec<(String, f64, f64)> {
        self.parts
            .iter()
            .map(|(label, obj, w)| {
                let value = obj.evaluate(model, deployment);
                (label.clone(), value, w * obj.utility_of(value))
            })
            .collect()
    }
}

impl Objective for Composite {
    fn name(&self) -> &str {
        "composite"
    }

    fn direction(&self) -> Direction {
        Direction::Maximize
    }

    fn evaluate(&self, model: &DeploymentModel, deployment: &Deployment) -> f64 {
        self.parts
            .iter()
            .map(|(_, obj, w)| w * obj.utility(model, deployment))
            .sum()
    }

    fn compiled(&self) -> Option<CompiledObjective> {
        let mut parts = Vec::with_capacity(self.parts.len());
        for (_, obj, w) in &self.parts {
            parts.push((obj.compiled()?.as_single()?, *w));
        }
        Some(CompiledObjective::composite(parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ComponentId, HostId};

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }
    fn c(n: u32) -> ComponentId {
        ComponentId::new(n)
    }

    /// Two hosts joined by a 0.5-reliable, bandwidth-10, delay-2 link;
    /// two components interacting with frequency 4 and event size 20.
    fn fixture() -> DeploymentModel {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        let b = m.add_host("b").unwrap();
        m.set_physical_link(a, b, |l| {
            l.set_reliability(0.5);
            l.set_bandwidth(10.0);
            l.set_delay(2.0);
            l.set_security(0.25);
        })
        .unwrap();
        let x = m.add_component("x").unwrap();
        let y = m.add_component("y").unwrap();
        m.set_logical_link(x, y, |l| {
            l.set_frequency(4.0);
            l.set_event_size(20.0);
        })
        .unwrap();
        m
    }

    fn remote() -> Deployment {
        [(c(0), h(0)), (c(1), h(1))].into_iter().collect()
    }

    fn local() -> Deployment {
        [(c(0), h(0)), (c(1), h(0))].into_iter().collect()
    }

    #[test]
    fn availability_of_local_deployment_is_one() {
        let m = fixture();
        assert_eq!(Availability.evaluate(&m, &local()), 1.0);
    }

    #[test]
    fn availability_of_remote_deployment_is_link_reliability() {
        let m = fixture();
        assert!((Availability.evaluate(&m, &remote()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn availability_of_empty_interaction_set_is_one() {
        let m = DeploymentModel::new();
        assert_eq!(Availability.evaluate(&m, &Deployment::new()), 1.0);
    }

    #[test]
    fn availability_weights_by_frequency() {
        let mut m = fixture();
        let z = m.add_component("z").unwrap();
        // High-frequency local pair dominates.
        m.set_logical_link(c(0), z, |l| l.set_frequency(12.0))
            .unwrap();
        let mut d = remote();
        d.assign(z, h(0));
        // (4 * 0.5 + 12 * 1.0) / 16 = 0.875
        assert!((Availability.evaluate(&m, &d) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn unassigned_components_count_as_unavailable() {
        let m = fixture();
        let d: Deployment = [(c(0), h(0))].into_iter().collect();
        assert_eq!(Availability.evaluate(&m, &d), 0.0);
    }

    #[test]
    fn latency_of_local_deployment_is_zero() {
        let m = fixture();
        assert_eq!(Latency::new().evaluate(&m, &local()), 0.0);
    }

    #[test]
    fn latency_of_remote_deployment_is_delay_plus_transfer() {
        let m = fixture();
        // delay 2 + size 20 / bandwidth 10 = 4.0 per interaction
        assert!((Latency::new().evaluate(&m, &remote()) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn latency_penalizes_disconnection_finitely() {
        let mut m = fixture();
        m.remove_physical_link(h(0), h(1)).unwrap();
        let v = Latency::new().evaluate(&m, &remote());
        assert_eq!(v, Latency::DISCONNECTED_PENALTY);
        assert!(v.is_finite());
    }

    #[test]
    fn communication_volume_counts_remote_traffic_only() {
        let m = fixture();
        assert_eq!(CommunicationVolume.evaluate(&m, &local()), 0.0);
        assert!((CommunicationVolume.evaluate(&m, &remote()) - 80.0).abs() < 1e-12);
    }

    #[test]
    fn security_weighted_by_frequency() {
        let m = fixture();
        assert!((LinkSecurity.evaluate(&m, &remote()) - 0.25).abs() < 1e-12);
        assert_eq!(LinkSecurity.evaluate(&m, &local()), 1.0);
    }

    #[test]
    fn path_aware_availability_scores_multi_hop_pairs() {
        // a — b — c; components on a and c, no direct a–c link.
        let mut m = DeploymentModel::new();
        let ha = m.add_host("a").unwrap();
        let hb = m.add_host("b").unwrap();
        let hc = m.add_host("c").unwrap();
        m.set_physical_link(ha, hb, |l| l.set_reliability(0.9))
            .unwrap();
        m.set_physical_link(hb, hc, |l| l.set_reliability(0.8))
            .unwrap();
        let x = m.add_component("x").unwrap();
        let y = m.add_component("y").unwrap();
        m.set_logical_link(x, y, |l| l.set_frequency(2.0)).unwrap();
        let d: Deployment = [(x, ha), (y, hc)].into_iter().collect();
        // Direct-link semantics: unavailable.
        assert_eq!(Availability.evaluate(&m, &d), 0.0);
        // Path semantics: 0.9 × 0.8.
        assert!((PathAwareAvailability.evaluate(&m, &d) - 0.72).abs() < 1e-12);
    }

    #[test]
    fn path_aware_agrees_with_direct_on_adjacent_pairs() {
        let m = fixture();
        assert!(
            (PathAwareAvailability.evaluate(&m, &remote()) - Availability.evaluate(&m, &remote()))
                .abs()
                < 1e-12
        );
        assert_eq!(PathAwareAvailability.evaluate(&m, &local()), 1.0);
    }

    #[test]
    fn is_improvement_respects_direction() {
        assert!(Availability.is_improvement(0.5, 0.6));
        assert!(!Availability.is_improvement(0.6, 0.5));
        assert!(Latency::new().is_improvement(5.0, 4.0));
        assert!(!Latency::new().is_improvement(4.0, 5.0));
    }

    #[test]
    fn worst_seeds_search_loops() {
        assert_eq!(Availability.worst(), f64::NEG_INFINITY);
        assert_eq!(Latency::new().worst(), f64::INFINITY);
        assert!(Availability.is_improvement(Availability.worst(), 0.0));
        assert!(Latency::new().is_improvement(Latency::new().worst(), 100.0));
    }

    #[test]
    fn composite_prefers_local_deployment_here() {
        let m = fixture();
        let obj = Composite::new()
            .with("availability", Availability, 0.5)
            .with("latency", Latency::new(), 0.5);
        let score_local = obj.evaluate(&m, &local());
        let score_remote = obj.evaluate(&m, &remote());
        assert!(obj.is_improvement(score_remote, score_local));
    }

    #[test]
    fn composite_breakdown_reports_parts() {
        let m = fixture();
        let obj = Composite::new()
            .with("availability", Availability, 1.0)
            .with("latency", Latency::new(), 1.0);
        let parts = obj.breakdown(&m, &remote());
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, "availability");
        assert!((parts[0].1 - 0.5).abs() < 1e-12);
        // latency utility = 1 / (1 + 4) = 0.2
        assert!((parts[1].2 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn minimizing_utility_is_monotonically_decreasing() {
        let m = fixture();
        let lat = Latency::new();
        let u_local = lat.utility(&m, &local());
        let u_remote = lat.utility(&m, &remote());
        assert!(u_local > u_remote);
        assert!((0.0..=1.0).contains(&u_remote));
    }
}
