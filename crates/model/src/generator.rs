//! Random architecture generation — the backend of DeSi's `Generator`
//! controller component.
//!
//! The generator fabricates hypothetical deployment architectures from a
//! [`GeneratorConfig`]: numbers of hosts and components plus ranges for every
//! built-in parameter, exactly as DeSi's Generator takes "the desired number
//! of hardware hosts, software components, and a set of ranges for system
//! parameters".

use crate::deployment::Deployment;
use crate::ids::{ComponentId, HostId};
use crate::model::DeploymentModel;
use crate::ModelError;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// An inclusive parameter range `[lo, hi]` sampled uniformly.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Range {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Range {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "range lower bound {lo} exceeds upper bound {hi}");
        Range { lo, hi }
    }

    /// Samples the range uniformly.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.lo == self.hi {
            self.lo
        } else {
            rng.random_range(self.lo..=self.hi)
        }
    }
}

impl From<(f64, f64)> for Range {
    fn from((lo, hi): (f64, f64)) -> Self {
        Range::new(lo, hi)
    }
}

/// Configuration for [`Generator::generate`].
///
/// The defaults mirror the scale the paper's centralized examples operate at
/// (tens of components over a handful of hosts) and guarantee that the
/// generated system admits at least one valid deployment.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of hardware hosts.
    pub hosts: usize,
    /// Number of software components.
    pub components: usize,
    /// Available memory per host.
    pub host_memory: Range,
    /// Required memory per component.
    pub component_memory: Range,
    /// Reliability per physical link.
    pub reliability: Range,
    /// Bandwidth per physical link.
    pub bandwidth: Range,
    /// Transmission delay per physical link.
    pub delay: Range,
    /// Interaction frequency per logical link.
    pub frequency: Range,
    /// Average event size per logical link.
    pub event_size: Range,
    /// Probability that any given host pair is physically linked
    /// (a random spanning tree keeps the network connected regardless).
    pub physical_density: f64,
    /// Probability that any given component pair interacts.
    pub logical_density: f64,
    /// RNG seed; equal configs with equal seeds generate identical systems.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            hosts: 4,
            components: 12,
            host_memory: Range::new(80.0, 120.0),
            component_memory: Range::new(5.0, 15.0),
            reliability: Range::new(0.3, 1.0),
            bandwidth: Range::new(50_000.0, 1_000_000.0),
            delay: Range::new(0.1, 5.0),
            frequency: Range::new(0.0, 10.0),
            event_size: Range::new(1.0, 100.0),
            physical_density: 0.8,
            logical_density: 0.4,
            seed: 0,
        }
    }
}

impl GeneratorConfig {
    /// Convenience constructor fixing the system size, keeping other defaults.
    pub fn sized(hosts: usize, components: usize) -> Self {
        GeneratorConfig {
            hosts,
            components,
            ..GeneratorConfig::default()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated system: a model plus a valid initial deployment.
#[derive(Clone, PartialEq, Debug)]
pub struct GeneratedSystem {
    /// The fabricated deployment-architecture model.
    pub model: DeploymentModel,
    /// A random valid initial deployment of the model's components.
    pub initial: Deployment,
}

/// Fabricates random deployment architectures.
///
/// # Example
///
/// ```
/// use redep_model::{Generator, GeneratorConfig};
/// let system = Generator::generate(&GeneratorConfig::sized(4, 12))?;
/// assert_eq!(system.model.host_count(), 4);
/// assert_eq!(system.model.component_count(), 12);
/// assert!(system.initial.validate(&system.model).is_ok());
/// # Ok::<(), redep_model::ModelError>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Generator;

impl Generator {
    /// Generates a model and a valid random initial deployment.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Generation`] when the configuration is
    /// degenerate (zero hosts with nonzero components) or when no valid
    /// initial deployment could be found (components too big for the hosts).
    pub fn generate(config: &GeneratorConfig) -> Result<GeneratedSystem, ModelError> {
        if config.hosts == 0 && config.components > 0 {
            return Err(ModelError::Generation(
                "cannot deploy components onto zero hosts".into(),
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut model = DeploymentModel::new();

        let mut hosts = Vec::with_capacity(config.hosts);
        for i in 0..config.hosts {
            let id = model.add_host(format!("host-{i}"))?;
            let memory = config.host_memory.sample(&mut rng);
            model.host_mut(id)?.set_memory(memory);
            hosts.push(id);
        }

        let mut components = Vec::with_capacity(config.components);
        for i in 0..config.components {
            let id = model.add_component(format!("comp-{i}"))?;
            let memory = config.component_memory.sample(&mut rng);
            model.component_mut(id)?.set_required_memory(memory);
            components.push(id);
        }

        Self::wire_physical(&mut model, &hosts, config, &mut rng)?;
        Self::wire_logical(&mut model, &components, config, &mut rng)?;

        let initial = Self::random_valid_deployment(&model, &mut rng)?;
        Ok(GeneratedSystem { model, initial })
    }

    /// Connects hosts: a random spanning tree for connectivity, then extra
    /// links with probability `physical_density`.
    fn wire_physical(
        model: &mut DeploymentModel,
        hosts: &[HostId],
        config: &GeneratorConfig,
        rng: &mut ChaCha8Rng,
    ) -> Result<(), ModelError> {
        let mut shuffled = hosts.to_vec();
        shuffled.shuffle(rng);
        for i in 1..shuffled.len() {
            let parent = shuffled[rng.random_range(0..i)];
            Self::link_hosts(model, parent, shuffled[i], config, rng)?;
        }
        for i in 0..hosts.len() {
            for j in (i + 1)..hosts.len() {
                if model.physical_link(hosts[i], hosts[j]).is_none()
                    && rng.random_bool(config.physical_density.clamp(0.0, 1.0))
                {
                    Self::link_hosts(model, hosts[i], hosts[j], config, rng)?;
                }
            }
        }
        Ok(())
    }

    fn link_hosts(
        model: &mut DeploymentModel,
        a: HostId,
        b: HostId,
        config: &GeneratorConfig,
        rng: &mut ChaCha8Rng,
    ) -> Result<(), ModelError> {
        let reliability = config.reliability.sample(rng).clamp(0.0, 1.0);
        let bandwidth = config.bandwidth.sample(rng).max(f64::MIN_POSITIVE);
        let delay = config.delay.sample(rng).max(0.0);
        model.set_physical_link(a, b, |l| {
            l.set_reliability(reliability);
            l.set_bandwidth(bandwidth);
            l.set_delay(delay);
        })
    }

    /// Connects components: a random spanning tree so no component is
    /// isolated, then extra interactions with probability `logical_density`.
    fn wire_logical(
        model: &mut DeploymentModel,
        components: &[ComponentId],
        config: &GeneratorConfig,
        rng: &mut ChaCha8Rng,
    ) -> Result<(), ModelError> {
        let mut shuffled = components.to_vec();
        shuffled.shuffle(rng);
        for i in 1..shuffled.len() {
            let parent = shuffled[rng.random_range(0..i)];
            Self::link_components(model, parent, shuffled[i], config, rng)?;
        }
        for i in 0..components.len() {
            for j in (i + 1)..components.len() {
                if model.logical_link(components[i], components[j]).is_none()
                    && rng.random_bool(config.logical_density.clamp(0.0, 1.0))
                {
                    Self::link_components(model, components[i], components[j], config, rng)?;
                }
            }
        }
        Ok(())
    }

    fn link_components(
        model: &mut DeploymentModel,
        a: ComponentId,
        b: ComponentId,
        config: &GeneratorConfig,
        rng: &mut ChaCha8Rng,
    ) -> Result<(), ModelError> {
        let frequency = config.frequency.sample(rng).max(0.0);
        let size = config.event_size.sample(rng).max(f64::MIN_POSITIVE);
        model.set_logical_link(a, b, |l| {
            l.set_frequency(frequency);
            l.set_event_size(size);
        })
    }

    /// Finds a random deployment satisfying the model's constraints by
    /// shuffled first-fit, retrying a bounded number of times.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Generation`] when no valid deployment was found
    /// within the retry budget.
    pub fn random_valid_deployment(
        model: &DeploymentModel,
        rng: &mut ChaCha8Rng,
    ) -> Result<Deployment, ModelError> {
        use crate::constraints::ConstraintChecker;
        use crate::eval::{CompiledModel, UNASSIGNED};
        const ATTEMPTS: usize = 200;
        let hosts = model.host_ids();
        let mut components = model.component_ids();

        // Compiled fast path: per-candidate admission drops from a full
        // deployment scan to an O(groups) load lookup, which is what lets
        // the generator fabricate 1000×10000 systems in seconds. The naive
        // loop below stays as the fallback for uncompilable checkers.
        let cm = CompiledModel::compile(model);
        if let Some(cc) = model.constraints().compile(model, &cm) {
            for _ in 0..ATTEMPTS {
                components.shuffle(rng);
                let mut order = hosts.clone();
                order.shuffle(rng);
                let mut assign = vec![UNASSIGNED; components.len()];
                let mut load = vec![0.0f64; hosts.len()];
                let mut ok = true;
                'comp: for &c in &components {
                    let ci = cm.comp_index(c).expect("generated component");
                    for &h in &order {
                        let hi = cm.host_index(h).expect("generated host");
                        if cc.admits_with_load(&assign, &load, ci, hi) {
                            assign[ci as usize] = hi;
                            load[hi as usize] += cm.comp_memory()[ci as usize];
                            continue 'comp;
                        }
                    }
                    ok = false;
                    break;
                }
                if ok && cc.check(&assign) {
                    let d = cm.decode_assignment(&assign);
                    debug_assert!(model.constraints().check(model, &d).is_ok());
                    return Ok(d);
                }
            }
            return Err(ModelError::Generation(format!(
                "no valid deployment found in {ATTEMPTS} attempts; \
                 constraints may be unsatisfiable"
            )));
        }

        for _ in 0..ATTEMPTS {
            components.shuffle(rng);
            let mut order = hosts.clone();
            order.shuffle(rng);
            let mut d = Deployment::new();
            let mut ok = true;
            'comp: for &c in &components {
                for &h in &order {
                    if model.constraints().admits(model, &d, c, h) {
                        d.assign(c, h);
                        continue 'comp;
                    }
                }
                ok = false;
                break;
            }
            if ok && model.constraints().check(model, &d).is_ok() {
                return Ok(d);
            }
        }
        Err(ModelError::Generation(format!(
            "no valid deployment found in {ATTEMPTS} attempts; \
             constraints may be unsatisfiable"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ConstraintChecker;

    #[test]
    fn generates_requested_sizes() {
        let s = Generator::generate(&GeneratorConfig::sized(5, 20)).unwrap();
        assert_eq!(s.model.host_count(), 5);
        assert_eq!(s.model.component_count(), 20);
    }

    #[test]
    fn initial_deployment_is_complete_and_valid() {
        let s = Generator::generate(&GeneratorConfig::sized(4, 16)).unwrap();
        s.initial.validate(&s.model).unwrap();
        s.model.constraints().check(&s.model, &s.initial).unwrap();
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(7)).unwrap();
        let b = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(7)).unwrap();
        assert_eq!(a.model, b.model);
        assert_eq!(a.initial, b.initial);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(1)).unwrap();
        let b = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(2)).unwrap();
        assert_ne!(a.model, b.model);
    }

    #[test]
    fn network_is_connected() {
        let s = Generator::generate(&GeneratorConfig {
            physical_density: 0.0, // only the spanning tree
            ..GeneratorConfig::sized(8, 8)
        })
        .unwrap();
        // BFS from the first host must reach all hosts.
        let hosts = s.model.host_ids();
        let mut seen = std::collections::BTreeSet::from([hosts[0]]);
        let mut queue = vec![hosts[0]];
        while let Some(h) = queue.pop() {
            for n in s.model.neighbors(h) {
                if seen.insert(n) {
                    queue.push(n);
                }
            }
        }
        assert_eq!(seen.len(), hosts.len());
    }

    #[test]
    fn no_component_is_isolated() {
        let s = Generator::generate(&GeneratorConfig {
            logical_density: 0.0, // only the spanning tree
            ..GeneratorConfig::sized(4, 10)
        })
        .unwrap();
        for c in s.model.component_ids() {
            assert!(
                !s.model.logical_neighbors(c).is_empty(),
                "component {c} has no interactions"
            );
        }
    }

    #[test]
    fn zero_hosts_with_components_is_an_error() {
        let cfg = GeneratorConfig {
            hosts: 0,
            components: 3,
            ..GeneratorConfig::default()
        };
        assert!(matches!(
            Generator::generate(&cfg),
            Err(ModelError::Generation(_))
        ));
    }

    #[test]
    fn impossible_memory_reports_generation_failure() {
        let cfg = GeneratorConfig {
            host_memory: Range::new(1.0, 1.0),
            component_memory: Range::new(50.0, 50.0),
            ..GeneratorConfig::sized(2, 4)
        };
        assert!(matches!(
            Generator::generate(&cfg),
            Err(ModelError::Generation(_))
        ));
    }

    #[test]
    fn generated_parameters_respect_ranges() {
        let cfg = GeneratorConfig::sized(4, 10).with_seed(3);
        let s = Generator::generate(&cfg).unwrap();
        for host in s.model.hosts() {
            let m = host.memory();
            assert!(m >= cfg.host_memory.lo && m <= cfg.host_memory.hi);
        }
        for link in s.model.physical_links() {
            assert!(link.reliability() >= cfg.reliability.lo);
            assert!(link.reliability() <= cfg.reliability.hi);
        }
    }

    #[test]
    fn respects_location_constraints_in_initial_deployment() {
        use crate::constraints::Constraint;
        use std::collections::BTreeSet;
        let mut s = Generator::generate(&GeneratorConfig::sized(3, 6).with_seed(1)).unwrap();
        let c0 = s.model.component_ids()[0];
        let h0 = s.model.host_ids()[0];
        s.model.constraints_mut().add(Constraint::PinnedTo {
            component: c0,
            hosts: BTreeSet::from([h0]),
        });
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let d = Generator::random_valid_deployment(&s.model, &mut rng).unwrap();
        assert_eq!(d.host_of(c0), Some(h0));
        s.model.constraints().check(&s.model, &d).unwrap();
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let r = Range::new(2.0, 3.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            let v = r.sample(&mut rng);
            assert!((2.0..=3.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_range_panics() {
        let _ = Range::new(3.0, 2.0);
    }
}
