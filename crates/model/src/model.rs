//! The deployment-architecture model itself.

use crate::constraints::ConstraintSet;
use crate::ids::{ComponentId, HostId};
use crate::links::{ComponentPair, HostPair, LogicalLink, PhysicalLink};
use crate::parts::{Component, Host};
use crate::ModelError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The model of a distributed system's deployment architecture.
///
/// Holds the four kinds of model parts from the paper — hosts, components,
/// physical links, logical links — together with the architect-supplied
/// [`ConstraintSet`]. The model deliberately does **not** embed a current
/// [`Deployment`](crate::Deployment); deployments are first-class values so
/// that algorithms can propose many candidates against one model.
///
/// All collections are ordered maps, so iteration (and everything derived
/// from it) is deterministic.
///
/// # Example
///
/// ```
/// use redep_model::DeploymentModel;
/// let mut model = DeploymentModel::new();
/// let a = model.add_host("alpha")?;
/// let b = model.add_host("beta")?;
/// model.set_physical_link(a, b, |l| l.set_reliability(0.9))?;
/// assert_eq!(model.reliability(a, b), 0.9);
/// assert_eq!(model.reliability(a, a), 1.0); // local interaction
/// # Ok::<(), redep_model::ModelError>(())
/// ```
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct DeploymentModel {
    hosts: BTreeMap<HostId, Host>,
    components: BTreeMap<ComponentId, Component>,
    #[serde(with = "physical_link_map")]
    physical_links: BTreeMap<HostPair, PhysicalLink>,
    #[serde(with = "logical_link_map")]
    logical_links: BTreeMap<ComponentPair, LogicalLink>,
    constraints: ConstraintSet,
    next_host: u32,
    next_component: u32,
}

/// Quality of a multi-hop path returned by [`DeploymentModel::best_path`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PathQuality {
    /// Product of the per-hop link reliabilities.
    pub reliability: f64,
    /// Sum of the per-hop transmission delays.
    pub delay: f64,
    /// Bottleneck bandwidth along the path.
    pub bandwidth: f64,
    /// Number of hops (`0` for a host with itself).
    pub hops: usize,
}

/// Serializes the physical-link map as a sequence of links (JSON maps need
/// string keys; the key is recoverable from each link's endpoints).
mod physical_link_map {
    use super::*;
    use serde::{Error, Value};

    pub fn serialize(map: &BTreeMap<HostPair, PhysicalLink>) -> Value {
        Value::Array(map.values().map(Serialize::serialize).collect())
    }

    pub fn deserialize(value: &Value) -> Result<BTreeMap<HostPair, PhysicalLink>, Error> {
        let links = Vec::<PhysicalLink>::deserialize(value)?;
        Ok(links.into_iter().map(|l| (l.ends(), l)).collect())
    }
}

/// Serializes the logical-link map as a sequence of links.
mod logical_link_map {
    use super::*;
    use serde::{Error, Value};

    pub fn serialize(map: &BTreeMap<ComponentPair, LogicalLink>) -> Value {
        Value::Array(map.values().map(Serialize::serialize).collect())
    }

    pub fn deserialize(value: &Value) -> Result<BTreeMap<ComponentPair, LogicalLink>, Error> {
        let links = Vec::<LogicalLink>::deserialize(value)?;
        Ok(links.into_iter().map(|l| (l.ends(), l)).collect())
    }
}

impl DeploymentModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        DeploymentModel::default()
    }

    // ---- hosts ----------------------------------------------------------

    /// Adds a host with a fresh id and the given name.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` return leaves room for id-space
    /// exhaustion and name-uniqueness policies without breaking callers.
    pub fn add_host(&mut self, name: impl Into<String>) -> Result<HostId, ModelError> {
        let id = HostId::new(self.next_host);
        self.next_host += 1;
        self.hosts.insert(id, Host::new(id, name));
        Ok(id)
    }

    /// Removes a host and all physical links attached to it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownHost`] if the host does not exist.
    /// The caller is responsible for ensuring no deployment still maps
    /// components to this host.
    pub fn remove_host(&mut self, id: HostId) -> Result<Host, ModelError> {
        let host = self.hosts.remove(&id).ok_or(ModelError::UnknownHost(id))?;
        self.physical_links.retain(|pair, _| !pair.contains(id));
        Ok(host)
    }

    /// Returns a host by id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownHost`] if the host does not exist.
    pub fn host(&self, id: HostId) -> Result<&Host, ModelError> {
        self.hosts.get(&id).ok_or(ModelError::UnknownHost(id))
    }

    /// Returns a host by id for modification.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownHost`] if the host does not exist.
    pub fn host_mut(&mut self, id: HostId) -> Result<&mut Host, ModelError> {
        self.hosts.get_mut(&id).ok_or(ModelError::UnknownHost(id))
    }

    /// Returns `true` if the model contains the host.
    pub fn contains_host(&self, id: HostId) -> bool {
        self.hosts.contains_key(&id)
    }

    /// Iterates over hosts in id order.
    pub fn hosts(&self) -> impl Iterator<Item = &Host> {
        self.hosts.values()
    }

    /// Returns all host ids in order.
    pub fn host_ids(&self) -> Vec<HostId> {
        self.hosts.keys().copied().collect()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    // ---- components -----------------------------------------------------

    /// Adds a component with a fresh id and the given name.
    ///
    /// # Errors
    ///
    /// Currently infallible; see [`DeploymentModel::add_host`].
    pub fn add_component(&mut self, name: impl Into<String>) -> Result<ComponentId, ModelError> {
        let id = ComponentId::new(self.next_component);
        self.next_component += 1;
        self.components.insert(id, Component::new(id, name));
        Ok(id)
    }

    /// Removes a component and all logical links attached to it.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownComponent`] if the component does not
    /// exist.
    pub fn remove_component(&mut self, id: ComponentId) -> Result<Component, ModelError> {
        let component = self
            .components
            .remove(&id)
            .ok_or(ModelError::UnknownComponent(id))?;
        self.logical_links.retain(|pair, _| !pair.contains(id));
        Ok(component)
    }

    /// Returns a component by id.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownComponent`] if the component does not
    /// exist.
    pub fn component(&self, id: ComponentId) -> Result<&Component, ModelError> {
        self.components
            .get(&id)
            .ok_or(ModelError::UnknownComponent(id))
    }

    /// Returns a component by id for modification.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownComponent`] if the component does not
    /// exist.
    pub fn component_mut(&mut self, id: ComponentId) -> Result<&mut Component, ModelError> {
        self.components
            .get_mut(&id)
            .ok_or(ModelError::UnknownComponent(id))
    }

    /// Returns `true` if the model contains the component.
    pub fn contains_component(&self, id: ComponentId) -> bool {
        self.components.contains_key(&id)
    }

    /// Iterates over components in id order.
    pub fn components(&self) -> impl Iterator<Item = &Component> {
        self.components.values()
    }

    /// Returns all component ids in order.
    pub fn component_ids(&self) -> Vec<ComponentId> {
        self.components.keys().copied().collect()
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    // ---- physical links --------------------------------------------------

    /// Creates or updates the physical link between `a` and `b`.
    ///
    /// The closure receives the (existing or fresh) link for configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownHost`] if either endpoint does not exist.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn set_physical_link<R>(
        &mut self,
        a: HostId,
        b: HostId,
        configure: impl FnOnce(&mut PhysicalLink) -> R,
    ) -> Result<(), ModelError> {
        if !self.contains_host(a) {
            return Err(ModelError::UnknownHost(a));
        }
        if !self.contains_host(b) {
            return Err(ModelError::UnknownHost(b));
        }
        let link = self
            .physical_links
            .entry(HostPair::new(a, b))
            .or_insert_with(|| PhysicalLink::new(a, b));
        configure(link);
        Ok(())
    }

    /// Removes the physical link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoPhysicalLink`] if no such link exists.
    pub fn remove_physical_link(
        &mut self,
        a: HostId,
        b: HostId,
    ) -> Result<PhysicalLink, ModelError> {
        self.physical_links
            .remove(&HostPair::new(a, b))
            .ok_or(ModelError::NoPhysicalLink(a, b))
    }

    /// Returns the physical link between `a` and `b`, if any.
    pub fn physical_link(&self, a: HostId, b: HostId) -> Option<&PhysicalLink> {
        self.physical_links.get(&HostPair::new(a, b))
    }

    /// Iterates over physical links in endpoint order.
    pub fn physical_links(&self) -> impl Iterator<Item = &PhysicalLink> {
        self.physical_links.values()
    }

    /// Number of physical links.
    pub fn physical_link_count(&self) -> usize {
        self.physical_links.len()
    }

    /// Hosts directly connected to `h`, in id order.
    pub fn neighbors(&self, h: HostId) -> Vec<HostId> {
        self.physical_links
            .keys()
            .filter_map(|pair| pair.other(h))
            .collect()
    }

    // ---- logical links ---------------------------------------------------

    /// Creates or updates the logical link between components `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownComponent`] if either endpoint does not
    /// exist.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn set_logical_link<R>(
        &mut self,
        a: ComponentId,
        b: ComponentId,
        configure: impl FnOnce(&mut LogicalLink) -> R,
    ) -> Result<(), ModelError> {
        if !self.contains_component(a) {
            return Err(ModelError::UnknownComponent(a));
        }
        if !self.contains_component(b) {
            return Err(ModelError::UnknownComponent(b));
        }
        let link = self
            .logical_links
            .entry(ComponentPair::new(a, b))
            .or_insert_with(|| LogicalLink::new(a, b));
        configure(link);
        Ok(())
    }

    /// Removes the logical link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoLogicalLink`] if no such link exists.
    pub fn remove_logical_link(
        &mut self,
        a: ComponentId,
        b: ComponentId,
    ) -> Result<LogicalLink, ModelError> {
        self.logical_links
            .remove(&ComponentPair::new(a, b))
            .ok_or(ModelError::NoLogicalLink(a, b))
    }

    /// Returns the logical link between `a` and `b`, if any.
    pub fn logical_link(&self, a: ComponentId, b: ComponentId) -> Option<&LogicalLink> {
        self.logical_links.get(&ComponentPair::new(a, b))
    }

    /// Iterates over logical links in endpoint order.
    pub fn logical_links(&self) -> impl Iterator<Item = &LogicalLink> {
        self.logical_links.values()
    }

    /// Number of logical links.
    pub fn logical_link_count(&self) -> usize {
        self.logical_links.len()
    }

    /// Components with a logical link to `c`, in id order.
    pub fn logical_neighbors(&self, c: ComponentId) -> Vec<ComponentId> {
        self.logical_links
            .keys()
            .filter_map(|pair| pair.other(c))
            .collect()
    }

    // ---- derived quantities -----------------------------------------------

    /// Reliability of communication between two hosts.
    ///
    /// `1.0` for a host with itself (local interaction), the link's
    /// reliability when a physical link exists, `0.0` otherwise.
    pub fn reliability(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return 1.0;
        }
        self.physical_link(a, b)
            .map_or(0.0, PhysicalLink::reliability)
    }

    /// Bandwidth between two hosts (`∞` locally, `0.0` when disconnected).
    pub fn bandwidth(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return f64::INFINITY;
        }
        self.physical_link(a, b)
            .map_or(0.0, PhysicalLink::bandwidth)
    }

    /// Transmission delay between two hosts (`0.0` locally, `∞` when
    /// disconnected).
    pub fn delay(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return 0.0;
        }
        self.physical_link(a, b)
            .map_or(f64::INFINITY, PhysicalLink::delay)
    }

    /// Security level between two hosts (`1.0` locally, `0.0` when
    /// disconnected).
    pub fn security(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return 1.0;
        }
        self.physical_link(a, b).map_or(0.0, PhysicalLink::security)
    }

    /// Interaction frequency between two components (`0.0` when no logical
    /// link exists).
    pub fn frequency(&self, a: ComponentId, b: ComponentId) -> f64 {
        self.logical_link(a, b).map_or(0.0, LogicalLink::frequency)
    }

    /// Average event size between two components (`1.0` default).
    pub fn event_size(&self, a: ComponentId, b: ComponentId) -> f64 {
        self.logical_link(a, b).map_or(1.0, LogicalLink::event_size)
    }

    /// Quality of the most reliable multi-hop path between two hosts, or
    /// `None` when no path exists.
    ///
    /// The built-in objectives deliberately use *direct-link* semantics (the
    /// paper's formulation, conservative about non-adjacent placements);
    /// this query exists for analyses of middleware that relays frames
    /// hop-by-hop, where end-to-end reliability is the per-hop product.
    ///
    /// # Example
    ///
    /// ```
    /// use redep_model::DeploymentModel;
    /// let mut m = DeploymentModel::new();
    /// let a = m.add_host("a")?;
    /// let b = m.add_host("b")?;
    /// let c = m.add_host("c")?;
    /// m.set_physical_link(a, b, |l| l.set_reliability(0.9))?;
    /// m.set_physical_link(b, c, |l| l.set_reliability(0.8))?;
    /// let path = m.best_path(a, c).expect("a reaches c through b");
    /// assert!((path.reliability - 0.72).abs() < 1e-12);
    /// assert_eq!(path.hops, 2);
    /// # Ok::<(), redep_model::ModelError>(())
    /// ```
    pub fn best_path(&self, a: HostId, b: HostId) -> Option<PathQuality> {
        if !self.contains_host(a) || !self.contains_host(b) {
            return None;
        }
        if a == b {
            return Some(PathQuality {
                reliability: 1.0,
                delay: 0.0,
                bandwidth: f64::INFINITY,
                hops: 0,
            });
        }
        // Dijkstra maximizing the product of reliabilities (equivalently,
        // minimizing Σ −ln r). Links with zero reliability never help.
        let mut best: BTreeMap<HostId, f64> = BTreeMap::new();
        let mut back: BTreeMap<HostId, HostId> = BTreeMap::new();
        best.insert(a, 1.0);
        let mut frontier = vec![a];
        while let Some(u) = {
            // Extract the frontier host with the highest reliability so far.
            frontier.sort_by(|x, y| {
                best[x]
                    .partial_cmp(&best[y])
                    .expect("reliabilities are finite")
            });
            frontier.pop()
        } {
            if u == b {
                break;
            }
            let through = best[&u];
            for v in self.neighbors(u) {
                let r = through * self.reliability(u, v);
                if r > 0.0 && r > best.get(&v).copied().unwrap_or(0.0) {
                    best.insert(v, r);
                    back.insert(v, u);
                    frontier.push(v);
                }
            }
        }
        let reliability = best.get(&b).copied()?;
        // Walk the path back to accumulate delay/bandwidth/hops.
        let (mut delay, mut bandwidth, mut hops) = (0.0, f64::INFINITY, 0);
        let mut v = b;
        while v != a {
            let u = back[&v];
            delay += self.delay(u, v);
            bandwidth = bandwidth.min(self.bandwidth(u, v));
            hops += 1;
            v = u;
        }
        Some(PathQuality {
            reliability,
            delay,
            bandwidth,
            hops,
        })
    }

    // ---- constraints ------------------------------------------------------

    /// Returns the architect-supplied constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Returns the constraint set for modification.
    pub fn constraints_mut(&mut self) -> &mut ConstraintSet {
        &mut self.constraints
    }

    // ---- partial-view import ------------------------------------------------
    // Used by `AwarenessGraph::partial_view` to clone parts of a global model
    // into a submodel while *preserving global ids* — decentralized hosts must
    // agree on what `c3` means.

    pub(crate) fn import_host(&mut self, host: Host) {
        self.next_host = self.next_host.max(host.id().raw() + 1);
        self.hosts.insert(host.id(), host);
    }

    pub(crate) fn import_component(&mut self, component: Component) {
        self.next_component = self.next_component.max(component.id().raw() + 1);
        self.components.insert(component.id(), component);
    }

    pub(crate) fn import_physical_link(&mut self, link: PhysicalLink) {
        self.physical_links.insert(link.ends(), link);
    }

    pub(crate) fn import_logical_link(&mut self, link: LogicalLink) {
        self.logical_links.insert(link.ends(), link);
    }

    /// Whether every component the constraint refers to exists in this model
    /// (hosts named by location constraints may be invisible; they simply
    /// drop out of `allowed_hosts`).
    pub(crate) fn constraint_is_local(&self, constraint: &crate::Constraint) -> bool {
        use crate::Constraint;
        match constraint {
            Constraint::PinnedTo { component, .. } | Constraint::NotOn { component, .. } => {
                self.contains_component(*component)
            }
            Constraint::Collocated { components } | Constraint::Separated { components } => {
                components.iter().all(|c| self.contains_component(*c))
            }
        }
    }

    // ---- integrity ---------------------------------------------------------

    /// Verifies referential integrity: every link endpoint and every
    /// constraint subject exists in the model.
    ///
    /// # Errors
    ///
    /// Returns the first dangling reference found.
    pub fn validate(&self) -> Result<(), ModelError> {
        for pair in self.physical_links.keys() {
            for h in [pair.lo(), pair.hi()] {
                if !self.contains_host(h) {
                    return Err(ModelError::UnknownHost(h));
                }
            }
        }
        for pair in self.logical_links.keys() {
            for c in [pair.lo(), pair.hi()] {
                if !self.contains_component(c) {
                    return Err(ModelError::UnknownComponent(c));
                }
            }
        }
        for c in self.constraints.referenced_components() {
            if !self.contains_component(c) {
                return Err(ModelError::UnknownComponent(c));
            }
        }
        for h in self.constraints.referenced_hosts() {
            if !self.contains_host(h) {
                return Err(ModelError::UnknownHost(h));
            }
        }
        Ok(())
    }

    /// Total interaction frequency over all logical links (the normalizer of
    /// the availability objective).
    pub fn total_frequency(&self) -> f64 {
        self.logical_links
            .values()
            .map(LogicalLink::frequency)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_host_model() -> (DeploymentModel, HostId, HostId) {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        let b = m.add_host("b").unwrap();
        (m, a, b)
    }

    #[test]
    fn add_host_allocates_fresh_ids() {
        let (m, a, b) = two_host_model();
        assert_ne!(a, b);
        assert_eq!(m.host_count(), 2);
        assert_eq!(m.host(a).unwrap().name(), "a");
    }

    #[test]
    fn ids_are_not_reused_after_removal() {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        m.remove_host(a).unwrap();
        let b = m.add_host("b").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn unknown_host_lookup_errors() {
        let m = DeploymentModel::new();
        assert_eq!(
            m.host(HostId::new(9)).unwrap_err(),
            ModelError::UnknownHost(HostId::new(9))
        );
    }

    #[test]
    fn physical_link_requires_existing_hosts() {
        let (mut m, a, _) = two_host_model();
        let ghost = HostId::new(99);
        assert_eq!(
            m.set_physical_link(a, ghost, |_| {}).unwrap_err(),
            ModelError::UnknownHost(ghost)
        );
    }

    #[test]
    fn physical_link_is_undirected() {
        let (mut m, a, b) = two_host_model();
        m.set_physical_link(a, b, |l| l.set_reliability(0.7))
            .unwrap();
        assert_eq!(m.reliability(a, b), 0.7);
        assert_eq!(m.reliability(b, a), 0.7);
        assert_eq!(m.physical_link_count(), 1);
    }

    #[test]
    fn set_physical_link_updates_in_place() {
        let (mut m, a, b) = two_host_model();
        m.set_physical_link(a, b, |l| l.set_reliability(0.7))
            .unwrap();
        m.set_physical_link(b, a, |l| l.set_bandwidth(10.0))
            .unwrap();
        // Both parameters survive: it is the same link.
        assert_eq!(m.reliability(a, b), 0.7);
        assert_eq!(m.bandwidth(a, b), 10.0);
        assert_eq!(m.physical_link_count(), 1);
    }

    #[test]
    fn disconnected_hosts_have_zero_reliability() {
        let (m, a, b) = two_host_model();
        assert_eq!(m.reliability(a, b), 0.0);
        assert_eq!(m.bandwidth(a, b), 0.0);
        assert_eq!(m.delay(a, b), f64::INFINITY);
        assert_eq!(m.security(a, b), 0.0);
    }

    #[test]
    fn local_interaction_is_perfect() {
        let (m, a, _) = two_host_model();
        assert_eq!(m.reliability(a, a), 1.0);
        assert_eq!(m.bandwidth(a, a), f64::INFINITY);
        assert_eq!(m.delay(a, a), 0.0);
        assert_eq!(m.security(a, a), 1.0);
    }

    #[test]
    fn remove_host_cascades_to_links() {
        let (mut m, a, b) = two_host_model();
        m.set_physical_link(a, b, |_| {}).unwrap();
        m.remove_host(a).unwrap();
        assert_eq!(m.physical_link_count(), 0);
        assert!(m.physical_link(a, b).is_none());
    }

    #[test]
    fn remove_component_cascades_to_logical_links() {
        let mut m = DeploymentModel::new();
        let x = m.add_component("x").unwrap();
        let y = m.add_component("y").unwrap();
        m.set_logical_link(x, y, |l| l.set_frequency(3.0)).unwrap();
        m.remove_component(x).unwrap();
        assert_eq!(m.logical_link_count(), 0);
        assert_eq!(m.frequency(x, y), 0.0);
    }

    #[test]
    fn neighbors_lists_directly_connected_hosts() {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        let b = m.add_host("b").unwrap();
        let c = m.add_host("c").unwrap();
        m.set_physical_link(a, b, |_| {}).unwrap();
        m.set_physical_link(a, c, |_| {}).unwrap();
        assert_eq!(m.neighbors(a), vec![b, c]);
        assert_eq!(m.neighbors(b), vec![a]);
    }

    #[test]
    fn logical_neighbors_lists_interacting_components() {
        let mut m = DeploymentModel::new();
        let x = m.add_component("x").unwrap();
        let y = m.add_component("y").unwrap();
        let z = m.add_component("z").unwrap();
        m.set_logical_link(x, y, |_| {}).unwrap();
        m.set_logical_link(y, z, |_| {}).unwrap();
        assert_eq!(m.logical_neighbors(y), vec![x, z]);
    }

    #[test]
    fn total_frequency_sums_logical_links() {
        let mut m = DeploymentModel::new();
        let x = m.add_component("x").unwrap();
        let y = m.add_component("y").unwrap();
        let z = m.add_component("z").unwrap();
        m.set_logical_link(x, y, |l| l.set_frequency(3.0)).unwrap();
        m.set_logical_link(y, z, |l| l.set_frequency(4.5)).unwrap();
        assert!((m.total_frequency() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_consistent_model() {
        let (mut m, a, b) = two_host_model();
        m.set_physical_link(a, b, |_| {}).unwrap();
        assert!(m.validate().is_ok());
    }

    #[test]
    fn best_path_prefers_reliability_over_hop_count() {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        let b = m.add_host("b").unwrap();
        let c = m.add_host("c").unwrap();
        // Direct but terrible vs. two good hops.
        m.set_physical_link(a, c, |l| l.set_reliability(0.2))
            .unwrap();
        m.set_physical_link(a, b, |l| l.set_reliability(0.9))
            .unwrap();
        m.set_physical_link(b, c, |l| l.set_reliability(0.9))
            .unwrap();
        let p = m.best_path(a, c).unwrap();
        assert!((p.reliability - 0.81).abs() < 1e-12);
        assert_eq!(p.hops, 2);
    }

    #[test]
    fn best_path_returns_none_when_disconnected() {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        let b = m.add_host("b").unwrap();
        assert!(m.best_path(a, b).is_none());
        assert!(m.best_path(a, HostId::new(99)).is_none());
        let same = m.best_path(a, a).unwrap();
        assert_eq!(same.reliability, 1.0);
        assert_eq!(same.hops, 0);
        let _ = b;
    }

    #[test]
    fn best_path_accumulates_delay_and_bottleneck_bandwidth() {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        let b = m.add_host("b").unwrap();
        let c = m.add_host("c").unwrap();
        m.set_physical_link(a, b, |l| {
            l.set_reliability(0.9);
            l.set_delay(1.0);
            l.set_bandwidth(100.0);
        })
        .unwrap();
        m.set_physical_link(b, c, |l| {
            l.set_reliability(0.9);
            l.set_delay(2.0);
            l.set_bandwidth(50.0);
        })
        .unwrap();
        let p = m.best_path(a, c).unwrap();
        assert!((p.delay - 3.0).abs() < 1e-12);
        assert_eq!(p.bandwidth, 50.0);
    }

    #[test]
    fn serde_roundtrip_preserves_everything() {
        let (mut m, a, b) = two_host_model();
        m.set_physical_link(a, b, |l| l.set_reliability(0.4))
            .unwrap();
        let x = m.add_component("x").unwrap();
        let y = m.add_component("y").unwrap();
        m.set_logical_link(x, y, |l| l.set_frequency(2.0)).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: DeploymentModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
