//! Strongly typed identifiers for hosts and components.
//!
//! Newtypes keep host and component identifiers statically distinct
//! (C-NEWTYPE): an API that needs a [`HostId`] cannot accidentally be handed a
//! [`ComponentId`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a hardware host in a [`DeploymentModel`].
///
/// Host ids are allocated by [`DeploymentModel::add_host`] and are unique
/// within one model.
///
/// [`DeploymentModel`]: crate::DeploymentModel
/// [`DeploymentModel::add_host`]: crate::DeploymentModel::add_host
///
/// # Example
///
/// ```
/// use redep_model::HostId;
/// let h = HostId::new(3);
/// assert_eq!(h.raw(), 3);
/// assert_eq!(h.to_string(), "h3");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct HostId(u32);

impl HostId {
    /// Creates a host id from its raw index.
    pub const fn new(raw: u32) -> Self {
        HostId(raw)
    }

    /// Returns the raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl From<u32> for HostId {
    fn from(raw: u32) -> Self {
        HostId(raw)
    }
}

/// Identifier of a software component in a [`DeploymentModel`].
///
/// Component ids are allocated by [`DeploymentModel::add_component`] and are
/// unique within one model.
///
/// [`DeploymentModel`]: crate::DeploymentModel
/// [`DeploymentModel::add_component`]: crate::DeploymentModel::add_component
///
/// # Example
///
/// ```
/// use redep_model::ComponentId;
/// let c = ComponentId::new(7);
/// assert_eq!(c.raw(), 7);
/// assert_eq!(c.to_string(), "c7");
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ComponentId(u32);

impl ComponentId {
    /// Creates a component id from its raw index.
    pub const fn new(raw: u32) -> Self {
        ComponentId(raw)
    }

    /// Returns the raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for ComponentId {
    fn from(raw: u32) -> Self {
        ComponentId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_id_roundtrip() {
        let h = HostId::new(42);
        assert_eq!(h.raw(), 42);
        assert_eq!(HostId::from(42), h);
    }

    #[test]
    fn component_id_roundtrip() {
        let c = ComponentId::new(9);
        assert_eq!(c.raw(), 9);
        assert_eq!(ComponentId::from(9), c);
    }

    #[test]
    fn display_forms() {
        assert_eq!(HostId::new(0).to_string(), "h0");
        assert_eq!(ComponentId::new(15).to_string(), "c15");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(HostId::new(1) < HostId::new(2));
        assert!(ComponentId::new(3) > ComponentId::new(2));
    }

    #[test]
    fn ids_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HostId>();
        assert_send_sync::<ComponentId>();
    }
}
