//! Model modification with an undo log — the backend of DeSi's `Modifier`
//! controller component.
//!
//! DeSi's Modifier "allows fine-grain tuning of the generated deployment
//! architecture (e.g., by altering a single network link's reliability, a
//! single component's required memory, and so on)". [`Modifier`] provides
//! exactly that, and additionally records every edit so exploratory changes
//! can be rolled back — which is what makes DeSi-style sensitivity analysis
//! ("assess a system's sensitivity to changes in specific parameters")
//! practical.

use crate::ids::{ComponentId, HostId};
use crate::model::DeploymentModel;
use crate::params::{ParamKey, ParamValue};
use crate::ModelError;
use std::fmt;

/// One recorded, reversible model edit.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ModelEdit {
    /// A host parameter changed (`previous` is `None` for a fresh key).
    HostParam {
        /// The edited host.
        host: HostId,
        /// The edited key.
        key: ParamKey,
        /// Value before the edit.
        previous: Option<ParamValue>,
    },
    /// A component parameter changed.
    ComponentParam {
        /// The edited component.
        component: ComponentId,
        /// The edited key.
        key: ParamKey,
        /// Value before the edit.
        previous: Option<ParamValue>,
    },
    /// A physical-link parameter changed.
    PhysicalParam {
        /// Link endpoints.
        hosts: (HostId, HostId),
        /// The edited key.
        key: ParamKey,
        /// Value before the edit (`None` also covers "link did not exist";
        /// see `created`).
        previous: Option<ParamValue>,
        /// Whether the edit created the link itself.
        created: bool,
    },
    /// A logical-link parameter changed.
    LogicalParam {
        /// Link endpoints.
        components: (ComponentId, ComponentId),
        /// The edited key.
        key: ParamKey,
        /// Value before the edit.
        previous: Option<ParamValue>,
        /// Whether the edit created the link itself.
        created: bool,
    },
}

impl fmt::Display for ModelEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelEdit::HostParam { host, key, .. } => write!(f, "set {key} on {host}"),
            ModelEdit::ComponentParam { component, key, .. } => {
                write!(f, "set {key} on {component}")
            }
            ModelEdit::PhysicalParam { hosts, key, .. } => {
                write!(f, "set {key} on link {}–{}", hosts.0, hosts.1)
            }
            ModelEdit::LogicalParam {
                components, key, ..
            } => {
                write!(f, "set {key} on link {}–{}", components.0, components.1)
            }
        }
    }
}

/// Fine-grained, undoable model editing.
///
/// The modifier borrows no model state; it is handed the model on every call
/// so a single modifier can serve interleaved edits from multiple sources
/// (user input, monitors) while keeping one linear undo history.
///
/// # Example
///
/// ```
/// use redep_model::{DeploymentModel, Modifier, keys};
///
/// let mut model = DeploymentModel::new();
/// let h = model.add_host("hq")?;
/// model.host_mut(h)?.set_memory(100.0);
///
/// let mut modifier = Modifier::new();
/// modifier.set_host_param(&mut model, h, keys::HOST_MEMORY, 50.0)?;
/// assert_eq!(model.host(h)?.memory(), 50.0);
///
/// modifier.undo(&mut model)?;
/// assert_eq!(model.host(h)?.memory(), 100.0);
/// # Ok::<(), redep_model::ModelError>(())
/// ```
#[derive(Debug, Default)]
pub struct Modifier {
    log: Vec<ModelEdit>,
}

impl Modifier {
    /// Creates a modifier with an empty undo log.
    pub fn new() -> Self {
        Modifier::default()
    }

    /// Number of undoable edits.
    pub fn history_len(&self) -> usize {
        self.log.len()
    }

    /// Iterates over recorded edits, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &ModelEdit> {
        self.log.iter()
    }

    /// Discards the undo history (edits stay applied).
    pub fn clear_history(&mut self) {
        self.log.clear();
    }

    /// Sets a host parameter.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownHost`] if the host does not exist.
    pub fn set_host_param(
        &mut self,
        model: &mut DeploymentModel,
        host: HostId,
        key: impl Into<ParamKey>,
        value: impl Into<ParamValue>,
    ) -> Result<(), ModelError> {
        let key = key.into();
        let previous = model.host_mut(host)?.params_mut().set(key.clone(), value);
        self.log.push(ModelEdit::HostParam {
            host,
            key,
            previous,
        });
        Ok(())
    }

    /// Sets a component parameter.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownComponent`] if the component does not
    /// exist.
    pub fn set_component_param(
        &mut self,
        model: &mut DeploymentModel,
        component: ComponentId,
        key: impl Into<ParamKey>,
        value: impl Into<ParamValue>,
    ) -> Result<(), ModelError> {
        let key = key.into();
        let previous = model
            .component_mut(component)?
            .params_mut()
            .set(key.clone(), value);
        self.log.push(ModelEdit::ComponentParam {
            component,
            key,
            previous,
        });
        Ok(())
    }

    /// Sets a physical-link parameter, creating the link if needed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownHost`] if either endpoint does not exist.
    pub fn set_physical_param(
        &mut self,
        model: &mut DeploymentModel,
        a: HostId,
        b: HostId,
        key: impl Into<ParamKey>,
        value: impl Into<ParamValue>,
    ) -> Result<(), ModelError> {
        let key = key.into();
        let created = model.physical_link(a, b).is_none();
        let mut previous = None;
        let (key2, value) = (key.clone(), value.into());
        model.set_physical_link(a, b, |l| {
            previous = l.params_mut().set(key2, value);
        })?;
        self.log.push(ModelEdit::PhysicalParam {
            hosts: (a, b),
            key,
            previous,
            created,
        });
        Ok(())
    }

    /// Sets a logical-link parameter, creating the link if needed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownComponent`] if either endpoint does not
    /// exist.
    pub fn set_logical_param(
        &mut self,
        model: &mut DeploymentModel,
        a: ComponentId,
        b: ComponentId,
        key: impl Into<ParamKey>,
        value: impl Into<ParamValue>,
    ) -> Result<(), ModelError> {
        let key = key.into();
        let created = model.logical_link(a, b).is_none();
        let mut previous = None;
        let (key2, value) = (key.clone(), value.into());
        model.set_logical_link(a, b, |l| {
            previous = l.params_mut().set(key2, value);
        })?;
        self.log.push(ModelEdit::LogicalParam {
            components: (a, b),
            key,
            previous,
            created,
        });
        Ok(())
    }

    /// Reverts the most recent edit.
    ///
    /// # Errors
    ///
    /// Propagates lookup errors if the edited entity has since been removed
    /// from the model. Returns `Ok(false)` when the history is empty.
    pub fn undo(&mut self, model: &mut DeploymentModel) -> Result<bool, ModelError> {
        let Some(edit) = self.log.pop() else {
            return Ok(false);
        };
        match edit {
            ModelEdit::HostParam {
                host,
                key,
                previous,
            } => {
                let params = model.host_mut(host)?.params_mut();
                match previous {
                    Some(v) => params.set(key, v),
                    None => params.remove(key),
                };
            }
            ModelEdit::ComponentParam {
                component,
                key,
                previous,
            } => {
                let params = model.component_mut(component)?.params_mut();
                match previous {
                    Some(v) => params.set(key, v),
                    None => params.remove(key),
                };
            }
            ModelEdit::PhysicalParam {
                hosts: (a, b),
                key,
                previous,
                created,
            } => {
                if created {
                    model.remove_physical_link(a, b)?;
                } else {
                    model.set_physical_link(a, b, |l| {
                        match previous {
                            Some(v) => l.params_mut().set(key, v),
                            None => l.params_mut().remove(key),
                        };
                    })?;
                }
            }
            ModelEdit::LogicalParam {
                components: (a, b),
                key,
                previous,
                created,
            } => {
                if created {
                    model.remove_logical_link(a, b)?;
                } else {
                    model.set_logical_link(a, b, |l| {
                        match previous {
                            Some(v) => l.params_mut().set(key, v),
                            None => l.params_mut().remove(key),
                        };
                    })?;
                }
            }
        }
        Ok(true)
    }

    /// Reverts all recorded edits, newest first.
    ///
    /// # Errors
    ///
    /// Propagates the first undo failure; earlier (newer) edits stay undone.
    pub fn undo_all(&mut self, model: &mut DeploymentModel) -> Result<usize, ModelError> {
        let mut n = 0;
        while self.undo(model)? {
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::keys;

    fn fixture() -> (DeploymentModel, HostId, HostId, ComponentId, ComponentId) {
        let mut m = DeploymentModel::new();
        let a = m.add_host("a").unwrap();
        let b = m.add_host("b").unwrap();
        let x = m.add_component("x").unwrap();
        let y = m.add_component("y").unwrap();
        (m, a, b, x, y)
    }

    #[test]
    fn set_and_undo_host_param() {
        let (mut m, a, _, _, _) = fixture();
        let mut md = Modifier::new();
        md.set_host_param(&mut m, a, keys::HOST_MEMORY, 64.0)
            .unwrap();
        assert_eq!(m.host(a).unwrap().memory(), 64.0);
        assert!(md.undo(&mut m).unwrap());
        assert_eq!(m.host(a).unwrap().memory(), f64::INFINITY);
    }

    #[test]
    fn undo_restores_previous_value_not_default() {
        let (mut m, a, _, _, _) = fixture();
        m.host_mut(a).unwrap().set_memory(100.0);
        let mut md = Modifier::new();
        md.set_host_param(&mut m, a, keys::HOST_MEMORY, 64.0)
            .unwrap();
        md.undo(&mut m).unwrap();
        assert_eq!(m.host(a).unwrap().memory(), 100.0);
    }

    #[test]
    fn undo_on_empty_history_is_a_noop() {
        let (mut m, _, _, _, _) = fixture();
        let mut md = Modifier::new();
        assert!(!md.undo(&mut m).unwrap());
    }

    #[test]
    fn physical_param_edit_can_create_and_undo_link() {
        let (mut m, a, b, _, _) = fixture();
        let mut md = Modifier::new();
        md.set_physical_param(&mut m, a, b, keys::LINK_RELIABILITY, 0.6)
            .unwrap();
        assert_eq!(m.reliability(a, b), 0.6);
        md.undo(&mut m).unwrap();
        assert!(m.physical_link(a, b).is_none());
    }

    #[test]
    fn physical_param_edit_on_existing_link_preserves_link_on_undo() {
        let (mut m, a, b, _, _) = fixture();
        m.set_physical_link(a, b, |l| l.set_reliability(0.9))
            .unwrap();
        let mut md = Modifier::new();
        md.set_physical_param(&mut m, a, b, keys::LINK_RELIABILITY, 0.1)
            .unwrap();
        assert_eq!(m.reliability(a, b), 0.1);
        md.undo(&mut m).unwrap();
        assert_eq!(m.reliability(a, b), 0.9);
    }

    #[test]
    fn logical_param_edit_roundtrip() {
        let (mut m, _, _, x, y) = fixture();
        let mut md = Modifier::new();
        md.set_logical_param(&mut m, x, y, keys::INTERACTION_FREQUENCY, 5.0)
            .unwrap();
        assert_eq!(m.frequency(x, y), 5.0);
        md.undo(&mut m).unwrap();
        assert!(m.logical_link(x, y).is_none());
    }

    #[test]
    fn component_param_edit_roundtrip() {
        let (mut m, _, _, x, _) = fixture();
        let mut md = Modifier::new();
        md.set_component_param(&mut m, x, keys::COMPONENT_MEMORY, 7.0)
            .unwrap();
        assert_eq!(m.component(x).unwrap().required_memory(), 7.0);
        md.undo(&mut m).unwrap();
        assert_eq!(m.component(x).unwrap().required_memory(), 0.0);
    }

    #[test]
    fn undo_all_reverts_in_reverse_order() {
        let (mut m, a, _, _, _) = fixture();
        let mut md = Modifier::new();
        md.set_host_param(&mut m, a, "k", 1.0).unwrap();
        md.set_host_param(&mut m, a, "k", 2.0).unwrap();
        md.set_host_param(&mut m, a, "k", 3.0).unwrap();
        assert_eq!(md.undo_all(&mut m).unwrap(), 3);
        assert!(m.host(a).unwrap().params().get("k").is_none());
        assert_eq!(md.history_len(), 0);
    }

    #[test]
    fn unknown_entities_error_without_logging() {
        let (mut m, _, _, _, _) = fixture();
        let mut md = Modifier::new();
        let ghost = HostId::new(99);
        assert!(md.set_host_param(&mut m, ghost, "k", 1.0).is_err());
        assert_eq!(md.history_len(), 0);
    }

    #[test]
    fn history_is_inspectable() {
        let (mut m, a, _, _, _) = fixture();
        let mut md = Modifier::new();
        md.set_host_param(&mut m, a, "k", 1.0).unwrap();
        let entries: Vec<String> = md.history().map(ToString::to_string).collect();
        assert_eq!(entries, ["set k on h0"]);
    }
}
