//! Extensible parameter tables.
//!
//! The paper's first extensibility dimension is "inclusion of arbitrary system
//! parameters (hardware host properties, network link properties, software
//! component properties, software interaction properties)". Every model part
//! therefore carries a [`ParamTable`]: an ordered map from [`ParamKey`] to
//! [`ParamValue`]. Well-known keys used by the built-in objectives and
//! constraints live in [`keys`]; user-defined solutions are free to add their
//! own.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// Well-known parameter keys understood by the built-in objectives,
/// constraints, monitors and generators.
///
/// These are plain strings so that external tools (ADL documents, monitors,
/// visualizations) can refer to them without linking against this crate.
pub mod keys {
    /// Available memory on a host (abstract units).
    pub const HOST_MEMORY: &str = "host.memory";
    /// Processing speed of a host (abstract units; user-input, stable).
    pub const HOST_CPU: &str = "host.cpu";
    /// Remaining battery power of a (mobile) host.
    pub const HOST_BATTERY: &str = "host.battery";
    /// Memory required by a component (abstract units).
    pub const COMPONENT_MEMORY: &str = "component.memory";
    /// CPU demand of a component (abstract units).
    pub const COMPONENT_CPU: &str = "component.cpu";
    /// Reliability of a physical link in `[0, 1]`.
    pub const LINK_RELIABILITY: &str = "link.reliability";
    /// Bandwidth of a physical link (bytes per time unit).
    pub const LINK_BANDWIDTH: &str = "link.bandwidth";
    /// Transmission delay of a physical link (time units).
    pub const LINK_DELAY: &str = "link.delay";
    /// Security level of a physical link in `[0, 1]` (user-input).
    pub const LINK_SECURITY: &str = "link.security";
    /// Frequency of interaction over a logical link (events per time unit).
    pub const INTERACTION_FREQUENCY: &str = "interaction.frequency";
    /// Average event size over a logical link (bytes).
    pub const EVENT_SIZE: &str = "interaction.event_size";
}

/// A parameter name.
///
/// Keys are cheap to construct from string literals and from owned strings:
///
/// ```
/// use redep_model::ParamKey;
/// let a = ParamKey::from("host.memory");
/// let b = ParamKey::from(String::from("host.memory"));
/// assert_eq!(a, b);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ParamKey(Cow<'static, str>);

impl ParamKey {
    /// Creates a key from a static string (zero allocation).
    pub const fn from_static(name: &'static str) -> Self {
        ParamKey(Cow::Borrowed(name))
    }

    /// Returns the key name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ParamKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&'static str> for ParamKey {
    fn from(name: &'static str) -> Self {
        ParamKey(Cow::Borrowed(name))
    }
}

impl From<String> for ParamKey {
    fn from(name: String) -> Self {
        ParamKey(Cow::Owned(name))
    }
}

impl AsRef<str> for ParamKey {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A parameter value: a float, integer, boolean or text.
///
/// Monitors typically write [`ParamValue::Float`] values; architects may also
/// provide booleans (e.g. "link is wired") and text (e.g. installed software).
///
/// # Example
///
/// ```
/// use redep_model::ParamValue;
/// let v = ParamValue::from(0.75);
/// assert_eq!(v.as_f64(), Some(0.75));
/// assert_eq!(ParamValue::from(3i64).as_f64(), Some(3.0));
/// assert_eq!(ParamValue::from(true).as_bool(), Some(true));
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ParamValue {
    /// A boolean flag.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A floating-point quantity (the common case for monitored data).
    Float(f64),
    /// Free-form text.
    Text(String),
}

impl ParamValue {
    /// Returns the value as a float, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the value as an integer (floats are not coerced).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ParamValue::Text(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Text(v) => f.write_str(v),
        }
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Text(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Text(v.to_owned())
    }
}

/// An ordered, extensible table of named parameters.
///
/// The table iterates in key order, so everything derived from it (view
/// renderings, serializations, hashes of model state) is deterministic.
///
/// # Example
///
/// ```
/// use redep_model::{ParamTable, keys};
/// let mut t = ParamTable::new();
/// t.set(keys::HOST_MEMORY, 512.0);
/// assert_eq!(t.get_f64(keys::HOST_MEMORY), Some(512.0));
/// assert_eq!(t.get_f64_or("no.such.key", 1.0), 1.0);
/// ```
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ParamTable {
    entries: BTreeMap<ParamKey, ParamValue>,
}

impl ParamTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ParamTable::default()
    }

    /// Sets a parameter, returning the previous value if any.
    pub fn set(
        &mut self,
        key: impl Into<ParamKey>,
        value: impl Into<ParamValue>,
    ) -> Option<ParamValue> {
        self.entries.insert(key.into(), value.into())
    }

    /// Returns a parameter value.
    pub fn get(&self, key: impl Into<ParamKey>) -> Option<&ParamValue> {
        self.entries.get(&key.into())
    }

    /// Returns a parameter as a float (integers are coerced).
    pub fn get_f64(&self, key: impl Into<ParamKey>) -> Option<f64> {
        self.get(key).and_then(ParamValue::as_f64)
    }

    /// Returns a parameter as a float, or `default` when absent.
    pub fn get_f64_or(&self, key: impl Into<ParamKey>, default: f64) -> f64 {
        self.get_f64(key).unwrap_or(default)
    }

    /// Removes a parameter, returning its value if present.
    pub fn remove(&mut self, key: impl Into<ParamKey>) -> Option<ParamValue> {
        self.entries.remove(&key.into())
    }

    /// Returns `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&ParamKey, &ParamValue)> {
        self.entries.iter()
    }

    /// Copies every entry of `other` into this table, overwriting duplicates.
    pub fn merge_from(&mut self, other: &ParamTable) {
        for (k, v) in other.iter() {
            self.entries.insert(k.clone(), v.clone());
        }
    }
}

impl<K: Into<ParamKey>, V: Into<ParamValue>> FromIterator<(K, V)> for ParamTable {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut t = ParamTable::new();
        for (k, v) in iter {
            t.set(k, v);
        }
        t
    }
}

impl<K: Into<ParamKey>, V: Into<ParamValue>> Extend<(K, V)> for ParamTable {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.set(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut t = ParamTable::new();
        assert!(t.is_empty());
        t.set(keys::LINK_RELIABILITY, 0.9);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_f64(keys::LINK_RELIABILITY), Some(0.9));
    }

    #[test]
    fn set_returns_previous_value() {
        let mut t = ParamTable::new();
        assert_eq!(t.set("x", 1.0), None);
        assert_eq!(t.set("x", 2.0), Some(ParamValue::Float(1.0)));
    }

    #[test]
    fn int_coerces_to_float() {
        let mut t = ParamTable::new();
        t.set("n", 5i64);
        assert_eq!(t.get_f64("n"), Some(5.0));
        assert_eq!(t.get("n").and_then(ParamValue::as_i64), Some(5));
    }

    #[test]
    fn bool_and_text_do_not_coerce_to_float() {
        let mut t = ParamTable::new();
        t.set("flag", true);
        t.set("label", "gps");
        assert_eq!(t.get_f64("flag"), None);
        assert_eq!(t.get_f64("label"), None);
        assert_eq!(t.get("flag").and_then(ParamValue::as_bool), Some(true));
        assert_eq!(t.get("label").and_then(ParamValue::as_text), Some("gps"));
    }

    #[test]
    fn default_applies_only_when_absent() {
        let mut t = ParamTable::new();
        assert_eq!(t.get_f64_or("k", 7.0), 7.0);
        t.set("k", 3.0);
        assert_eq!(t.get_f64_or("k", 7.0), 3.0);
    }

    #[test]
    fn remove_clears_entry() {
        let mut t = ParamTable::new();
        t.set("k", 1.0);
        assert_eq!(t.remove("k"), Some(ParamValue::Float(1.0)));
        assert_eq!(t.remove("k"), None);
        assert!(t.is_empty());
    }

    #[test]
    fn iteration_is_key_ordered() {
        let mut t = ParamTable::new();
        t.set("b", 2.0);
        t.set("a", 1.0);
        t.set("c", 3.0);
        let order: Vec<&str> = t.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn merge_overwrites_duplicates() {
        let mut a = ParamTable::new();
        a.set("x", 1.0);
        a.set("y", 1.0);
        let mut b = ParamTable::new();
        b.set("y", 2.0);
        b.set("z", 3.0);
        a.merge_from(&b);
        assert_eq!(a.get_f64("x"), Some(1.0));
        assert_eq!(a.get_f64("y"), Some(2.0));
        assert_eq!(a.get_f64("z"), Some(3.0));
    }

    #[test]
    fn from_iterator_collects() {
        let t: ParamTable = [("a", 1.0), ("b", 2.0)].into_iter().collect();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = ParamTable::new();
        t.set("f", 1.5);
        t.set("i", 2i64);
        t.set("b", true);
        t.set("s", "hello");
        let json = serde_json::to_string(&t).unwrap();
        let back: ParamTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
