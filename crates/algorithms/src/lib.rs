//! # redep-algorithms
//!
//! The **Algorithm** component of the deployment-improvement framework:
//! pluggable redeployment algorithms that search for a deployment
//! architecture satisfying an objective.
//!
//! The crate follows the paper's algorithm-development methodology exactly:
//! an algorithm is an *algorithm body* (greedy, stochastic, exhaustive,
//! genetic, …) composed with the three variation points —
//!
//! 1. the **objective function** ([`redep_model::Objective`]),
//! 2. the **constraint checker** ([`redep_model::ConstraintChecker`]),
//! 3. the **coordination protocol** for decentralized algorithms
//!    ([`CoordinationProtocol`]).
//!
//! ## Bodies
//!
//! | Algorithm | Paper | Complexity | Kind |
//! |---|---|---|---|
//! | [`ExactAlgorithm`] | §5.1 "Exact" | O(kⁿ) | exact, centralized |
//! | [`StochasticAlgorithm`] | §5.1 "Stochastic" | O(n²) per iteration | approximative, centralized |
//! | [`AvalaAlgorithm`] | §5.1 "Avala" | O(n³) | approximative (greedy), centralized |
//! | [`DecApAlgorithm`] | §5.2 "DecAp" | O(k·n³) | approximative (auction), decentralized |
//! | [`GeneticAlgorithm`] | mentioned §4.3 (Fig 7) | O(g·p·n) | approximative, centralized (extension) |
//! | [`AnnealingAlgorithm`] | — | O(i·n) | approximative, centralized (extension/ablation) |
//!
//! # Example
//!
//! ```
//! use redep_algorithms::{AvalaAlgorithm, RedeploymentAlgorithm};
//! use redep_model::{Availability, Generator, GeneratorConfig, Objective};
//!
//! let system = Generator::generate(&GeneratorConfig::sized(4, 12))?;
//! let result = AvalaAlgorithm::new().run(
//!     &system.model,
//!     &Availability,
//!     system.model.constraints(),
//!     Some(&system.initial),
//! )?;
//! let before = Availability.evaluate(&system.model, &system.initial);
//! assert!(result.value >= before - 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod annealing;
pub mod avala;
mod compiled;
pub mod coordination;
pub mod decap;
pub mod exact;
pub mod genetic;
pub mod hierarchy;
mod parallel;
pub mod stochastic;
pub mod traits;

pub use annealing::AnnealingAlgorithm;
pub use avala::AvalaAlgorithm;
pub use coordination::{AuctionProtocol, CoordinationProtocol, PollingProtocol, VotingProtocol};
pub use decap::{DecApAlgorithm, MonitoringExchange};
pub use exact::ExactAlgorithm;
pub use genetic::GeneticAlgorithm;
pub use hierarchy::HierarchicalConfig;
pub use stochastic::StochasticAlgorithm;
pub use traits::{AlgoError, AlgoResult, RedeploymentAlgorithm};
