//! The Exact algorithm: exhaustive search over all deployments.
//!
//! "The Exact algorithm tries every possible deployment, and selects the one
//! that results in maximum availability and satisfies the constraints […]
//! The complexity of this algorithm in the general case is O(kⁿ)" (§5.1).

use crate::compiled::{try_compile, Compiled};
use crate::traits::{
    keep_best, keep_best_compiled, preflight, AlgoError, AlgoResult, RedeploymentAlgorithm,
};
use redep_model::{
    ComponentId, ConstraintChecker, Deployment, DeploymentModel, Direction, HostId,
    IncrementalScore, Objective, UNASSIGNED,
};
use std::time::Instant;

/// Exhaustive deployment search with constraint-based pruning.
///
/// The evaluation budget guards against accidentally launching a kⁿ search
/// on an instance that would run for days — the analyzer is supposed to pick
/// a different algorithm there (and experiment E8 shows it doing so).
///
/// On the compiled path the search enumerates dense assignments and scores
/// each leaf with the delta of its last assignment (O(deg(c)) instead of
/// O(L)); only leaves within `1e-9` of the incumbent are re-scored from
/// scratch, so recorded best values are exactly the naive ones.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExactAlgorithm {
    budget: u64,
}

impl Default for ExactAlgorithm {
    fn default() -> Self {
        ExactAlgorithm::new()
    }
}

impl ExactAlgorithm {
    /// Default budget: enough for the paper's "5 hosts, 15 components" limit
    /// is *not* granted by default; the default allows ~10⁷ evaluations
    /// (≈ 4 hosts × 12 components).
    pub const DEFAULT_BUDGET: u64 = 20_000_000;

    /// Margin within which a delta-scored leaf is re-scored from scratch
    /// before it may displace the incumbent. Delta drift is a few ULPs, many
    /// orders of magnitude below this.
    const NEAR_EPS: f64 = 1e-9;

    /// Creates the algorithm with the default evaluation budget.
    pub fn new() -> Self {
        ExactAlgorithm {
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Creates the algorithm with a custom evaluation budget.
    pub fn with_budget(budget: u64) -> Self {
        ExactAlgorithm { budget }
    }

    /// The number of complete deployments a model requires scoring (kⁿ,
    /// before pruning), used for the budget check and by the analyzer.
    pub fn search_space(model: &DeploymentModel) -> u128 {
        let k = model.host_count() as u128;
        let n = model.component_count() as u32;
        k.checked_pow(n).unwrap_or(u128::MAX)
    }

    #[allow(clippy::too_many_arguments)] // recursive search state, not an API
    fn dfs(
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        hosts: &[HostId],
        components: &[ComponentId],
        index: usize,
        partial: &mut Deployment,
        best: &mut Option<(Deployment, f64)>,
        evaluations: &mut u64,
        convergence: &mut Vec<(u64, f64)>,
    ) {
        if index == components.len() {
            // Complete: full validation (pruning used only incremental
            // checks, which may be weaker for group constraints).
            if constraints.check(model, partial).is_ok() {
                *evaluations += 1;
                let value = objective.evaluate(model, partial);
                let improved = match best {
                    Some((_, bv)) => objective.is_improvement(*bv, value),
                    None => true,
                };
                if improved {
                    *best = Some((partial.clone(), value));
                    convergence.push((*evaluations, value));
                }
            }
            return;
        }
        let c = components[index];
        for &h in hosts {
            if !constraints.admits(model, partial, c, h) {
                continue;
            }
            partial.assign(c, h);
            Self::dfs(
                model,
                objective,
                constraints,
                hosts,
                components,
                index + 1,
                partial,
                best,
                evaluations,
                convergence,
            );
            partial.unassign(c);
        }
    }

    #[allow(clippy::too_many_arguments)] // recursive search state, not an API
    fn dfs_compiled(
        c: &Compiled,
        index: usize,
        assign: &mut Vec<u32>,
        inc: &mut IncrementalScore<'_>,
        best: &mut Option<(Vec<u32>, f64)>,
        evaluations: &mut u64,
        convergence: &mut Vec<(u64, f64)>,
    ) {
        if index == assign.len() {
            if c.constraints.check(assign) {
                *evaluations += 1;
                let value = inc.value();
                // Pre-filter with a margin, then decide on a pure
                // (from-scratch) score so recorded bests match the naive
                // search bit-for-bit.
                let near = match best {
                    Some((_, bv)) => match c.objective.direction() {
                        Direction::Maximize => value > *bv - Self::NEAR_EPS,
                        Direction::Minimize => value < *bv + Self::NEAR_EPS,
                    },
                    None => true,
                };
                if near {
                    let pure = inc.score_full();
                    let improved = match best {
                        Some((_, bv)) => c.objective.is_improvement(*bv, pure),
                        None => true,
                    };
                    if improved {
                        *best = Some((assign.clone(), pure));
                        convergence.push((*evaluations, pure));
                    }
                }
            }
            return;
        }
        let comp = index as u32;
        for h in 0..c.constraints.n_hosts() as u32 {
            if !c.constraints.admits(assign, comp, h) {
                continue;
            }
            assign[index] = h;
            inc.set(comp, h);
            Self::dfs_compiled(c, index + 1, assign, inc, best, evaluations, convergence);
            assign[index] = UNASSIGNED;
            inc.set(comp, UNASSIGNED);
        }
    }
}

impl RedeploymentAlgorithm for ExactAlgorithm {
    fn name(&self) -> &str {
        "exact"
    }

    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError> {
        let started = Instant::now();
        let (hosts, components) = preflight(model)?;
        let needed = Self::search_space(model);
        if needed > self.budget as u128 {
            return Err(AlgoError::BudgetExceeded {
                needed,
                budget: self.budget,
            });
        }
        let mut evaluations = 0;
        let mut convergence = Vec::new();

        if let Some(c) = try_compile(model, objective, constraints) {
            let mut inc = IncrementalScore::new(&c.model, &c.objective);
            let mut assign = vec![UNASSIGNED; c.model.n_comps()];
            let mut best: Option<(Vec<u32>, f64)> = None;
            Self::dfs_compiled(
                &c,
                0,
                &mut assign,
                &mut inc,
                &mut best,
                &mut evaluations,
                &mut convergence,
            );
            let candidate = best.map(|(a, v)| (c.model.decode_assignment(&a), v));
            let (deployment, value) = keep_best_compiled(&c, objective, initial, candidate)
                .ok_or(AlgoError::NoFeasibleDeployment)?;
            return Ok(AlgoResult {
                algorithm: self.name().to_owned(),
                deployment,
                value,
                evaluations,
                wall_time: started.elapsed(),
                convergence,
                full_evaluations: inc.full_evaluations(),
                delta_evaluations: inc.delta_evaluations(),
                pruned_evaluations: 0,
                hierarchy_clusters: 0,
                refine_rounds: 0,
            });
        }

        let mut best = None;
        let mut partial = Deployment::new();
        Self::dfs(
            model,
            objective,
            constraints,
            &hosts,
            &components,
            0,
            &mut partial,
            &mut best,
            &mut evaluations,
            &mut convergence,
        );
        let (deployment, value) = keep_best(model, objective, constraints, initial, best)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: evaluations,
            delta_evaluations: 0,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Constraint, Latency};
    use std::collections::BTreeSet;

    /// Two hosts (0.5-reliable link), two chatty components: the optimum is
    /// to collocate them (availability 1.0).
    fn chatty_pair() -> DeploymentModel {
        let mut m = DeploymentModel::new();
        let h0 = m.add_host("h0").unwrap();
        let h1 = m.add_host("h1").unwrap();
        m.set_physical_link(h0, h1, |l| l.set_reliability(0.5))
            .unwrap();
        let a = m.add_component("a").unwrap();
        let b = m.add_component("b").unwrap();
        m.set_logical_link(a, b, |l| l.set_frequency(10.0)).unwrap();
        m
    }

    #[test]
    fn finds_the_collocated_optimum() {
        let m = chatty_pair();
        let r = ExactAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert_eq!(r.value, 1.0);
        let (a, b) = (m.component_ids()[0], m.component_ids()[1]);
        assert!(r.deployment.collocated(a, b));
    }

    #[test]
    fn respects_separation_constraints() {
        let mut m = chatty_pair();
        let comps: BTreeSet<_> = m.component_ids().into_iter().collect();
        m.constraints_mut()
            .add(Constraint::Separated { components: comps });
        let r = ExactAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        // Forced remote: the best achievable is the link reliability.
        assert!((r.value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memory_pressure_forces_spreading() {
        let mut m = chatty_pair();
        for h in m.host_ids() {
            m.host_mut(h).unwrap().set_memory(10.0);
        }
        for c in m.component_ids() {
            m.component_mut(c).unwrap().set_required_memory(8.0);
        }
        let r = ExactAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert!((r.value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn infeasible_constraints_error() {
        let mut m = chatty_pair();
        // Pin both components to host 0 but separate them: impossible.
        let comps = m.component_ids();
        let h0 = m.host_ids()[0];
        for c in &comps {
            m.constraints_mut().add(Constraint::PinnedTo {
                component: *c,
                hosts: BTreeSet::from([h0]),
            });
        }
        m.constraints_mut().add(Constraint::Separated {
            components: comps.into_iter().collect(),
        });
        assert_eq!(
            ExactAlgorithm::new()
                .run(&m, &Availability, m.constraints(), None)
                .unwrap_err(),
            AlgoError::NoFeasibleDeployment
        );
    }

    #[test]
    fn budget_guard_refuses_large_instances() {
        let mut m = DeploymentModel::new();
        for i in 0..10 {
            m.add_host(format!("h{i}")).unwrap();
        }
        for i in 0..12 {
            m.add_component(format!("c{i}")).unwrap();
        }
        assert!(matches!(
            ExactAlgorithm::with_budget(1_000).run(&m, &Availability, m.constraints(), None),
            Err(AlgoError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn search_space_is_k_to_the_n() {
        let m = chatty_pair();
        assert_eq!(ExactAlgorithm::search_space(&m), 4); // 2^2
    }

    #[test]
    fn optimizes_latency_too() {
        // The exact body is objective-agnostic (variation point 1).
        let m = chatty_pair();
        let r = ExactAlgorithm::new()
            .run(&m, &Latency::new(), m.constraints(), None)
            .unwrap();
        assert_eq!(r.value, 0.0); // collocated => no remote latency
    }

    #[test]
    fn empty_model_yields_empty_deployment() {
        let m = DeploymentModel::new();
        let r = ExactAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert!(r.deployment.is_empty());
        assert_eq!(r.value, 1.0);
    }

    #[test]
    fn compiled_and_naive_paths_agree() {
        use redep_model::{Generator, GeneratorConfig, Uncompiled};
        let s = Generator::generate(&GeneratorConfig::sized(3, 6).with_seed(17)).unwrap();
        let m = s.model;
        let fast = ExactAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&s.initial))
            .unwrap();
        let slow = ExactAlgorithm::new()
            .run(
                &m,
                &Uncompiled(&Availability),
                m.constraints(),
                Some(&s.initial),
            )
            .unwrap();
        assert_eq!(fast.deployment, slow.deployment);
        assert_eq!(fast.value, slow.value);
        assert_eq!(fast.evaluations, slow.evaluations);
        assert!(fast.delta_evaluations > 0);
        assert_eq!(slow.delta_evaluations, 0);
    }
}
