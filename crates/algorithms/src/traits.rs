//! The pluggable-algorithm interface and its result/error types.

use redep_model::{ConstraintChecker, Deployment, DeploymentModel, Objective};
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// What a redeployment algorithm produced.
#[derive(Clone, PartialEq, Debug)]
pub struct AlgoResult {
    /// The algorithm's name.
    pub algorithm: String,
    /// The best deployment found.
    pub deployment: Deployment,
    /// The objective value of that deployment.
    pub value: f64,
    /// How many complete deployments the algorithm scored (a
    /// machine-independent cost measure alongside `wall_time`).
    pub evaluations: u64,
    /// Wall-clock running time.
    pub wall_time: Duration,
    /// Convergence trace: `(progress, objective value)` sampled as the
    /// search advances. `progress` is the algorithm's natural step counter —
    /// evaluations for Exact/Stochastic/Genetic/Annealing, component
    /// assignments for Avala, auction rounds for DecAp — so plotting value
    /// against progress shows how quickly each algorithm closes in on its
    /// final answer. The trace reflects the search body only; the baseline
    /// guard in `keep_best` may still raise the final `value` above the
    /// last trace entry.
    pub convergence: Vec<(u64, f64)>,
    /// How many of the scores were full (from-scratch) evaluations. On the
    /// naive path this equals `evaluations`; on the compiled path most
    /// scores are deltas and only re-anchoring points are full.
    pub full_evaluations: u64,
    /// How many of the scores were incremental (delta) evaluations touching
    /// only a moved component's incident links. `0` on the naive path.
    pub delta_evaluations: u64,
    /// How many candidate moves frontier pruning skipped without scoring
    /// them. `0` for flat (unpruned) runs; for hierarchical runs this is
    /// the proof of the cut — each refinement step charges the hosts it
    /// did *not* have to consider.
    pub pruned_evaluations: u64,
    /// Number of super-node clusters the hierarchy pass produced. `0` for
    /// flat runs.
    pub hierarchy_clusters: u64,
    /// Number of within-cluster refinement rounds executed. `0` for flat
    /// runs.
    pub refine_rounds: u64,
}

impl fmt::Display for AlgoResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: value {:.4} ({} evaluations, {:?})",
            self.algorithm, self.value, self.evaluations, self.wall_time
        )
    }
}

/// Why an algorithm failed.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum AlgoError {
    /// No deployment satisfying the constraints was found.
    NoFeasibleDeployment,
    /// The instance exceeds the algorithm's configured budget (e.g. the
    /// Exact algorithm refuses kⁿ beyond its evaluation cap).
    BudgetExceeded {
        /// Deployments the instance would require scoring.
        needed: u128,
        /// The configured cap.
        budget: u64,
    },
    /// The model is degenerate (no hosts while components exist, …).
    DegenerateModel(String),
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::NoFeasibleDeployment => {
                f.write_str("no deployment satisfies the constraints")
            }
            AlgoError::BudgetExceeded { needed, budget } => write!(
                f,
                "instance needs {needed} evaluations, exceeding the budget of {budget}"
            ),
            AlgoError::DegenerateModel(msg) => write!(f, "degenerate model: {msg}"),
        }
    }
}

impl Error for AlgoError {}

/// A pluggable redeployment algorithm.
///
/// Implementations are pure with respect to their inputs (all randomness is
/// seeded at construction), so a run is reproducible and side-effect free;
/// *effecting* the returned deployment is the Effector's job, not the
/// algorithm's.
pub trait RedeploymentAlgorithm: fmt::Debug {
    /// The algorithm's name (e.g. `"avala"`).
    fn name(&self) -> &str;

    /// Searches for a deployment of `model`'s components improving
    /// `objective` subject to `constraints`.
    ///
    /// `initial` is the currently running deployment, when one exists;
    /// algorithms use it as a baseline (they never return something worse)
    /// and local-search bodies use it as the starting point.
    ///
    /// # Errors
    ///
    /// * [`AlgoError::NoFeasibleDeployment`] when the constraints admit no
    ///   complete deployment the algorithm could find;
    /// * [`AlgoError::BudgetExceeded`] when the instance is too large for
    ///   the algorithm's configured budget;
    /// * [`AlgoError::DegenerateModel`] for models with components but no
    ///   hosts.
    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError>;
}

/// Shared pre-flight validation and baseline handling for algorithm bodies.
pub(crate) fn preflight(
    model: &DeploymentModel,
) -> Result<(Vec<redep_model::HostId>, Vec<redep_model::ComponentId>), AlgoError> {
    let hosts = model.host_ids();
    let components = model.component_ids();
    if components.is_empty() {
        return Ok((hosts, components));
    }
    if hosts.is_empty() {
        return Err(AlgoError::DegenerateModel(
            "components exist but there are no hosts".into(),
        ));
    }
    Ok((hosts, components))
}

/// Picks the better of a candidate and the (validated) initial deployment,
/// so algorithms never regress below the running system.
pub(crate) fn keep_best(
    model: &DeploymentModel,
    objective: &dyn Objective,
    constraints: &dyn ConstraintChecker,
    initial: Option<&Deployment>,
    candidate: Option<(Deployment, f64)>,
) -> Option<(Deployment, f64)> {
    let baseline = initial.and_then(|d| {
        constraints
            .check(model, d)
            .ok()
            .map(|()| (d.clone(), objective.evaluate(model, d)))
    });
    match (candidate, baseline) {
        (Some((cd, cv)), Some((bd, bv))) => {
            if objective.is_improvement(bv, cv) {
                Some((cd, cv))
            } else {
                Some((bd, bv))
            }
        }
        (Some(c), None) => Some(c),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

/// Compiled-path variant of [`keep_best`]: scores the baseline with a
/// throwaway [`redep_model::IncrementalScore`] instead of the naive
/// `Objective::evaluate`. `score_full`/`assign_from` are bit-identical to
/// the naive evaluation, so the pick is unchanged — but the baseline check
/// drops from an O(L log L) BTreeMap walk to one O(L) dense pass, which
/// dominated small compiled runs (~300µs of a 2–6ms run at 20×160).
pub(crate) fn keep_best_compiled(
    c: &crate::compiled::Compiled,
    objective: &dyn Objective,
    initial: Option<&Deployment>,
    candidate: Option<(Deployment, f64)>,
) -> Option<(Deployment, f64)> {
    let baseline = initial.and_then(|d| {
        let assign = c.model.compile_assignment(d);
        if !c.constraints.check(&assign) {
            return None;
        }
        let mut inc = redep_model::IncrementalScore::new(&c.model, &c.objective);
        let value = inc.assign_from(&assign);
        Some((d.clone(), value))
    });
    match (candidate, baseline) {
        (Some((cd, cv)), Some((bd, bv))) => {
            if objective.is_improvement(bv, cv) {
                Some((cd, cv))
            } else {
                Some((bd, bv))
            }
        }
        (Some(cand), None) => Some(cand),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, DeploymentModel};

    #[test]
    fn error_messages_are_informative() {
        assert!(AlgoError::NoFeasibleDeployment
            .to_string()
            .contains("constraints"));
        let e = AlgoError::BudgetExceeded {
            needed: 1_000_000,
            budget: 10,
        };
        assert!(e.to_string().contains("1000000"));
    }

    #[test]
    fn preflight_rejects_components_without_hosts() {
        let mut m = DeploymentModel::new();
        m.add_component("c").unwrap();
        assert!(matches!(preflight(&m), Err(AlgoError::DegenerateModel(_))));
    }

    #[test]
    fn preflight_accepts_empty_model() {
        let m = DeploymentModel::new();
        assert!(preflight(&m).is_ok());
    }

    #[test]
    fn convergence_traces_are_monotone_for_best_so_far_algorithms() {
        use crate::{
            AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, RedeploymentAlgorithm,
            StochasticAlgorithm,
        };
        use redep_model::{Generator, GeneratorConfig};

        let s = Generator::generate(&GeneratorConfig::sized(4, 8).with_seed(21)).unwrap();
        let (m, init) = (s.model, s.initial);

        let algos: Vec<Box<dyn RedeploymentAlgorithm>> = vec![
            Box::new(ExactAlgorithm::new()),
            Box::new(StochasticAlgorithm::new()),
            Box::new(AvalaAlgorithm::new()),
            Box::new(DecApAlgorithm::new()),
        ];
        for algo in algos {
            let r = algo
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            assert!(
                !r.convergence.is_empty(),
                "{} produced no convergence trace",
                r.algorithm
            );
            assert!(
                r.convergence.windows(2).all(|w| w[0].0 <= w[1].0),
                "{} trace progress must be non-decreasing",
                r.algorithm
            );
            // Best-so-far recorders (exact, stochastic) are monotone in value.
            if matches!(r.algorithm.as_str(), "exact" | "stochastic") {
                assert!(
                    r.convergence.windows(2).all(|w| w[1].1 >= w[0].1),
                    "{} best-so-far trace regressed",
                    r.algorithm
                );
            }
            let last = r.convergence.last().unwrap().1;
            assert!(
                r.value >= last - 1e-12,
                "{}: final value {} below last trace point {last}",
                r.algorithm,
                r.value
            );
        }
    }

    #[test]
    fn keep_best_prefers_the_better_side() {
        let mut m = DeploymentModel::new();
        let h0 = m.add_host("h0").unwrap();
        let h1 = m.add_host("h1").unwrap();
        m.set_physical_link(h0, h1, |l| l.set_reliability(0.5))
            .unwrap();
        let a = m.add_component("a").unwrap();
        let b = m.add_component("b").unwrap();
        m.set_logical_link(a, b, |l| l.set_frequency(1.0)).unwrap();

        let local: Deployment = [(a, h0), (b, h0)].into_iter().collect();
        let remote: Deployment = [(a, h0), (b, h1)].into_iter().collect();
        let lv = Availability.evaluate(&m, &local);

        let picked = keep_best(
            &m,
            &Availability,
            m.constraints(),
            Some(&remote),
            Some((local.clone(), lv)),
        )
        .unwrap();
        assert_eq!(picked.0, local);

        // With a better baseline, the baseline wins.
        let rv = Availability.evaluate(&m, &remote);
        let picked = keep_best(
            &m,
            &Availability,
            m.constraints(),
            Some(&local),
            Some((remote, rv)),
        )
        .unwrap();
        assert_eq!(picked.0, local);
    }
}
