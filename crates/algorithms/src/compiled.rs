//! Shared plumbing for the compiled (dense-index, delta-scoring) fast path.
//!
//! An algorithm body calls [`try_compile`] once per run: if the objective
//! and the constraint checker both have dense forms, the body runs on
//! [`IncrementalScore`](redep_model::IncrementalScore) and
//! [`CompiledConstraints`](redep_model::CompiledConstraints); otherwise it
//! falls back to the original naive loops. Compilation is all-or-nothing so
//! custom objectives or checkers never see half-compiled inputs.

use redep_model::{
    CompiledConstraints, CompiledModel, CompiledObjective, ConstraintChecker, DeploymentModel,
    Objective,
};

/// The compiled-path inputs for one algorithm run.
#[derive(Debug)]
pub(crate) struct Compiled {
    /// Dense snapshot of the model.
    pub model: CompiledModel,
    /// Dense form of the objective.
    pub objective: CompiledObjective,
    /// Dense form of the constraint checker.
    pub constraints: CompiledConstraints,
}

/// Compiles the run inputs, or returns `None` (→ naive path) if either the
/// objective or the constraint checker has no dense form.
///
/// The objective is probed first because it is the cheap check; the model
/// snapshot is only built when the objective compiles.
pub(crate) fn try_compile(
    model: &DeploymentModel,
    objective: &dyn Objective,
    constraints: &dyn ConstraintChecker,
) -> Option<Compiled> {
    let co = objective.compiled()?;
    let cm = CompiledModel::compile(model);
    let cc = constraints.compile(model, &cm)?;
    Some(Compiled {
        model: cm,
        objective: co,
        constraints: cc,
    })
}
