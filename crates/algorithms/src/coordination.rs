//! Coordination protocols — the third variation point.
//!
//! "There are many decentralized cooperative protocols (e.g., distributed
//! voting, auction-based)" (§4.3). A [`CoordinationProtocol`] turns a set of
//! per-host scored alternatives into one agreed choice; the decentralized
//! analyzer composes one of these with whatever algorithm body it runs.

use redep_model::HostId;
use std::fmt;

/// Chooses among alternatives scored independently by multiple hosts.
///
/// `proposals[i]` holds every host's score for alternative `i`. A protocol
/// returns the index of the chosen alternative, or `None` when there is
/// nothing to choose from. All protocols are deterministic: ties break
/// toward the lower index.
pub trait CoordinationProtocol: fmt::Debug {
    /// The protocol's name.
    fn name(&self) -> &str;

    /// Decides among the alternatives. Larger scores are better.
    fn decide(&self, proposals: &[Vec<(HostId, f64)>]) -> Option<usize>;
}

/// Distributed voting: each host votes for the alternative it scores
/// highest; the alternative with the most votes wins (plurality).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct VotingProtocol;

impl CoordinationProtocol for VotingProtocol {
    fn name(&self) -> &str {
        "voting"
    }

    fn decide(&self, proposals: &[Vec<(HostId, f64)>]) -> Option<usize> {
        if proposals.is_empty() {
            return None;
        }
        // Collect the set of voters across all alternatives.
        let mut voters: Vec<HostId> = proposals
            .iter()
            .flat_map(|p| p.iter().map(|(h, _)| *h))
            .collect();
        voters.sort_unstable();
        voters.dedup();
        if voters.is_empty() {
            return Some(0);
        }
        let mut votes = vec![0usize; proposals.len()];
        for voter in voters {
            let mut best: Option<(usize, f64)> = None;
            for (i, scores) in proposals.iter().enumerate() {
                if let Some((_, s)) = scores.iter().find(|(h, _)| *h == voter) {
                    let better = match best {
                        Some((_, bs)) => *s > bs,
                        None => true,
                    };
                    if better {
                        best = Some((i, *s));
                    }
                }
            }
            if let Some((i, _)) = best {
                votes[i] += 1;
            }
        }
        (0..proposals.len()).reduce(|x, y| if votes[y] > votes[x] { y } else { x })
    }
}

/// Polling: the alternative with the highest mean score wins.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PollingProtocol;

impl CoordinationProtocol for PollingProtocol {
    fn name(&self) -> &str {
        "polling"
    }

    fn decide(&self, proposals: &[Vec<(HostId, f64)>]) -> Option<usize> {
        if proposals.is_empty() {
            return None;
        }
        let mean = |scores: &Vec<(HostId, f64)>| {
            if scores.is_empty() {
                f64::NEG_INFINITY
            } else {
                scores.iter().map(|(_, s)| s).sum::<f64>() / scores.len() as f64
            }
        };
        (0..proposals.len()).reduce(|x, y| {
            if mean(&proposals[y]) > mean(&proposals[x]) {
                y
            } else {
                x
            }
        })
    }
}

/// One-shot auction: the single highest bid anywhere wins.
///
/// This is the primitive DecAp applies per component; exposed as a protocol
/// so analyzers can reuse it for whole-deployment choices too.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AuctionProtocol;

impl AuctionProtocol {
    /// Picks the winning bidder: the highest bid, ties toward the lower
    /// host id. Returns `None` when no bids were placed.
    pub fn winner(bids: &[(HostId, f64)]) -> Option<(HostId, f64)> {
        bids.iter().copied().reduce(|best, cand| {
            if cand.1 > best.1 || (cand.1 == best.1 && cand.0 < best.0) {
                cand
            } else {
                best
            }
        })
    }
}

impl CoordinationProtocol for AuctionProtocol {
    fn name(&self) -> &str {
        "auction"
    }

    fn decide(&self, proposals: &[Vec<(HostId, f64)>]) -> Option<usize> {
        let best_of = |scores: &Vec<(HostId, f64)>| {
            scores
                .iter()
                .map(|(_, s)| *s)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        (0..proposals.len()).reduce(|x, y| {
            if best_of(&proposals[y]) > best_of(&proposals[x]) {
                y
            } else {
                x
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u32) -> HostId {
        HostId::new(n)
    }

    #[test]
    fn voting_plurality_wins() {
        // Hosts 0 and 1 prefer alternative 1; host 2 prefers alternative 0.
        let proposals = vec![
            vec![(h(0), 0.1), (h(1), 0.2), (h(2), 0.9)],
            vec![(h(0), 0.8), (h(1), 0.7), (h(2), 0.1)],
        ];
        assert_eq!(VotingProtocol.decide(&proposals), Some(1));
    }

    #[test]
    fn voting_tie_breaks_to_lower_index() {
        let proposals = vec![vec![(h(0), 1.0)], vec![(h(1), 1.0)]];
        assert_eq!(VotingProtocol.decide(&proposals), Some(0));
    }

    #[test]
    fn polling_picks_best_mean() {
        let proposals = vec![
            vec![(h(0), 0.9), (h(1), 0.1)], // mean 0.5
            vec![(h(0), 0.6), (h(1), 0.6)], // mean 0.6
        ];
        assert_eq!(PollingProtocol.decide(&proposals), Some(1));
    }

    #[test]
    fn auction_winner_takes_highest_bid() {
        let bids = [(h(2), 0.4), (h(0), 0.9), (h(1), 0.9)];
        assert_eq!(AuctionProtocol::winner(&bids), Some((h(0), 0.9)));
        assert_eq!(AuctionProtocol::winner(&[]), None);
    }

    #[test]
    fn auction_protocol_picks_alternative_with_best_single_score() {
        let proposals = vec![
            vec![(h(0), 0.5), (h(1), 0.5)],
            vec![(h(0), 0.1), (h(1), 0.95)],
        ];
        assert_eq!(AuctionProtocol.decide(&proposals), Some(1));
    }

    #[test]
    fn empty_proposals_yield_none() {
        assert_eq!(VotingProtocol.decide(&[]), None);
        assert_eq!(PollingProtocol.decide(&[]), None);
        assert_eq!(AuctionProtocol.decide(&[]), None);
    }
}
