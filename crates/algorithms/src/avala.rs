//! Avala: the greedy best-host / best-component algorithm.
//!
//! "Avala is a greedy algorithm that incrementally assigns software
//! components to the hardware hosts. At each step of the algorithm, the goal
//! is to select the assignment that will maximally contribute to the
//! objective function, by selecting the 'best' host and 'best' software
//! component. Selecting the best hardware host is performed by choosing a
//! host with the highest sum of network reliabilities and bandwidths with
//! other hosts in the system, and the highest memory capacity. Similarly,
//! selecting the best software component is performed by choosing the
//! component with the highest frequency of interaction with other components
//! in the system, and the lowest required memory. […] The complexity of this
//! algorithm is O(n³)." (§5.1)

use crate::compiled::{try_compile, Compiled};
use crate::hierarchy::{coarse_greedy, finish_hierarchical, run_hierarchical, HierarchicalConfig};
use crate::traits::{
    keep_best, keep_best_compiled, preflight, AlgoError, AlgoResult, RedeploymentAlgorithm,
};
use redep_model::{
    ComponentId, ConstraintChecker, Deployment, DeploymentModel, HostId, IncrementalScore,
    Objective, UNASSIGNED,
};
use std::collections::BTreeSet;
use std::time::Instant;

/// The paper's greedy algorithm. Deterministic (no randomness).
///
/// On the compiled path, component seed ranks and host affinities are
/// incident-link sums over the [`redep_model::CompiledModel`] CSR index
/// (O(deg(c)) per candidate instead of a map walk), and the convergence
/// trace is maintained through [`IncrementalScore`] delta moves instead of
/// re-evaluating the partial deployment from scratch after every greedy
/// assignment.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct AvalaAlgorithm {
    hierarchy: Option<HierarchicalConfig>,
}

impl AvalaAlgorithm {
    /// Creates the algorithm.
    pub fn new() -> Self {
        AvalaAlgorithm::default()
    }

    /// Runs the hierarchical variant (`avala-h`): the avala-flavored coarse
    /// greedy places components onto super-node clusters, then frontier-
    /// pruned refinement picks hosts within each cluster in parallel.
    /// Requires the compiled path; a non-compilable objective or checker
    /// falls back to the flat naive body.
    pub fn with_hierarchy(mut self, config: HierarchicalConfig) -> Self {
        self.hierarchy = Some(config);
        self
    }

    /// Host desirability: Σ (reliability + normalized bandwidth) to other
    /// hosts, plus normalized memory capacity.
    fn host_rank(model: &DeploymentModel, h: HostId, max_bandwidth: f64, max_memory: f64) -> f64 {
        let mut rank = 0.0;
        for other in model.host_ids() {
            if other == h {
                continue;
            }
            rank += model.reliability(h, other);
            let bw = model.bandwidth(h, other);
            if bw.is_finite() && max_bandwidth > 0.0 {
                rank += bw / max_bandwidth;
            } else if bw.is_infinite() {
                rank += 1.0;
            }
        }
        let mem = model.host(h).map(|x| x.memory()).unwrap_or(0.0);
        if mem.is_finite() && max_memory > 0.0 {
            rank += mem / max_memory;
        } else if mem.is_infinite() {
            rank += 1.0;
        }
        rank
    }

    /// First component on a host: highest total interaction frequency,
    /// lowest memory.
    fn seed_rank(model: &DeploymentModel, c: ComponentId, max_memory: f64) -> f64 {
        let freq: f64 = model
            .logical_neighbors(c)
            .into_iter()
            .map(|d| model.frequency(c, d))
            .sum();
        let mem = model
            .component(c)
            .map(|x| x.required_memory())
            .unwrap_or(0.0);
        let mem_norm = if max_memory > 0.0 {
            mem / max_memory
        } else {
            0.0
        };
        freq - mem_norm
    }

    /// Subsequent components: highest interaction frequency with the
    /// components already placed on the current host.
    fn affinity(model: &DeploymentModel, c: ComponentId, on_host: &BTreeSet<ComponentId>) -> f64 {
        on_host.iter().map(|&d| model.frequency(c, d)).sum()
    }

    #[allow(clippy::too_many_arguments)] // internal: mirrors the naive body's precomputed inputs
    fn run_compiled(
        &self,
        c: &Compiled,
        model: &DeploymentModel,
        objective: &dyn Objective,
        initial: Option<&Deployment>,
        started: Instant,
        max_bandwidth: f64,
        max_comp_memory: f64,
        max_host_memory: f64,
    ) -> Result<AlgoResult, AlgoError> {
        let cm = &c.model;
        let n_hosts = cm.n_hosts();
        let n_comps = cm.n_comps();

        // Rank hosts once and sort dense indices; index order mirrors id
        // order, so the permutation matches the naive sort exactly.
        let ranks: Vec<f64> = cm
            .host_ids()
            .iter()
            .map(|&h| Self::host_rank(model, h, max_bandwidth, max_host_memory))
            .collect();
        let mut host_order: Vec<u32> = (0..n_hosts as u32).collect();
        host_order.sort_by(|&a, &b| {
            ranks[b as usize]
                .partial_cmp(&ranks[a as usize])
                .expect("ranks are finite")
                .then(a.cmp(&b))
        });

        // Seed ranks as incident-link frequency sums over the CSR index;
        // incident links enumerate neighbors in ascending order, matching
        // the naive neighbor walk term for term.
        let seed_ranks: Vec<f64> = (0..n_comps as u32)
            .map(|ci| {
                let freq: f64 = cm
                    .incident(ci)
                    .iter()
                    .map(|&li| cm.links()[li as usize].frequency)
                    .sum();
                let mem = cm.comp_memory()[ci as usize];
                let mem_norm = if max_comp_memory > 0.0 {
                    mem / max_comp_memory
                } else {
                    0.0
                };
                freq - mem_norm
            })
            .collect();

        let mut assign: Vec<u32> = vec![UNASSIGNED; n_comps];
        let mut unassigned: Vec<bool> = vec![true; n_comps];
        // Per-host memory load, maintained incrementally so admissibility is
        // O(groups) per candidate instead of an O(n_comps) matrix rescan —
        // the rescan made the greedy loop accidentally cubic (~4M memory
        // probes at 20×160) and was the bulk of avala's 120 evals/s anomaly.
        let mut load: Vec<f64> = c.constraints.load_of(&assign);
        let mut left = n_comps;
        let mut inc = IncrementalScore::new(cm, &c.objective);
        let mut evaluations = 0u64;
        let mut convergence = Vec::new();

        for &h in &host_order {
            if left == 0 {
                break;
            }
            let mut host_empty = true;
            loop {
                // Pick the best admissible component for this host. Affinity
                // is an incident-link sum restricted to components already
                // placed here.
                let mut best: Option<(u32, f64)> = None;
                for ci in 0..n_comps as u32 {
                    if !unassigned[ci as usize]
                        || !c.constraints.admits_with_load(&assign, &load, ci, h)
                    {
                        continue;
                    }
                    let score = if host_empty {
                        seed_ranks[ci as usize]
                    } else {
                        cm.incident(ci)
                            .iter()
                            .map(|&li| {
                                let l = &cm.links()[li as usize];
                                if assign[l.other(ci) as usize] == h {
                                    l.frequency
                                } else {
                                    0.0
                                }
                            })
                            .sum()
                    };
                    let better = match best {
                        Some((bc, bs)) => score > bs || (score == bs && ci < bc),
                        None => true,
                    };
                    if better {
                        best = Some((ci, score));
                    }
                }
                let Some((ci, _)) = best else {
                    break; // host full (or nothing admissible): next host
                };
                assign[ci as usize] = h;
                load[h as usize] += cm.comp_memory()[ci as usize];
                unassigned[ci as usize] = false;
                host_empty = false;
                left -= 1;
                // Trace the partial deployment's value after every greedy
                // assignment via a delta move (objectives score unplaced
                // interactions as absent, so partial scoring is well-defined).
                inc.set(ci, h);
                convergence.push(((n_comps - left) as u64, inc.value()));
            }
        }

        let candidate = if left == 0 && c.constraints.check(&assign) {
            evaluations += 1;
            let value = inc.score_full();
            Some((cm.decode_assignment(&assign), value))
        } else {
            None
        };
        let full = inc.full_evaluations();
        let delta = inc.delta_evaluations();
        let (deployment, value) = keep_best_compiled(c, objective, initial, candidate)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: full,
            delta_evaluations: delta,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

impl RedeploymentAlgorithm for AvalaAlgorithm {
    fn name(&self) -> &str {
        if self.hierarchy.is_some() {
            "avala-h"
        } else {
            "avala"
        }
    }

    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError> {
        let started = Instant::now();
        let (hosts, components) = preflight(model)?;
        let max_bandwidth = model
            .physical_links()
            .map(|l| l.bandwidth())
            .filter(|b| b.is_finite())
            .fold(0.0f64, f64::max);
        let max_comp_memory = components
            .iter()
            .filter_map(|&c| model.component(c).ok())
            .map(|c| c.required_memory())
            .fold(0.0f64, f64::max);
        let max_host_memory = hosts
            .iter()
            .filter_map(|&h| model.host(h).ok())
            .map(|h| h.memory())
            .filter(|m| m.is_finite())
            .fold(0.0f64, f64::max);

        if let Some(c) = try_compile(model, objective, constraints) {
            if let Some(hcfg) = &self.hierarchy {
                let out = run_hierarchical(&c, hcfg, coarse_greedy)?;
                return finish_hierarchical(&c, objective, initial, started, self.name(), out);
            }
            return self.run_compiled(
                &c,
                model,
                objective,
                initial,
                started,
                max_bandwidth,
                max_comp_memory,
                max_host_memory,
            );
        }

        let mut host_order: Vec<HostId> = hosts.clone();
        host_order.sort_by(|&a, &b| {
            let ra = Self::host_rank(model, a, max_bandwidth, max_host_memory);
            let rb = Self::host_rank(model, b, max_bandwidth, max_host_memory);
            rb.partial_cmp(&ra)
                .expect("ranks are finite")
                .then(a.cmp(&b))
        });

        let mut unassigned: BTreeSet<ComponentId> = components.iter().copied().collect();
        let mut d = Deployment::new();
        let mut evaluations = 0u64;
        let mut convergence = Vec::new();

        for &h in &host_order {
            if unassigned.is_empty() {
                break;
            }
            let mut on_host: BTreeSet<ComponentId> = BTreeSet::new();
            loop {
                // Pick the best admissible component for this host.
                let mut best: Option<(ComponentId, f64)> = None;
                for &c in &unassigned {
                    if !constraints.admits(model, &d, c, h) {
                        continue;
                    }
                    let score = if on_host.is_empty() {
                        Self::seed_rank(model, c, max_comp_memory)
                    } else {
                        Self::affinity(model, c, &on_host)
                    };
                    let better = match best {
                        Some((bc, bs)) => score > bs || (score == bs && c < bc),
                        None => true,
                    };
                    if better {
                        best = Some((c, score));
                    }
                }
                let Some((c, _)) = best else {
                    break; // host full (or nothing admissible): next host
                };
                d.assign(c, h);
                on_host.insert(c);
                unassigned.remove(&c);
                // Trace the partial deployment's value after every greedy
                // assignment (objectives score unplaced interactions as
                // absent, so partial evaluation is well-defined).
                convergence.push((d.len() as u64, objective.evaluate(model, &d)));
            }
        }

        let candidate = if unassigned.is_empty() && constraints.check(model, &d).is_ok() {
            evaluations += 1;
            let value = objective.evaluate(model, &d);
            Some((d, value))
        } else {
            None
        };
        let (deployment, value) = keep_best(model, objective, constraints, initial, candidate)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: evaluations,
            delta_evaluations: 0,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Constraint, Generator, GeneratorConfig};

    fn generated(seed: u64) -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(seed)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn produces_valid_deployments() {
        let (m, init) = generated(1);
        let r = AvalaAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        r.deployment.validate(&m).unwrap();
        m.constraints().check(&m, &r.deployment).unwrap();
    }

    #[test]
    fn collocates_the_chatty_pair() {
        let mut m = DeploymentModel::new();
        let h0 = m.add_host("h0").unwrap();
        let h1 = m.add_host("h1").unwrap();
        m.set_physical_link(h0, h1, |l| l.set_reliability(0.3))
            .unwrap();
        let a = m.add_component("a").unwrap();
        let b = m.add_component("b").unwrap();
        let c = m.add_component("c").unwrap();
        m.set_logical_link(a, b, |l| l.set_frequency(10.0)).unwrap();
        m.set_logical_link(a, c, |l| l.set_frequency(0.1)).unwrap();
        let r = AvalaAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert!(r.deployment.collocated(a, b));
    }

    #[test]
    fn is_deterministic() {
        let (m, _) = generated(2);
        let a = AvalaAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        let b = AvalaAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert_eq!(a.deployment, b.deployment);
    }

    #[test]
    fn respects_pinning() {
        let (mut m, _) = generated(3);
        let c0 = m.component_ids()[0];
        let h3 = m.host_ids()[3];
        m.constraints_mut().add(Constraint::PinnedTo {
            component: c0,
            hosts: std::collections::BTreeSet::from([h3]),
        });
        let r = AvalaAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert_eq!(r.deployment.host_of(c0), Some(h3));
    }

    #[test]
    fn greedy_beats_or_matches_a_single_random_placement() {
        let (m, init) = generated(4);
        let random = Availability.evaluate(&m, &init);
        let r = AvalaAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert!(
            r.value >= random - 1e-9,
            "avala {} vs random {random}",
            r.value
        );
    }

    #[test]
    fn compiled_and_naive_paths_pick_the_same_deployment() {
        use redep_model::Uncompiled;
        for seed in [1u64, 2, 3, 4, 5] {
            let (m, init) = generated(seed);
            let fast = AvalaAlgorithm::new()
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            let slow = AvalaAlgorithm::new()
                .run(&m, &Uncompiled(&Availability), m.constraints(), Some(&init))
                .unwrap();
            assert_eq!(fast.deployment, slow.deployment, "seed {seed}");
            assert_eq!(fast.value, slow.value, "seed {seed}");
            assert!(fast.delta_evaluations > 0, "seed {seed}");
            assert_eq!(slow.delta_evaluations, 0, "seed {seed}");
        }
    }
}
