//! DecAp: the decentralized auction-based redeployment algorithm (§5.2).
//!
//! "In DecAp, each Decentralized Algorithm component acts as an agent and
//! may conduct or participate in auctions. Each host's agent initiates an
//! auction for the redeployment of its local components, assuming none of
//! its neighboring (i.e., connected) hosts is already conducting an auction.
//! […] The bidding agent on a given host calculates an initial bid for the
//! auctioned component, by considering the frequency and volume of
//! interaction between components on its host and the auctioned component.
//! […] The host with the highest bid is selected as the winner and the
//! component is redeployed to it. The complexity of this algorithm is
//! O(k·n³)."
//!
//! The implementation emulates the auction protocol deterministically over
//! [`AwarenessGraph`] partial views: every bid is computed from what the
//! bidder can actually see, never from global knowledge, so results degrade
//! gracefully with lower awareness (experiment E9 sweeps this).
//!
//! On the compiled path the partial views are never materialized: a bid is
//! an incident-link sum over the [`redep_model::CompiledModel`] CSR index,
//! masked by a precomputed host-visibility matrix. This skips the per-bid
//! submodel clone entirely while producing the same bids term for term.

use crate::compiled::{try_compile, Compiled};
use crate::coordination::AuctionProtocol;
use crate::hierarchy::HierarchicalConfig;
use crate::parallel::run_shards;
use crate::traits::{
    keep_best, keep_best_compiled, preflight, AlgoError, AlgoResult, RedeploymentAlgorithm,
};
use redep_model::{
    AwarenessGraph, ComponentId, ConstraintChecker, Deployment, DeploymentModel, Hierarchy, HostId,
    IncrementalScore, Objective, UNASSIGNED,
};
use std::collections::BTreeSet;
use std::time::Instant;

/// How monitoring information spreads between auction rounds.
///
/// The paper's base protocol auctions against a *static* partial view, so a
/// poorly connected host can starve: no bidder that could profitably take
/// its components ever becomes visible, capping the final availability well
/// below what centralized algorithms reach. Gossip exchange models the
/// monitoring layer forwarding its host inventories to every aware peer
/// between rounds, transitively widening each agent's view until the
/// auctions can see across the whole connected system.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MonitoringExchange {
    /// No exchange: the awareness graph stays as configured.
    #[default]
    None,
    /// After each auction round every host merges the awareness sets of the
    /// hosts it can already see, `hops` times per round. An isolated host
    /// can see only itself and learns nothing — gossip never invents
    /// connectivity, it only forwards what some peer already observed.
    Gossip {
        /// Merge steps per round (1 doubles the view radius each round).
        hops: usize,
    },
}

/// The decentralized auction algorithm.
#[derive(Clone, PartialEq, Debug)]
pub struct DecApAlgorithm {
    max_rounds: usize,
    awareness: Option<AwarenessGraph>,
    exchange: MonitoringExchange,
    hierarchy: Option<HierarchicalConfig>,
}

impl Default for DecApAlgorithm {
    fn default() -> Self {
        DecApAlgorithm::new()
    }
}

impl DecApAlgorithm {
    /// Default bound on auction rounds.
    pub const DEFAULT_MAX_ROUNDS: usize = 10;

    /// Creates the algorithm; awareness defaults to the model's physical
    /// connectivity (each host knows its direct neighbors), per the paper.
    pub fn new() -> Self {
        DecApAlgorithm {
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
            awareness: None,
            exchange: MonitoringExchange::None,
            hierarchy: None,
        }
    }

    /// Uses an explicit awareness graph instead of physical connectivity.
    pub fn with_awareness(mut self, awareness: AwarenessGraph) -> Self {
        self.awareness = Some(awareness);
        self
    }

    /// Sets how monitoring information spreads between rounds.
    pub fn with_exchange(mut self, exchange: MonitoringExchange) -> Self {
        self.exchange = exchange;
        self
    }

    /// Runs the hierarchical variant (`decap-h`): one auction per super-node
    /// cluster per round, conducted in parallel over the refinement shards
    /// and applied deterministically in cluster order, with the configured
    /// [`MonitoringExchange`] widening views between rounds. Requires the
    /// compiled path; a non-compilable objective or checker falls back to
    /// the flat naive body.
    pub fn with_hierarchy(mut self, config: HierarchicalConfig) -> Self {
        self.hierarchy = Some(config);
        self
    }

    /// Bounds the number of auction rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds > 0, "at least one auction round is required");
        self.max_rounds = rounds;
        self
    }

    /// A host's valuation of holding component `c`, computed strictly from
    /// its own partial view: interactions with `c` that would become local
    /// count fully; interactions with visible components elsewhere count at
    /// the connecting link's reliability.
    fn bid(
        model: &DeploymentModel,
        awareness: &AwarenessGraph,
        deployment: &Deployment,
        bidder: HostId,
        c: ComponentId,
    ) -> Option<f64> {
        let view = awareness.partial_view(model, deployment, bidder).ok()?;
        if !view.model.contains_component(c) {
            return None; // cannot even see the auctioned component
        }
        let mut value = 0.0;
        for d in view.model.logical_neighbors(c) {
            let freq = view.model.frequency(c, d);
            let size = view.model.event_size(c, d);
            let volume = freq * size;
            match view.deployment.host_of(d) {
                Some(hd) if hd == bidder => value += volume, // would be local
                Some(hd) => value += volume * view.model.reliability(bidder, hd),
                None => {}
            }
        }
        Some(value)
    }

    /// The same valuation on dense indices: the submodel a bidder would see
    /// is implied by the visibility mask, so the bid reduces to a masked
    /// incident-link sum (neighbors enumerate in ascending order, exactly as
    /// the partial view's neighbor walk does).
    fn bid_compiled(
        c: &Compiled,
        visible: &[Vec<bool>],
        assign: &[u32],
        bidder: u32,
        comp: u32,
    ) -> Option<f64> {
        let hc = assign[comp as usize];
        if hc == UNASSIGNED || !visible[bidder as usize][hc as usize] {
            return None; // cannot even see the auctioned component
        }
        let cm = &c.model;
        let mut value = 0.0;
        for &li in cm.incident(comp) {
            let l = &cm.links()[li as usize];
            let d = l.other(comp);
            let hd = assign[d as usize];
            if hd == UNASSIGNED || !visible[bidder as usize][hd as usize] {
                continue; // neighbor outside the bidder's view
            }
            if hd == bidder {
                value += l.volume; // would be local
            } else {
                value += l.volume * cm.reliability(bidder, hd);
            }
        }
        Some(value)
    }

    /// One or more gossip widening passes on the dense visibility matrix;
    /// returns whether anything changed. Dense mirror of the naive path's
    /// [`AwarenessGraph`] widening: `new_aware(a) = ∪_{p ∈ aware(a)}
    /// aware(p)` — symmetric whenever the input relation is, and a fixed
    /// point for isolated hosts.
    fn gossip_dense(
        visible: &mut Vec<Vec<bool>>,
        aware_dense: &mut [Vec<u32>],
        hops: usize,
    ) -> bool {
        let n = visible.len();
        let mut widened = false;
        for _ in 0..hops {
            let mut next = visible.clone();
            for (a, row) in next.iter_mut().enumerate() {
                for &p in &aware_dense[a] {
                    for (b, cell) in row.iter_mut().enumerate() {
                        if visible[p as usize][b] {
                            *cell = true;
                        }
                    }
                }
            }
            if next == *visible {
                break;
            }
            widened = true;
            *visible = next;
        }
        if widened {
            for (a, list) in aware_dense.iter_mut().enumerate() {
                *list = (0..n as u32).filter(|&b| visible[a][b as usize]).collect();
            }
        }
        widened
    }

    /// The naive-path equivalent of [`Self::gossip_dense`], widening the
    /// [`AwarenessGraph`] in place.
    fn gossip_graph(awareness: &mut AwarenessGraph, hosts: &[HostId], hops: usize) -> bool {
        let mut widened = false;
        for _ in 0..hops {
            let mut additions: Vec<(HostId, HostId)> = Vec::new();
            for &a in hosts {
                for p in awareness.aware_of(a) {
                    for x in awareness.aware_of(p) {
                        if !awareness.is_aware(a, x) {
                            additions.push((a, x));
                        }
                    }
                }
            }
            if additions.is_empty() {
                break;
            }
            widened = true;
            for (a, x) in additions {
                awareness.connect(a, x);
            }
        }
        widened
    }

    #[allow(clippy::too_many_arguments)] // internal: mirrors the naive body's precomputed inputs
    fn run_compiled(
        &self,
        c: &Compiled,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
        awareness: &AwarenessGraph,
        started: Instant,
    ) -> Result<AlgoResult, AlgoError> {
        let cm = &c.model;
        let n_hosts = cm.n_hosts();
        let n_comps = cm.n_comps();
        let host_ids = cm.host_ids();

        // Precompute the visibility mask and per-host awareness lists once
        // (hosts outside the model cannot bid or conduct, so they drop out).
        let mut visible: Vec<Vec<bool>> = (0..n_hosts)
            .map(|a| {
                (0..n_hosts)
                    .map(|b| awareness.is_aware(host_ids[a], host_ids[b]))
                    .collect()
            })
            .collect();
        let mut aware_dense: Vec<Vec<u32>> = (0..n_hosts)
            .map(|a| {
                awareness
                    .aware_of(host_ids[a])
                    .iter()
                    .filter_map(|&h| cm.host_index(h))
                    .collect()
            })
            .collect();

        // DecAp improves a *running* deployment; without one, start from a
        // deterministic first-fit.
        let mut assign: Vec<u32> = match initial {
            Some(d) if constraints.check(model, d).is_ok() => cm.compile_assignment(d),
            _ => {
                let mut a = vec![UNASSIGNED; n_comps];
                'comp: for ci in 0..n_comps as u32 {
                    for h in 0..n_hosts as u32 {
                        if c.constraints.admits(&a, ci, h) {
                            a[ci as usize] = h;
                            continue 'comp;
                        }
                    }
                    return Err(AlgoError::NoFeasibleDeployment);
                }
                a
            }
        };

        let mut inc = IncrementalScore::new(cm, &c.objective);
        let mut evaluations = 0u64;
        let mut convergence = Vec::new();
        let mut last_value = f64::NAN;
        for round in 0..self.max_rounds {
            let mut moved = false;
            // Auction scheduling: a host may conduct an auction only if no
            // host it is aware of already conducted one this round.
            let mut conducted = vec![false; n_hosts];
            for auctioneer in 0..n_hosts as u32 {
                let aware = &aware_dense[auctioneer as usize];
                if aware.iter().any(|&a| conducted[a as usize]) {
                    continue;
                }
                conducted[auctioneer as usize] = true;

                let on_auctioneer: Vec<u32> = (0..n_comps as u32)
                    .filter(|&ci| assign[ci as usize] == auctioneer)
                    .collect();
                for comp in on_auctioneer {
                    // Retention value: the auctioneer's own bid.
                    let retention =
                        Self::bid_compiled(c, &visible, &assign, auctioneer, comp).unwrap_or(0.0);
                    // Collect bids from aware peers that could legally host
                    // the component (admissibility judged with it lifted out).
                    let mut bids: Vec<(u32, f64)> = Vec::new();
                    for &bidder in aware.iter().filter(|&&b| b != auctioneer) {
                        assign[comp as usize] = UNASSIGNED;
                        let admissible = c.constraints.admits(&assign, comp, bidder);
                        assign[comp as usize] = auctioneer;
                        if !admissible {
                            continue;
                        }
                        if let Some(b) = Self::bid_compiled(c, &visible, &assign, bidder, comp) {
                            bids.push((bidder, b));
                        }
                    }
                    // Highest bid wins; lowest host index breaks ties
                    // (the auction protocol's rule on dense indices).
                    let winner = bids.iter().copied().reduce(|best, cand| {
                        if cand.1 > best.1 || (cand.1 == best.1 && cand.0 < best.0) {
                            cand
                        } else {
                            best
                        }
                    });
                    if let Some((winner, bid)) = winner {
                        if bid > retention {
                            assign[comp as usize] = winner;
                            if c.constraints.check(&assign) {
                                moved = true;
                            } else {
                                assign[comp as usize] = auctioneer;
                            }
                        }
                    }
                }
            }
            evaluations += 1;
            last_value = inc.assign_from(&assign);
            convergence.push((round as u64 + 1, last_value));
            let widened = match self.exchange {
                MonitoringExchange::None => false,
                MonitoringExchange::Gossip { hops } => {
                    Self::gossip_dense(&mut visible, &mut aware_dense, hops)
                }
            };
            // A widened view can unlock auctions that had no visible bidder,
            // so only stop once both the deployment and the views are stable.
            if !moved && !widened {
                break;
            }
        }

        let full = inc.full_evaluations();
        let delta = inc.delta_evaluations();
        let candidate = Some((cm.decode_assignment(&assign), last_value));
        let (deployment, value) = keep_best_compiled(c, objective, initial, candidate)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: full,
            delta_evaluations: delta,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }

    /// The hierarchical auction (`decap-h`): hosts are decomposed into
    /// super-node clusters and every round runs *one auction per cluster in
    /// parallel* over the shard pool. Each shard proposes winning moves
    /// against a private [`IncrementalScore`] clone of the round-start state
    /// (bids may cross cluster borders — that, plus the configured
    /// [`MonitoringExchange`], is what un-starves poorly connected hosts),
    /// and proposals are applied sequentially in cluster order with a full
    /// admissibility re-check, so the outcome is byte-identical at any
    /// thread count.
    #[allow(clippy::too_many_arguments)] // internal: mirrors run_compiled's inputs
    fn run_hier_compiled(
        &self,
        c: &Compiled,
        hcfg: &HierarchicalConfig,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
        awareness: &AwarenessGraph,
        started: Instant,
    ) -> Result<AlgoResult, AlgoError> {
        let cm = &c.model;
        let n_hosts = cm.n_hosts();
        let n_comps = cm.n_comps();
        let host_ids = cm.host_ids();
        let hier = Hierarchy::build(cm, &hcfg.clustering());
        let k = hier.n_clusters();

        let mut visible: Vec<Vec<bool>> = (0..n_hosts)
            .map(|a| {
                (0..n_hosts)
                    .map(|b| awareness.is_aware(host_ids[a], host_ids[b]))
                    .collect()
            })
            .collect();
        let mut aware_dense: Vec<Vec<u32>> = (0..n_hosts)
            .map(|a| {
                awareness
                    .aware_of(host_ids[a])
                    .iter()
                    .filter_map(|&h| cm.host_index(h))
                    .collect()
            })
            .collect();

        let mut assign: Vec<u32> = match initial {
            Some(d) if constraints.check(model, d).is_ok() => cm.compile_assignment(d),
            _ => {
                let mut a = vec![UNASSIGNED; n_comps];
                'comp: for ci in 0..n_comps as u32 {
                    for h in 0..n_hosts as u32 {
                        if c.constraints.admits(&a, ci, h) {
                            a[ci as usize] = h;
                            continue 'comp;
                        }
                    }
                    return Err(AlgoError::NoFeasibleDeployment);
                }
                a
            }
        };

        struct AuctionOut {
            /// `(component, from-host, to-host)` winning moves, in the order
            /// the shard's auctioneers produced them.
            proposals: Vec<(u32, u32, u32)>,
            delta: u64,
            pruned: u64,
        }

        let mut inc = IncrementalScore::new(cm, &c.objective);
        let mut last_value = inc.assign_from(&assign);
        let mut convergence = vec![(0u64, last_value)];
        let mut shard_delta = 0u64;
        let mut pruned = 0u64;
        let mut rounds_done = 0u64;
        // With rotation, a single no-move round only proves the *current*
        // rotation's auctioneers are done; convergence needs a full rotation
        // (the largest cluster's worth of rounds) without movement.
        let rotation = (0..k)
            .map(|s| hier.hosts(s as u32).len())
            .max()
            .unwrap_or(1);
        let mut idle_rounds = 0usize;
        for round in 0..self.max_rounds {
            rounds_done = round as u64 + 1;
            let round_load = c.constraints.load_of(&assign);
            let inc_ref = &inc;
            let visible_ref = &visible;
            let aware_ref = &aware_dense;
            let load_ref = &round_load;
            let base_delta = inc.delta_evaluations();
            let outs: Vec<AuctionOut> = run_shards(k as u32, hcfg.threads.max(1) as u32, |shard| {
                // Private round-start view: scoring clone, assignment
                // scratch, and load mirror. All reads below are against
                // this shard-local state, never the master.
                let mut local = inc_ref.clone();
                let mut scratch: Vec<u32> = local.assignment().to_vec();
                let mut load = load_ref.clone();
                let mut conducted = vec![false; n_hosts];
                let mut proposals = Vec::new();
                let mut local_pruned = 0u64;
                // Rotate the conduction order by round: under wide
                // awareness the "no aware host already conducting" rule
                // would otherwise hand the auction to the same host
                // every round, starving everyone else's components.
                let cluster_hosts = hier.hosts(shard);
                for idx in 0..cluster_hosts.len() {
                    let auctioneer = cluster_hosts[(idx + round) % cluster_hosts.len()];
                    let aware = &aware_ref[auctioneer as usize];
                    if aware.iter().any(|&a| conducted[a as usize]) {
                        continue;
                    }
                    conducted[auctioneer as usize] = true;

                    let on_auctioneer: Vec<u32> = (0..n_comps as u32)
                        .filter(|&ci| scratch[ci as usize] == auctioneer)
                        .collect();
                    for comp in on_auctioneer {
                        let retention =
                            Self::bid_compiled(c, visible_ref, &scratch, auctioneer, comp)
                                .unwrap_or(0.0);
                        // Everything outside the awareness view is a
                        // pruned candidate: it never gets priced.
                        local_pruned += (n_hosts as u64).saturating_sub(aware.len() as u64);
                        let mut bids: Vec<(u32, f64)> = Vec::new();
                        for &bidder in aware.iter().filter(|&&b| b != auctioneer) {
                            scratch[comp as usize] = UNASSIGNED;
                            let admissible = c
                                .constraints
                                .admits_with_load(&scratch, &load, comp, bidder);
                            scratch[comp as usize] = auctioneer;
                            if !admissible {
                                continue;
                            }
                            if let Some(b) =
                                Self::bid_compiled(c, visible_ref, &scratch, bidder, comp)
                            {
                                bids.push((bidder, b));
                            }
                        }
                        // Award to the best bidder whose move the score
                        // guard accepts: bidders outbidding the
                        // retention value are tried in descending-bid
                        // order and the component goes to the first one
                        // that improves the shard's view of the global
                        // objective, so local auction pressure cannot
                        // degrade the system.
                        bids.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                        for (bidder, bid) in bids {
                            if bid <= retention {
                                break; // bids only get lower from here
                            }
                            let v1 = local.peek(comp, bidder);
                            if c.objective.is_improvement(local.value(), v1) {
                                let mem = cm.comp_memory()[comp as usize];
                                load[auctioneer as usize] -= mem;
                                load[bidder as usize] += mem;
                                scratch[comp as usize] = bidder;
                                local.set(comp, bidder);
                                proposals.push((comp, auctioneer, bidder));
                                break;
                            }
                        }
                    }
                }
                AuctionOut {
                    proposals,
                    delta: local.delta_evaluations() - base_delta,
                    pruned: local_pruned,
                }
            });

            // Apply phase: fold the per-cluster proposals in cluster order
            // against the master state, re-checking admissibility because a
            // proposal from an earlier cluster may have consumed the slot.
            let mut moved = false;
            let mut load = round_load;
            for out in outs {
                shard_delta += out.delta;
                pruned += out.pruned;
                for (comp, from, to) in out.proposals {
                    if assign[comp as usize] != from {
                        continue; // superseded by an earlier cluster's move
                    }
                    assign[comp as usize] = UNASSIGNED;
                    let ok = c.constraints.admits_with_load(&assign, &load, comp, to);
                    if ok {
                        assign[comp as usize] = to;
                        let mem = cm.comp_memory()[comp as usize];
                        load[from as usize] -= mem;
                        load[to as usize] += mem;
                        moved = true;
                    } else {
                        assign[comp as usize] = from;
                    }
                }
            }
            debug_assert!(c.constraints.check(&assign));
            last_value = inc.assign_from(&assign);
            convergence.push((round as u64 + 1, last_value));
            let widened = match self.exchange {
                MonitoringExchange::None => false,
                MonitoringExchange::Gossip { hops } => {
                    Self::gossip_dense(&mut visible, &mut aware_dense, hops)
                }
            };
            if moved || widened {
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
                if idle_rounds >= rotation {
                    break;
                }
            }
        }

        let candidate = if c.constraints.check(&assign) {
            Some((cm.decode_assignment(&assign), last_value))
        } else {
            debug_assert!(false, "hierarchical auction left an invalid deployment");
            None
        };
        let full = inc.full_evaluations();
        let delta = inc.delta_evaluations() + shard_delta;
        let (deployment, value) = keep_best_compiled(c, objective, initial, candidate)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            // Like the refinement engine, every deployment scoring counts:
            // the full/delta split below is the honest cost measure.
            evaluations: full + delta,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: full,
            delta_evaluations: delta,
            pruned_evaluations: pruned,
            hierarchy_clusters: k as u64,
            refine_rounds: rounds_done,
        })
    }
}

impl RedeploymentAlgorithm for DecApAlgorithm {
    fn name(&self) -> &str {
        if self.hierarchy.is_some() {
            "decap-h"
        } else {
            "decap"
        }
    }

    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError> {
        let started = Instant::now();
        let (hosts, _components) = preflight(model)?;
        let mut awareness = self
            .awareness
            .clone()
            .unwrap_or_else(|| AwarenessGraph::from_connectivity(model));

        if let Some(c) = try_compile(model, objective, constraints) {
            if let Some(hcfg) = &self.hierarchy {
                return self.run_hier_compiled(
                    &c,
                    hcfg,
                    model,
                    objective,
                    constraints,
                    initial,
                    &awareness,
                    started,
                );
            }
            return self.run_compiled(
                &c,
                model,
                objective,
                constraints,
                initial,
                &awareness,
                started,
            );
        }

        // DecAp improves a *running* deployment; without one, start from a
        // deterministic first-fit.
        let mut current = match initial {
            Some(d) if constraints.check(model, d).is_ok() => d.clone(),
            _ => {
                let mut d = Deployment::new();
                'comp: for c in model.component_ids() {
                    for &h in &hosts {
                        if constraints.admits(model, &d, c, h) {
                            d.assign(c, h);
                            continue 'comp;
                        }
                    }
                    return Err(AlgoError::NoFeasibleDeployment);
                }
                d
            }
        };

        let mut evaluations = 0u64;
        let mut convergence = Vec::new();
        for round in 0..self.max_rounds {
            let mut moved = false;
            // Auction scheduling: a host may conduct an auction only if no
            // host it is aware of already conducted one this round.
            let mut conducted: BTreeSet<HostId> = BTreeSet::new();
            for &auctioneer in &hosts {
                let aware = awareness.aware_of(auctioneer);
                if aware.iter().any(|a| conducted.contains(a)) {
                    continue;
                }
                conducted.insert(auctioneer);

                for c in current.components_on(auctioneer) {
                    // Retention value: the auctioneer's own bid.
                    let retention =
                        Self::bid(model, &awareness, &current, auctioneer, c).unwrap_or(0.0);
                    // Collect bids from aware peers that could legally host c.
                    let mut without_c = current.clone();
                    without_c.unassign(c);
                    let mut bids: Vec<(HostId, f64)> = Vec::new();
                    for &bidder in aware.iter().filter(|&&b| b != auctioneer) {
                        if !constraints.admits(model, &without_c, c, bidder) {
                            continue;
                        }
                        if let Some(b) = Self::bid(model, &awareness, &current, bidder, c) {
                            bids.push((bidder, b));
                        }
                    }
                    if let Some((winner, bid)) = AuctionProtocol::winner(&bids) {
                        if bid > retention {
                            let mut candidate = current.clone();
                            candidate.assign(c, winner);
                            if constraints.check(model, &candidate).is_ok() {
                                current = candidate;
                                moved = true;
                            }
                        }
                    }
                }
            }
            evaluations += 1;
            convergence.push((round as u64 + 1, objective.evaluate(model, &current)));
            let widened = match self.exchange {
                MonitoringExchange::None => false,
                MonitoringExchange::Gossip { hops } => {
                    Self::gossip_graph(&mut awareness, &hosts, hops)
                }
            };
            // A widened view can unlock auctions that had no visible bidder,
            // so only stop once both the deployment and the views are stable.
            if !moved && !widened {
                break;
            }
        }

        let value = objective.evaluate(model, &current);
        let (deployment, value) = keep_best(
            model,
            objective,
            constraints,
            initial,
            Some((current, value)),
        )
        .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: evaluations,
            delta_evaluations: 0,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn generated(seed: u64) -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(5, 15).with_seed(seed)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn produces_valid_deployments() {
        let (m, init) = generated(1);
        let r = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        r.deployment.validate(&m).unwrap();
        m.constraints().check(&m, &r.deployment).unwrap();
    }

    #[test]
    fn improves_availability_over_the_initial_deployment() {
        let (m, init) = generated(2);
        let before = Availability.evaluate(&m, &init);
        let r = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert!(
            r.value >= before - 1e-12,
            "decap {} vs initial {before}",
            r.value
        );
    }

    #[test]
    fn moves_chatty_components_together() {
        let mut m = DeploymentModel::new();
        let h0 = m.add_host("h0").unwrap();
        let h1 = m.add_host("h1").unwrap();
        m.set_physical_link(h0, h1, |l| l.set_reliability(0.4))
            .unwrap();
        let a = m.add_component("a").unwrap();
        let b = m.add_component("b").unwrap();
        m.set_logical_link(a, b, |l| l.set_frequency(10.0)).unwrap();
        let split: Deployment = [(a, h0), (b, h1)].into_iter().collect();
        let r = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&split))
            .unwrap();
        assert!(r.deployment.collocated(a, b), "{}", r.deployment);
        assert_eq!(r.value, 1.0);
    }

    #[test]
    fn zero_awareness_means_no_moves() {
        let (m, init) = generated(3);
        let isolated = AwarenessGraph::isolated(m.host_ids());
        let r = DecApAlgorithm::new()
            .with_awareness(isolated)
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        // No host can see any peer: the deployment cannot change.
        assert_eq!(r.deployment, init);
    }

    #[test]
    fn full_awareness_is_at_least_as_good_as_low_awareness() {
        let (m, init) = generated(4);
        let hosts = m.host_ids();
        let low = DecApAlgorithm::new()
            .with_awareness(AwarenessGraph::random(&hosts, 0.3, 1))
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        let full = DecApAlgorithm::new()
            .with_awareness(AwarenessGraph::complete(hosts))
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert!(
            full.value >= low.value - 0.05,
            "full {} low {}",
            full.value,
            low.value
        );
    }

    #[test]
    fn is_deterministic() {
        let (m, init) = generated(5);
        let a = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        let b = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert_eq!(a.deployment, b.deployment);
    }

    #[test]
    fn compiled_and_naive_paths_pick_the_same_deployment() {
        use redep_model::Uncompiled;
        for seed in [1u64, 2, 3, 4, 5] {
            let (m, init) = generated(seed);
            let fast = DecApAlgorithm::new()
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            let slow = DecApAlgorithm::new()
                .run(&m, &Uncompiled(&Availability), m.constraints(), Some(&init))
                .unwrap();
            assert_eq!(fast.deployment, slow.deployment, "seed {seed}");
            assert_eq!(fast.value, slow.value, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one auction round")]
    fn zero_rounds_panics() {
        let _ = DecApAlgorithm::new().with_max_rounds(0);
    }

    #[test]
    fn gossip_never_helps_isolated_hosts() {
        // Gossip forwards what peers observed; an isolated host has no
        // peers, so even with exchange enabled the deployment cannot change.
        let (m, init) = generated(3);
        let isolated = AwarenessGraph::isolated(m.host_ids());
        let r = DecApAlgorithm::new()
            .with_awareness(isolated)
            .with_exchange(MonitoringExchange::Gossip { hops: 2 })
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert_eq!(r.deployment, init);
    }

    #[test]
    fn gossip_recovers_low_awareness_quality() {
        // With gossip the partial views widen to the connected closure, so a
        // sparse awareness graph must converge to at least the static result.
        for seed in [4u64, 7, 11] {
            let (m, init) = generated(seed);
            let hosts = m.host_ids();
            let sparse = AwarenessGraph::random(&hosts, 0.3, 1);
            let stat = DecApAlgorithm::new()
                .with_awareness(sparse.clone())
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            let gossiped = DecApAlgorithm::new()
                .with_awareness(sparse)
                .with_exchange(MonitoringExchange::Gossip { hops: 1 })
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            assert!(
                gossiped.value >= stat.value - 1e-12,
                "seed {seed}: gossip {} < static {}",
                gossiped.value,
                stat.value
            );
        }
    }

    #[test]
    fn gossip_matches_between_naive_and_compiled_paths() {
        use redep_model::Uncompiled;
        for seed in [1u64, 2, 3] {
            let (m, init) = generated(seed);
            let sparse = AwarenessGraph::random(&m.host_ids(), 0.4, seed);
            let fast = DecApAlgorithm::new()
                .with_awareness(sparse.clone())
                .with_exchange(MonitoringExchange::Gossip { hops: 1 })
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            let slow = DecApAlgorithm::new()
                .with_awareness(sparse)
                .with_exchange(MonitoringExchange::Gossip { hops: 1 })
                .run(&m, &Uncompiled(&Availability), m.constraints(), Some(&init))
                .unwrap();
            assert_eq!(fast.deployment, slow.deployment, "seed {seed}");
            assert_eq!(fast.value, slow.value, "seed {seed}");
        }
    }

    #[test]
    fn hierarchical_produces_valid_deployments_and_counters() {
        let s = Generator::generate(&GeneratorConfig::sized(12, 40).with_seed(9)).unwrap();
        let r = DecApAlgorithm::new()
            .with_hierarchy(HierarchicalConfig::default())
            .with_exchange(MonitoringExchange::Gossip { hops: 1 })
            .run(
                &s.model,
                &Availability,
                s.model.constraints(),
                Some(&s.initial),
            )
            .unwrap();
        assert_eq!(r.algorithm, "decap-h");
        r.deployment.validate(&s.model).unwrap();
        s.model
            .constraints()
            .check(&s.model, &r.deployment)
            .unwrap();
        assert!(r.hierarchy_clusters > 0);
        assert!(r.refine_rounds > 0);
        let before = Availability.evaluate(&s.model, &s.initial);
        assert!(r.value >= before - 1e-12, "{} vs {before}", r.value);
    }

    #[test]
    fn hierarchical_is_thread_invariant() {
        let s = Generator::generate(&GeneratorConfig::sized(12, 40).with_seed(10)).unwrap();
        let run = |threads: usize| {
            DecApAlgorithm::new()
                .with_hierarchy(HierarchicalConfig {
                    threads,
                    ..HierarchicalConfig::default()
                })
                .with_exchange(MonitoringExchange::Gossip { hops: 1 })
                .run(
                    &s.model,
                    &Availability,
                    s.model.constraints(),
                    Some(&s.initial),
                )
                .unwrap()
        };
        let one = run(1);
        for threads in [2, 8] {
            let many = run(threads);
            assert_eq!(one.deployment, many.deployment, "threads {threads}");
            assert_eq!(one.value, many.value, "threads {threads}");
            assert_eq!(one.evaluations, many.evaluations, "threads {threads}");
            assert_eq!(
                one.pruned_evaluations, many.pruned_evaluations,
                "threads {threads}"
            );
        }
    }
}
