//! DecAp: the decentralized auction-based redeployment algorithm (§5.2).
//!
//! "In DecAp, each Decentralized Algorithm component acts as an agent and
//! may conduct or participate in auctions. Each host's agent initiates an
//! auction for the redeployment of its local components, assuming none of
//! its neighboring (i.e., connected) hosts is already conducting an auction.
//! […] The bidding agent on a given host calculates an initial bid for the
//! auctioned component, by considering the frequency and volume of
//! interaction between components on its host and the auctioned component.
//! […] The host with the highest bid is selected as the winner and the
//! component is redeployed to it. The complexity of this algorithm is
//! O(k·n³)."
//!
//! The implementation emulates the auction protocol deterministically over
//! [`AwarenessGraph`] partial views: every bid is computed from what the
//! bidder can actually see, never from global knowledge, so results degrade
//! gracefully with lower awareness (experiment E9 sweeps this).
//!
//! On the compiled path the partial views are never materialized: a bid is
//! an incident-link sum over the [`redep_model::CompiledModel`] CSR index,
//! masked by a precomputed host-visibility matrix. This skips the per-bid
//! submodel clone entirely while producing the same bids term for term.

use crate::compiled::{try_compile, Compiled};
use crate::coordination::AuctionProtocol;
use crate::traits::{keep_best, preflight, AlgoError, AlgoResult, RedeploymentAlgorithm};
use redep_model::{
    AwarenessGraph, ComponentId, ConstraintChecker, Deployment, DeploymentModel, HostId,
    IncrementalScore, Objective, UNASSIGNED,
};
use std::collections::BTreeSet;
use std::time::Instant;

/// The decentralized auction algorithm.
#[derive(Clone, PartialEq, Debug)]
pub struct DecApAlgorithm {
    max_rounds: usize,
    awareness: Option<AwarenessGraph>,
}

impl Default for DecApAlgorithm {
    fn default() -> Self {
        DecApAlgorithm::new()
    }
}

impl DecApAlgorithm {
    /// Default bound on auction rounds.
    pub const DEFAULT_MAX_ROUNDS: usize = 10;

    /// Creates the algorithm; awareness defaults to the model's physical
    /// connectivity (each host knows its direct neighbors), per the paper.
    pub fn new() -> Self {
        DecApAlgorithm {
            max_rounds: Self::DEFAULT_MAX_ROUNDS,
            awareness: None,
        }
    }

    /// Uses an explicit awareness graph instead of physical connectivity.
    pub fn with_awareness(mut self, awareness: AwarenessGraph) -> Self {
        self.awareness = Some(awareness);
        self
    }

    /// Bounds the number of auction rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        assert!(rounds > 0, "at least one auction round is required");
        self.max_rounds = rounds;
        self
    }

    /// A host's valuation of holding component `c`, computed strictly from
    /// its own partial view: interactions with `c` that would become local
    /// count fully; interactions with visible components elsewhere count at
    /// the connecting link's reliability.
    fn bid(
        model: &DeploymentModel,
        awareness: &AwarenessGraph,
        deployment: &Deployment,
        bidder: HostId,
        c: ComponentId,
    ) -> Option<f64> {
        let view = awareness.partial_view(model, deployment, bidder).ok()?;
        if !view.model.contains_component(c) {
            return None; // cannot even see the auctioned component
        }
        let mut value = 0.0;
        for d in view.model.logical_neighbors(c) {
            let freq = view.model.frequency(c, d);
            let size = view.model.event_size(c, d);
            let volume = freq * size;
            match view.deployment.host_of(d) {
                Some(hd) if hd == bidder => value += volume, // would be local
                Some(hd) => value += volume * view.model.reliability(bidder, hd),
                None => {}
            }
        }
        Some(value)
    }

    /// The same valuation on dense indices: the submodel a bidder would see
    /// is implied by the visibility mask, so the bid reduces to a masked
    /// incident-link sum (neighbors enumerate in ascending order, exactly as
    /// the partial view's neighbor walk does).
    fn bid_compiled(
        c: &Compiled,
        visible: &[Vec<bool>],
        assign: &[u32],
        bidder: u32,
        comp: u32,
    ) -> Option<f64> {
        let hc = assign[comp as usize];
        if hc == UNASSIGNED || !visible[bidder as usize][hc as usize] {
            return None; // cannot even see the auctioned component
        }
        let cm = &c.model;
        let mut value = 0.0;
        for &li in cm.incident(comp) {
            let l = &cm.links()[li as usize];
            let d = l.other(comp);
            let hd = assign[d as usize];
            if hd == UNASSIGNED || !visible[bidder as usize][hd as usize] {
                continue; // neighbor outside the bidder's view
            }
            if hd == bidder {
                value += l.volume; // would be local
            } else {
                value += l.volume * cm.reliability(bidder, hd);
            }
        }
        Some(value)
    }

    #[allow(clippy::too_many_arguments)] // internal: mirrors the naive body's precomputed inputs
    fn run_compiled(
        &self,
        c: &Compiled,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
        awareness: &AwarenessGraph,
        started: Instant,
    ) -> Result<AlgoResult, AlgoError> {
        let cm = &c.model;
        let n_hosts = cm.n_hosts();
        let n_comps = cm.n_comps();
        let host_ids = cm.host_ids();

        // Precompute the visibility mask and per-host awareness lists once
        // (hosts outside the model cannot bid or conduct, so they drop out).
        let visible: Vec<Vec<bool>> = (0..n_hosts)
            .map(|a| {
                (0..n_hosts)
                    .map(|b| awareness.is_aware(host_ids[a], host_ids[b]))
                    .collect()
            })
            .collect();
        let aware_dense: Vec<Vec<u32>> = (0..n_hosts)
            .map(|a| {
                awareness
                    .aware_of(host_ids[a])
                    .iter()
                    .filter_map(|&h| cm.host_index(h))
                    .collect()
            })
            .collect();

        // DecAp improves a *running* deployment; without one, start from a
        // deterministic first-fit.
        let mut assign: Vec<u32> = match initial {
            Some(d) if constraints.check(model, d).is_ok() => cm.compile_assignment(d),
            _ => {
                let mut a = vec![UNASSIGNED; n_comps];
                'comp: for ci in 0..n_comps as u32 {
                    for h in 0..n_hosts as u32 {
                        if c.constraints.admits(&a, ci, h) {
                            a[ci as usize] = h;
                            continue 'comp;
                        }
                    }
                    return Err(AlgoError::NoFeasibleDeployment);
                }
                a
            }
        };

        let mut inc = IncrementalScore::new(cm, &c.objective);
        let mut evaluations = 0u64;
        let mut convergence = Vec::new();
        let mut last_value = f64::NAN;
        for round in 0..self.max_rounds {
            let mut moved = false;
            // Auction scheduling: a host may conduct an auction only if no
            // host it is aware of already conducted one this round.
            let mut conducted = vec![false; n_hosts];
            for auctioneer in 0..n_hosts as u32 {
                let aware = &aware_dense[auctioneer as usize];
                if aware.iter().any(|&a| conducted[a as usize]) {
                    continue;
                }
                conducted[auctioneer as usize] = true;

                let on_auctioneer: Vec<u32> = (0..n_comps as u32)
                    .filter(|&ci| assign[ci as usize] == auctioneer)
                    .collect();
                for comp in on_auctioneer {
                    // Retention value: the auctioneer's own bid.
                    let retention =
                        Self::bid_compiled(c, &visible, &assign, auctioneer, comp).unwrap_or(0.0);
                    // Collect bids from aware peers that could legally host
                    // the component (admissibility judged with it lifted out).
                    let mut bids: Vec<(u32, f64)> = Vec::new();
                    for &bidder in aware.iter().filter(|&&b| b != auctioneer) {
                        assign[comp as usize] = UNASSIGNED;
                        let admissible = c.constraints.admits(&assign, comp, bidder);
                        assign[comp as usize] = auctioneer;
                        if !admissible {
                            continue;
                        }
                        if let Some(b) = Self::bid_compiled(c, &visible, &assign, bidder, comp) {
                            bids.push((bidder, b));
                        }
                    }
                    // Highest bid wins; lowest host index breaks ties
                    // (the auction protocol's rule on dense indices).
                    let winner = bids.iter().copied().reduce(|best, cand| {
                        if cand.1 > best.1 || (cand.1 == best.1 && cand.0 < best.0) {
                            cand
                        } else {
                            best
                        }
                    });
                    if let Some((winner, bid)) = winner {
                        if bid > retention {
                            assign[comp as usize] = winner;
                            if c.constraints.check(&assign) {
                                moved = true;
                            } else {
                                assign[comp as usize] = auctioneer;
                            }
                        }
                    }
                }
            }
            evaluations += 1;
            last_value = inc.assign_from(&assign);
            convergence.push((round as u64 + 1, last_value));
            if !moved {
                break;
            }
        }

        let full = inc.full_evaluations();
        let delta = inc.delta_evaluations();
        let candidate = Some((cm.decode_assignment(&assign), last_value));
        let (deployment, value) = keep_best(model, objective, constraints, initial, candidate)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: full,
            delta_evaluations: delta,
        })
    }
}

impl RedeploymentAlgorithm for DecApAlgorithm {
    fn name(&self) -> &str {
        "decap"
    }

    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError> {
        let started = Instant::now();
        let (hosts, _components) = preflight(model)?;
        let awareness = self
            .awareness
            .clone()
            .unwrap_or_else(|| AwarenessGraph::from_connectivity(model));

        if let Some(c) = try_compile(model, objective, constraints) {
            return self.run_compiled(
                &c,
                model,
                objective,
                constraints,
                initial,
                &awareness,
                started,
            );
        }

        // DecAp improves a *running* deployment; without one, start from a
        // deterministic first-fit.
        let mut current = match initial {
            Some(d) if constraints.check(model, d).is_ok() => d.clone(),
            _ => {
                let mut d = Deployment::new();
                'comp: for c in model.component_ids() {
                    for &h in &hosts {
                        if constraints.admits(model, &d, c, h) {
                            d.assign(c, h);
                            continue 'comp;
                        }
                    }
                    return Err(AlgoError::NoFeasibleDeployment);
                }
                d
            }
        };

        let mut evaluations = 0u64;
        let mut convergence = Vec::new();
        for round in 0..self.max_rounds {
            let mut moved = false;
            // Auction scheduling: a host may conduct an auction only if no
            // host it is aware of already conducted one this round.
            let mut conducted: BTreeSet<HostId> = BTreeSet::new();
            for &auctioneer in &hosts {
                let aware = awareness.aware_of(auctioneer);
                if aware.iter().any(|a| conducted.contains(a)) {
                    continue;
                }
                conducted.insert(auctioneer);

                for c in current.components_on(auctioneer) {
                    // Retention value: the auctioneer's own bid.
                    let retention =
                        Self::bid(model, &awareness, &current, auctioneer, c).unwrap_or(0.0);
                    // Collect bids from aware peers that could legally host c.
                    let mut without_c = current.clone();
                    without_c.unassign(c);
                    let mut bids: Vec<(HostId, f64)> = Vec::new();
                    for &bidder in aware.iter().filter(|&&b| b != auctioneer) {
                        if !constraints.admits(model, &without_c, c, bidder) {
                            continue;
                        }
                        if let Some(b) = Self::bid(model, &awareness, &current, bidder, c) {
                            bids.push((bidder, b));
                        }
                    }
                    if let Some((winner, bid)) = AuctionProtocol::winner(&bids) {
                        if bid > retention {
                            let mut candidate = current.clone();
                            candidate.assign(c, winner);
                            if constraints.check(model, &candidate).is_ok() {
                                current = candidate;
                                moved = true;
                            }
                        }
                    }
                }
            }
            evaluations += 1;
            convergence.push((round as u64 + 1, objective.evaluate(model, &current)));
            if !moved {
                break;
            }
        }

        let value = objective.evaluate(model, &current);
        let (deployment, value) = keep_best(
            model,
            objective,
            constraints,
            initial,
            Some((current, value)),
        )
        .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: evaluations,
            delta_evaluations: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn generated(seed: u64) -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(5, 15).with_seed(seed)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn produces_valid_deployments() {
        let (m, init) = generated(1);
        let r = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        r.deployment.validate(&m).unwrap();
        m.constraints().check(&m, &r.deployment).unwrap();
    }

    #[test]
    fn improves_availability_over_the_initial_deployment() {
        let (m, init) = generated(2);
        let before = Availability.evaluate(&m, &init);
        let r = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert!(
            r.value >= before - 1e-12,
            "decap {} vs initial {before}",
            r.value
        );
    }

    #[test]
    fn moves_chatty_components_together() {
        let mut m = DeploymentModel::new();
        let h0 = m.add_host("h0").unwrap();
        let h1 = m.add_host("h1").unwrap();
        m.set_physical_link(h0, h1, |l| l.set_reliability(0.4))
            .unwrap();
        let a = m.add_component("a").unwrap();
        let b = m.add_component("b").unwrap();
        m.set_logical_link(a, b, |l| l.set_frequency(10.0)).unwrap();
        let split: Deployment = [(a, h0), (b, h1)].into_iter().collect();
        let r = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&split))
            .unwrap();
        assert!(r.deployment.collocated(a, b), "{}", r.deployment);
        assert_eq!(r.value, 1.0);
    }

    #[test]
    fn zero_awareness_means_no_moves() {
        let (m, init) = generated(3);
        let isolated = AwarenessGraph::isolated(m.host_ids());
        let r = DecApAlgorithm::new()
            .with_awareness(isolated)
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        // No host can see any peer: the deployment cannot change.
        assert_eq!(r.deployment, init);
    }

    #[test]
    fn full_awareness_is_at_least_as_good_as_low_awareness() {
        let (m, init) = generated(4);
        let hosts = m.host_ids();
        let low = DecApAlgorithm::new()
            .with_awareness(AwarenessGraph::random(&hosts, 0.3, 1))
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        let full = DecApAlgorithm::new()
            .with_awareness(AwarenessGraph::complete(hosts))
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert!(
            full.value >= low.value - 0.05,
            "full {} low {}",
            full.value,
            low.value
        );
    }

    #[test]
    fn is_deterministic() {
        let (m, init) = generated(5);
        let a = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        let b = DecApAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert_eq!(a.deployment, b.deployment);
    }

    #[test]
    fn compiled_and_naive_paths_pick_the_same_deployment() {
        use redep_model::Uncompiled;
        for seed in [1u64, 2, 3, 4, 5] {
            let (m, init) = generated(seed);
            let fast = DecApAlgorithm::new()
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            let slow = DecApAlgorithm::new()
                .run(&m, &Uncompiled(&Availability), m.constraints(), Some(&init))
                .unwrap();
            assert_eq!(fast.deployment, slow.deployment, "seed {seed}");
            assert_eq!(fast.value, slow.value, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one auction round")]
    fn zero_rounds_panics() {
        let _ = DecApAlgorithm::new().with_max_rounds(0);
    }
}
