//! The Stochastic algorithm: repeated randomized first-fit.
//!
//! "The Stochastic algorithm randomly orders all the hosts and all the
//! components. Then, going in order, it assigns as many components to a
//! given host as can fit on that host, ensuring that all of the constraints
//! are satisfied. […] This process is repeated a desired number of times,
//! and the best obtained deployment is selected." (§5.1)

use crate::traits::{keep_best, preflight, AlgoError, AlgoResult, RedeploymentAlgorithm};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use redep_model::{ConstraintChecker, Deployment, DeploymentModel, Objective};
use std::time::Instant;

/// Randomized first-fit, repeated `iterations` times; O(n²) per iteration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StochasticAlgorithm {
    iterations: u32,
    seed: u64,
}

impl Default for StochasticAlgorithm {
    fn default() -> Self {
        StochasticAlgorithm::new()
    }
}

impl StochasticAlgorithm {
    /// Default number of randomized placements tried.
    pub const DEFAULT_ITERATIONS: u32 = 100;

    /// Creates the algorithm with the default iteration count and seed 0.
    pub fn new() -> Self {
        StochasticAlgorithm {
            iterations: Self::DEFAULT_ITERATIONS,
            seed: 0,
        }
    }

    /// Creates the algorithm with explicit iterations and seed.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn with_config(iterations: u32, seed: u64) -> Self {
        assert!(iterations > 0, "at least one iteration is required");
        StochasticAlgorithm { iterations, seed }
    }
}

impl RedeploymentAlgorithm for StochasticAlgorithm {
    fn name(&self) -> &str {
        "stochastic"
    }

    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError> {
        let started = Instant::now();
        let (hosts, components) = preflight(model)?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut best: Option<(Deployment, f64)> = None;
        let mut evaluations = 0;
        let mut convergence = Vec::new();

        let mut host_order = hosts.clone();
        let mut comp_order = components.clone();
        for _ in 0..self.iterations {
            host_order.shuffle(&mut rng);
            comp_order.shuffle(&mut rng);
            let mut d = Deployment::new();
            let mut remaining = comp_order.clone();
            for &h in &host_order {
                // Fill this host with as many of the remaining components
                // as fit, in their random order.
                remaining.retain(|&c| {
                    if constraints.admits(model, &d, c, h) {
                        d.assign(c, h);
                        false
                    } else {
                        true
                    }
                });
            }
            if !remaining.is_empty() || constraints.check(model, &d).is_err() {
                continue;
            }
            evaluations += 1;
            let value = objective.evaluate(model, &d);
            let improved = match &best {
                Some((_, bv)) => objective.is_improvement(*bv, value),
                None => true,
            };
            if improved {
                best = Some((d, value));
                convergence.push((evaluations, value));
            }
        }

        let (deployment, value) = keep_best(model, objective, constraints, initial, best)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn generated() -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(5)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn produces_valid_deployments() {
        let (m, init) = generated();
        let r = StochasticAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        r.deployment.validate(&m).unwrap();
        m.constraints().check(&m, &r.deployment).unwrap();
    }

    #[test]
    fn never_regresses_below_the_initial_deployment() {
        let (m, init) = generated();
        let before = Availability.evaluate(&m, &init);
        let r = StochasticAlgorithm::with_config(1, 9)
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert!(r.value >= before - 1e-12);
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let (m, _) = generated();
        let few = StochasticAlgorithm::with_config(2, 3)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        let many = StochasticAlgorithm::with_config(200, 3)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert!(many.value >= few.value - 1e-12);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let (m, _) = generated();
        let a = StochasticAlgorithm::with_config(50, 7)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        let b = StochasticAlgorithm::with_config(50, 7)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn evaluations_count_feasible_placements_only() {
        let (m, _) = generated();
        let r = StochasticAlgorithm::with_config(50, 1)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert!(r.evaluations <= 50);
        assert!(r.evaluations > 0);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let _ = StochasticAlgorithm::with_config(0, 0);
    }
}
