//! The Stochastic algorithm: repeated randomized first-fit.
//!
//! "The Stochastic algorithm randomly orders all the hosts and all the
//! components. Then, going in order, it assigns as many components to a
//! given host as can fit on that host, ensuring that all of the constraints
//! are satisfied. […] This process is repeated a desired number of times,
//! and the best obtained deployment is selected." (§5.1)

use crate::compiled::{try_compile, Compiled};
use crate::hierarchy::{coarse_random, finish_hierarchical, run_hierarchical, HierarchicalConfig};
use crate::parallel::{run_shards, shard_seed};
use crate::traits::{
    keep_best, keep_best_compiled, preflight, AlgoError, AlgoResult, RedeploymentAlgorithm,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use redep_model::UNASSIGNED;
use redep_model::{ConstraintChecker, Deployment, DeploymentModel, IncrementalScore, Objective};
use std::time::Instant;

/// Randomized first-fit, repeated `iterations` times; O(n²) per iteration.
///
/// When the objective and constraints compile ([`Objective::compiled`],
/// [`ConstraintChecker::compile`]), placements run on dense indices and are
/// scored through [`IncrementalScore`]; the iterations can additionally be
/// split into parallel shards with [`with_parallelism`](Self::with_parallelism).
/// Results are identical to the sequential naive path for the same
/// configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StochasticAlgorithm {
    iterations: u32,
    seed: u64,
    shards: u32,
    threads: u32,
    hierarchy: Option<HierarchicalConfig>,
}

impl Default for StochasticAlgorithm {
    fn default() -> Self {
        StochasticAlgorithm::new()
    }
}

impl StochasticAlgorithm {
    /// Default number of randomized placements tried.
    pub const DEFAULT_ITERATIONS: u32 = 100;

    /// Creates the algorithm with the default iteration count and seed 0.
    pub fn new() -> Self {
        StochasticAlgorithm {
            iterations: Self::DEFAULT_ITERATIONS,
            seed: 0,
            shards: 1,
            threads: 1,
            hierarchy: None,
        }
    }

    /// Creates the algorithm with explicit iterations and seed.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn with_config(iterations: u32, seed: u64) -> Self {
        assert!(iterations > 0, "at least one iteration is required");
        StochasticAlgorithm {
            iterations,
            seed,
            shards: 1,
            threads: 1,
            hierarchy: None,
        }
    }

    /// Splits the iterations into `shards` independent restarts (each with a
    /// fixed seed stream derived from the configured seed) executed on up to
    /// `threads` worker threads. The result is a pure function of
    /// `(iterations, seed, shards)` — any thread count produces the same
    /// deployment and value. Zero values are clamped to 1. Sharding requires
    /// the compiled path; with a non-compilable objective or checker the
    /// algorithm falls back to the sequential naive body.
    pub fn with_parallelism(mut self, shards: u32, threads: u32) -> Self {
        self.shards = shards.max(1);
        self.threads = threads.max(1);
        self
    }

    /// Runs the hierarchical variant (`stochastic-h`): seeded random
    /// first-fit over super-node clusters (a handful of shuffles of the
    /// coarse problem), then frontier-pruned refinement within each cluster
    /// in parallel. Requires the compiled path; a non-compilable objective
    /// or checker falls back to the flat naive body.
    pub fn with_hierarchy(mut self, config: HierarchicalConfig) -> Self {
        self.hierarchy = Some(config);
        self
    }
}

/// Per-shard search outcome on the compiled path.
struct ShardOutcome {
    best: Option<(Vec<u32>, f64)>,
    evaluations: u64,
    full: u64,
    delta: u64,
    trace: Vec<(u64, f64)>,
}

impl StochasticAlgorithm {
    fn run_compiled(
        &self,
        c: &Compiled,
        objective: &dyn Objective,
        initial: Option<&Deployment>,
        started: Instant,
    ) -> Result<AlgoResult, AlgoError> {
        let cm = &c.model;
        let n_hosts = cm.n_hosts() as u32;
        let n_comps = cm.n_comps() as u32;
        let shards = self.shards;
        // Iterations split round-robin so shard 0 with `shards == 1` replays
        // the sequential run exactly.
        let per_shard: Vec<u32> = (0..shards)
            .map(|s| self.iterations / shards + u32::from(s < self.iterations % shards))
            .collect();

        let outcomes = run_shards(shards, self.threads, |shard| {
            let mut rng = ChaCha8Rng::seed_from_u64(shard_seed(self.seed, shard));
            let mut inc = IncrementalScore::new(cm, &c.objective);
            let mut assign = vec![UNASSIGNED; n_comps as usize];
            let mut host_order: Vec<u32> = (0..n_hosts).collect();
            let mut comp_order: Vec<u32> = (0..n_comps).collect();
            let mut remaining: Vec<u32> = Vec::with_capacity(n_comps as usize);
            let mut best: Option<(Vec<u32>, f64)> = None;
            let mut evaluations = 0u64;
            let mut trace = Vec::new();
            for _ in 0..per_shard[shard as usize] {
                host_order.shuffle(&mut rng);
                comp_order.shuffle(&mut rng);
                assign.fill(UNASSIGNED);
                remaining.clear();
                remaining.extend_from_slice(&comp_order);
                for &h in &host_order {
                    // Fill this host with as many of the remaining
                    // components as fit, in their random order.
                    remaining.retain(|&comp| {
                        if c.constraints.admits(&assign, comp, h) {
                            assign[comp as usize] = h;
                            false
                        } else {
                            true
                        }
                    });
                }
                if !remaining.is_empty() || !c.constraints.check(&assign) {
                    continue;
                }
                evaluations += 1;
                let value = inc.assign_from(&assign);
                let improved = match &best {
                    Some((_, bv)) => c.objective.is_improvement(*bv, value),
                    None => true,
                };
                if improved {
                    best = Some((assign.clone(), value));
                    trace.push((evaluations, value));
                }
            }
            ShardOutcome {
                best,
                evaluations,
                full: inc.full_evaluations(),
                delta: inc.delta_evaluations(),
                trace,
            }
        });

        // Merge in shard order with a strict-improvement rule, so the lowest
        // shard wins ties and the outcome is independent of thread count.
        let mut best: Option<(Vec<u32>, f64)> = None;
        let mut evaluations = 0u64;
        let mut full = 0u64;
        let mut delta = 0u64;
        let mut convergence = Vec::new();
        for o in outcomes {
            evaluations += o.evaluations;
            full += o.full;
            delta += o.delta;
            if let Some((a, v)) = o.best {
                let take = match &best {
                    Some((_, bv)) => c.objective.is_improvement(*bv, v),
                    None => true,
                };
                if take {
                    best = Some((a, v));
                    convergence = o.trace;
                }
            }
        }

        let candidate = best.map(|(a, v)| (cm.decode_assignment(&a), v));
        let (deployment, value) = keep_best_compiled(c, objective, initial, candidate)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: full,
            delta_evaluations: delta,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

impl RedeploymentAlgorithm for StochasticAlgorithm {
    fn name(&self) -> &str {
        if self.hierarchy.is_some() {
            "stochastic-h"
        } else {
            "stochastic"
        }
    }

    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError> {
        let started = Instant::now();
        let (hosts, components) = preflight(model)?;
        if let Some(c) = try_compile(model, objective, constraints) {
            if let Some(hcfg) = &self.hierarchy {
                let (seed, iters) = (self.seed, self.iterations.min(16));
                let out = run_hierarchical(&c, hcfg, |cc| coarse_random(cc, seed, iters))?;
                return finish_hierarchical(&c, objective, initial, started, self.name(), out);
            }
            return self.run_compiled(&c, objective, initial, started);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut best: Option<(Deployment, f64)> = None;
        let mut evaluations = 0;
        let mut convergence = Vec::new();

        let mut host_order = hosts.clone();
        let mut comp_order = components.clone();
        let mut remaining = Vec::with_capacity(comp_order.len());
        for _ in 0..self.iterations {
            host_order.shuffle(&mut rng);
            comp_order.shuffle(&mut rng);
            let mut d = Deployment::new();
            remaining.clear();
            remaining.extend_from_slice(&comp_order);
            for &h in &host_order {
                // Fill this host with as many of the remaining components
                // as fit, in their random order.
                remaining.retain(|&c| {
                    if constraints.admits(model, &d, c, h) {
                        d.assign(c, h);
                        false
                    } else {
                        true
                    }
                });
            }
            if !remaining.is_empty() || constraints.check(model, &d).is_err() {
                continue;
            }
            evaluations += 1;
            let value = objective.evaluate(model, &d);
            let improved = match &best {
                Some((_, bv)) => objective.is_improvement(*bv, value),
                None => true,
            };
            if improved {
                best = Some((d, value));
                convergence.push((evaluations, value));
            }
        }

        let (deployment, value) = keep_best(model, objective, constraints, initial, best)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: evaluations,
            delta_evaluations: 0,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn generated() -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(4, 12).with_seed(5)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn produces_valid_deployments() {
        let (m, init) = generated();
        let r = StochasticAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        r.deployment.validate(&m).unwrap();
        m.constraints().check(&m, &r.deployment).unwrap();
    }

    #[test]
    fn never_regresses_below_the_initial_deployment() {
        let (m, init) = generated();
        let before = Availability.evaluate(&m, &init);
        let r = StochasticAlgorithm::with_config(1, 9)
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert!(r.value >= before - 1e-12);
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let (m, _) = generated();
        let few = StochasticAlgorithm::with_config(2, 3)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        let many = StochasticAlgorithm::with_config(200, 3)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert!(many.value >= few.value - 1e-12);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let (m, _) = generated();
        let a = StochasticAlgorithm::with_config(50, 7)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        let b = StochasticAlgorithm::with_config(50, 7)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn evaluations_count_feasible_placements_only() {
        let (m, _) = generated();
        let r = StochasticAlgorithm::with_config(50, 1)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert!(r.evaluations <= 50);
        assert!(r.evaluations > 0);
        assert_eq!(r.full_evaluations, r.evaluations);
        assert_eq!(r.delta_evaluations, 0);
    }

    #[test]
    fn sharded_runs_are_thread_count_invariant() {
        let (m, init) = generated();
        let base = StochasticAlgorithm::with_config(60, 11).with_parallelism(8, 1);
        let reference = base
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        for threads in [2u32, 8] {
            let r = StochasticAlgorithm::with_config(60, 11)
                .with_parallelism(8, threads)
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            assert_eq!(r.deployment, reference.deployment, "threads = {threads}");
            assert_eq!(r.value, reference.value, "threads = {threads}");
            assert_eq!(r.evaluations, reference.evaluations, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let _ = StochasticAlgorithm::with_config(0, 0);
    }
}
