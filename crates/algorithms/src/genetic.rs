//! A genetic algorithm body.
//!
//! DeSi's algorithm-development methodology (Figure 7) names "genetic
//! algorithm" alongside "greedy algorithm" as a possible main body; this is
//! that body, composed with the same objective and constraint variation
//! points as every other algorithm in the crate.

use crate::compiled::{try_compile, Compiled};
use crate::parallel::{run_shards, shard_seed};
use crate::traits::{
    keep_best, keep_best_compiled, preflight, AlgoError, AlgoResult, RedeploymentAlgorithm,
};
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use redep_model::{
    ComponentId, ConstraintChecker, Deployment, DeploymentModel, HostId, IncrementalScore,
    Objective, UNASSIGNED,
};
use std::time::Instant;

/// Configuration of the genetic search.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GeneticConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of independent islands (multi-start); island `i` evolves on
    /// the fixed seed stream derived from `(seed, i)`, so the merged result
    /// is a pure function of the configuration. Values below 1 are treated
    /// as 1. Islands beyond the first require the compiled path.
    pub shards: u32,
    /// Worker threads the islands run on; any value produces the same
    /// result. Values below 1 are treated as 1.
    pub threads: u32,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 40,
            generations: 60,
            mutation_rate: 0.05,
            tournament: 3,
            seed: 0,
            shards: 1,
            threads: 1,
        }
    }
}

/// Genetic search over deployment chromosomes (one host gene per component).
///
/// Infeasible individuals are repaired where possible and otherwise scored
/// as the objective's worst value, so the population drifts into the
/// feasible region.
///
/// On the compiled path chromosomes are dense `Vec<u32>` assignments scored
/// through [`IncrementalScore::assign_from`]. Fitness stays a pure function
/// of the chromosome (no delta chains across individuals), so duplicated
/// chromosomes always tie exactly and selection matches the naive body
/// bit-for-bit.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct GeneticAlgorithm {
    config: GeneticConfig,
}

impl GeneticAlgorithm {
    /// Creates the algorithm with default parameters.
    pub fn new() -> Self {
        GeneticAlgorithm::default()
    }

    /// Creates the algorithm with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the population or tournament size is zero or the mutation
    /// rate is outside `[0, 1]`.
    pub fn with_config(config: GeneticConfig) -> Self {
        assert!(config.population > 0, "population must be positive");
        assert!(config.tournament > 0, "tournament size must be positive");
        assert!(
            (0.0..=1.0).contains(&config.mutation_rate),
            "mutation rate must be in [0, 1]"
        );
        GeneticAlgorithm { config }
    }

    fn decode(components: &[ComponentId], genes: &[HostId]) -> Deployment {
        components
            .iter()
            .copied()
            .zip(genes.iter().copied())
            .collect()
    }

    fn fitness(
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        components: &[ComponentId],
        genes: &[HostId],
        evaluations: &mut u64,
    ) -> f64 {
        let d = Self::decode(components, genes);
        if constraints.check(model, &d).is_err() {
            return objective.worst();
        }
        *evaluations += 1;
        objective.evaluate(model, &d)
    }

    fn run_compiled(
        &self,
        c: &Compiled,
        model: &DeploymentModel,
        objective: &dyn Objective,
        initial: Option<&Deployment>,
        started: Instant,
    ) -> Result<AlgoResult, AlgoError> {
        let cfg = self.config;
        let cm = &c.model;
        let n_hosts = cm.n_hosts();
        let n_comps = cm.n_comps();

        let init_genes: Option<Vec<u32>> = initial
            .filter(|d| d.validate(model).is_ok())
            .map(|d| cm.compile_assignment(d));

        struct IslandOutcome {
            candidate: Option<(Vec<u32>, f64)>,
            evaluations: u64,
            full: u64,
            delta: u64,
            trace: Vec<(u64, f64)>,
        }

        let island = |shard: u32| -> IslandOutcome {
            let mut rng = ChaCha8Rng::seed_from_u64(shard_seed(cfg.seed, shard));
            let mut inc = IncrementalScore::new(cm, &c.objective);
            let mut evaluations = 0u64;

            // Fitness is a pure function of the chromosome: a from-scratch
            // score, never a delta chain, so equal chromosomes tie exactly.
            let mut score_of = |genes: &[u32], evaluations: &mut u64| -> f64 {
                if !c.constraints.check(genes) {
                    return c.objective.worst();
                }
                *evaluations += 1;
                inc.assign_from(genes)
            };

            // Seed the population: the initial deployment (if valid) plus
            // greedy-feasible random individuals.
            let mut population: Vec<Vec<u32>> = Vec::with_capacity(cfg.population);
            if let Some(genes) = &init_genes {
                population.push(genes.clone());
            }
            while population.len() < cfg.population {
                let mut d = vec![UNASSIGNED; n_comps];
                let genes: Vec<u32> = (0..n_comps)
                    .map(|ci| {
                        // Prefer admissible hosts; fall back to
                        // uniform-random. The fallback is drawn
                        // unconditionally, mirroring the naive body's eager
                        // `unwrap_or` argument, so RNG streams stay aligned.
                        let admissible: Vec<u32> = (0..n_hosts as u32)
                            .filter(|&h| c.constraints.admits(&d, ci as u32, h))
                            .collect();
                        let pick = admissible.choose(&mut rng).copied();
                        let fallback = rng.random_range(0..n_hosts) as u32;
                        let h = pick.unwrap_or(fallback);
                        d[ci] = h;
                        h
                    })
                    .collect();
                population.push(genes);
            }

            let mut scores: Vec<f64> = population
                .iter()
                .map(|g| score_of(g, &mut evaluations))
                .collect();

            let better = |a: f64, b: f64| c.objective.is_improvement(b, a); // a better than b

            let mut trace = Vec::with_capacity(cfg.generations + 1);
            let trace_best = |scores: &[f64], evaluations: u64, trace: &mut Vec<(u64, f64)>| {
                let best = scores
                    .iter()
                    .copied()
                    .reduce(|x, y| {
                        if c.objective.is_improvement(x, y) {
                            y
                        } else {
                            x
                        }
                    })
                    .expect("population non-empty");
                trace.push((evaluations, best));
            };
            trace_best(&scores, evaluations, &mut trace);

            for _ in 0..cfg.generations {
                let mut next: Vec<Vec<u32>> = Vec::with_capacity(cfg.population);
                // Elitism: carry the best individual over.
                let best_idx = (0..population.len())
                    .reduce(|x, y| if better(scores[y], scores[x]) { y } else { x })
                    .expect("population non-empty");
                next.push(population[best_idx].clone());

                while next.len() < cfg.population {
                    let pick = |rng: &mut ChaCha8Rng| {
                        let mut best = rng.random_range(0..population.len());
                        for _ in 1..cfg.tournament {
                            let other = rng.random_range(0..population.len());
                            if better(scores[other], scores[best]) {
                                best = other;
                            }
                        }
                        best
                    };
                    let pa = pick(&mut rng);
                    let pb = pick(&mut rng);
                    let mut child: Vec<u32> = (0..n_comps)
                        .map(|i| {
                            if rng.random_bool(0.5) {
                                population[pa][i]
                            } else {
                                population[pb][i]
                            }
                        })
                        .collect();
                    for gene in child.iter_mut() {
                        if rng.random_bool(cfg.mutation_rate) {
                            *gene = rng.random_range(0..n_hosts) as u32;
                        }
                    }
                    next.push(child);
                }
                population = next;
                scores = population
                    .iter()
                    .map(|g| score_of(g, &mut evaluations))
                    .collect();
                trace_best(&scores, evaluations, &mut trace);
            }

            let best_idx = (0..population.len())
                .reduce(|x, y| if better(scores[y], scores[x]) { y } else { x })
                .expect("population non-empty");
            let candidate = if scores[best_idx] == c.objective.worst() {
                None
            } else {
                Some((population.swap_remove(best_idx), scores[best_idx]))
            };
            IslandOutcome {
                candidate,
                evaluations,
                full: inc.full_evaluations(),
                delta: inc.delta_evaluations(),
                trace,
            }
        };

        let outcomes = run_shards(cfg.shards.max(1), cfg.threads.max(1), island);

        let mut best: Option<(Vec<u32>, f64)> = None;
        let mut evaluations = 0u64;
        let mut full = 0u64;
        let mut delta = 0u64;
        let mut convergence = Vec::new();
        for o in outcomes {
            evaluations += o.evaluations;
            full += o.full;
            delta += o.delta;
            if convergence.is_empty() {
                convergence = o.trace.clone();
            }
            if let Some((genes, v)) = o.candidate {
                let take = match &best {
                    Some((_, bv)) => c.objective.is_improvement(*bv, v),
                    None => true,
                };
                if take {
                    best = Some((genes, v));
                    convergence = o.trace;
                }
            }
        }

        let candidate = best.map(|(genes, v)| (cm.decode_assignment(&genes), v));
        let (deployment, value) = keep_best_compiled(c, objective, initial, candidate)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: full,
            delta_evaluations: delta,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

impl RedeploymentAlgorithm for GeneticAlgorithm {
    fn name(&self) -> &str {
        "genetic"
    }

    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError> {
        let started = Instant::now();
        let (hosts, components) = preflight(model)?;
        if components.is_empty() {
            let d = Deployment::new();
            let value = objective.evaluate(model, &d);
            return Ok(AlgoResult {
                algorithm: self.name().to_owned(),
                deployment: d,
                value,
                evaluations: 1,
                wall_time: started.elapsed(),
                convergence: vec![(1, value)],
                full_evaluations: 1,
                delta_evaluations: 0,
                pruned_evaluations: 0,
                hierarchy_clusters: 0,
                refine_rounds: 0,
            });
        }
        if let Some(c) = try_compile(model, objective, constraints) {
            return self.run_compiled(&c, model, objective, initial, started);
        }
        let cfg = self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut evaluations = 0u64;

        // Seed the population: the initial deployment (if valid) plus
        // greedy-feasible random individuals.
        let mut population: Vec<Vec<HostId>> = Vec::with_capacity(cfg.population);
        if let Some(init) = initial {
            if init.validate(model).is_ok() {
                let genes: Vec<HostId> = components
                    .iter()
                    .map(|&c| init.host_of(c).expect("validated"))
                    .collect();
                population.push(genes);
            }
        }
        while population.len() < cfg.population {
            let mut d = Deployment::new();
            let genes: Vec<HostId> = components
                .iter()
                .map(|&c| {
                    // Prefer admissible hosts; fall back to uniform-random.
                    let admissible: Vec<HostId> = hosts
                        .iter()
                        .copied()
                        .filter(|&h| constraints.admits(model, &d, c, h))
                        .collect();
                    let h = *admissible
                        .choose(&mut rng)
                        .unwrap_or(&hosts[rng.random_range(0..hosts.len())]);
                    d.assign(c, h);
                    h
                })
                .collect();
            population.push(genes);
        }

        let mut scores: Vec<f64> = population
            .iter()
            .map(|g| {
                Self::fitness(
                    model,
                    objective,
                    constraints,
                    &components,
                    g,
                    &mut evaluations,
                )
            })
            .collect();

        let better = |a: f64, b: f64| objective.is_improvement(b, a); // a better than b

        let mut convergence = Vec::with_capacity(cfg.generations + 1);
        let trace_best = |scores: &[f64], evaluations: u64, trace: &mut Vec<(u64, f64)>| {
            let best = scores
                .iter()
                .copied()
                .reduce(|x, y| if objective.is_improvement(x, y) { y } else { x })
                .expect("population non-empty");
            trace.push((evaluations, best));
        };
        trace_best(&scores, evaluations, &mut convergence);

        for _ in 0..cfg.generations {
            let mut next: Vec<Vec<HostId>> = Vec::with_capacity(cfg.population);
            // Elitism: carry the best individual over.
            let best_idx = (0..population.len())
                .reduce(|x, y| if better(scores[y], scores[x]) { y } else { x })
                .expect("population non-empty");
            next.push(population[best_idx].clone());

            while next.len() < cfg.population {
                let pick = |rng: &mut ChaCha8Rng| {
                    let mut best = rng.random_range(0..population.len());
                    for _ in 1..cfg.tournament {
                        let other = rng.random_range(0..population.len());
                        if better(scores[other], scores[best]) {
                            best = other;
                        }
                    }
                    best
                };
                let pa = pick(&mut rng);
                let pb = pick(&mut rng);
                let mut child: Vec<HostId> = (0..components.len())
                    .map(|i| {
                        if rng.random_bool(0.5) {
                            population[pa][i]
                        } else {
                            population[pb][i]
                        }
                    })
                    .collect();
                for gene in child.iter_mut() {
                    if rng.random_bool(cfg.mutation_rate) {
                        *gene = hosts[rng.random_range(0..hosts.len())];
                    }
                }
                next.push(child);
            }
            population = next;
            scores = population
                .iter()
                .map(|g| {
                    Self::fitness(
                        model,
                        objective,
                        constraints,
                        &components,
                        g,
                        &mut evaluations,
                    )
                })
                .collect();
            trace_best(&scores, evaluations, &mut convergence);
        }

        let best_idx = (0..population.len())
            .reduce(|x, y| if better(scores[y], scores[x]) { y } else { x })
            .expect("population non-empty");
        let candidate = if scores[best_idx] == objective.worst() {
            None
        } else {
            Some((
                Self::decode(&components, &population[best_idx]),
                scores[best_idx],
            ))
        };
        let (deployment, value) = keep_best(model, objective, constraints, initial, candidate)
            .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: evaluations,
            delta_evaluations: 0,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn generated(seed: u64) -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(4, 10).with_seed(seed)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn produces_valid_deployments() {
        let (m, init) = generated(1);
        let r = GeneticAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        r.deployment.validate(&m).unwrap();
        m.constraints().check(&m, &r.deployment).unwrap();
    }

    #[test]
    fn improves_on_the_initial_deployment() {
        let (m, init) = generated(2);
        let before = Availability.evaluate(&m, &init);
        let r = GeneticAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert!(r.value >= before - 1e-12);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (m, _) = generated(3);
        let cfg = GeneticConfig {
            generations: 10,
            ..GeneticConfig::default()
        };
        let a = GeneticAlgorithm::with_config(cfg)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        let b = GeneticAlgorithm::with_config(cfg)
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert_eq!(a.deployment, b.deployment);
    }

    #[test]
    fn handles_empty_models() {
        let m = DeploymentModel::new();
        let r = GeneticAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        assert!(r.deployment.is_empty());
    }

    #[test]
    fn island_runs_are_thread_count_invariant() {
        let (m, init) = generated(5);
        let config = GeneticConfig {
            generations: 8,
            population: 16,
            shards: 4,
            threads: 1,
            ..GeneticConfig::default()
        };
        let reference = GeneticAlgorithm::with_config(config)
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        for threads in [2u32, 8] {
            let r = GeneticAlgorithm::with_config(GeneticConfig { threads, ..config })
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            assert_eq!(r.deployment, reference.deployment, "threads = {threads}");
            assert_eq!(r.value, reference.value, "threads = {threads}");
            assert_eq!(r.evaluations, reference.evaluations, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "mutation rate")]
    fn invalid_mutation_rate_panics() {
        let _ = GeneticAlgorithm::with_config(GeneticConfig {
            mutation_rate: 1.5,
            ..GeneticConfig::default()
        });
    }
}
