//! Deterministic parallel multi-start plumbing.
//!
//! Multi-start algorithms (Stochastic restarts, Genetic islands, Annealing
//! chains) split their work into `shards`, each with a fixed RNG stream
//! derived from `(seed, shard index)` by [`shard_seed`]. [`run_shards`]
//! executes the shard bodies on a scoped thread pool and returns the results
//! *in shard order*, so merging is a sequential fold whose outcome — like
//! the shard bodies themselves — is independent of the thread count and of
//! scheduling interleavings. The same configuration therefore produces
//! byte-identical results on 1, 2, or 8 threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The RNG seed for one shard of a multi-start run.
///
/// Shard 0 reuses `seed` unchanged, so a single-shard run replays the
/// sequential algorithm bit-for-bit. Later shards get decorrelated streams
/// through a splitmix64-style mix of `(seed, shard)`.
pub(crate) fn shard_seed(seed: u64, shard: u32) -> u64 {
    if shard == 0 {
        return seed;
    }
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(shard as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `body(shard)` for every shard on up to `threads` workers and returns
/// the results in shard order.
///
/// Workers claim shard indices from an atomic counter and deposit each
/// result in its shard's slot, so the returned vector is a pure function of
/// `body` regardless of thread count. `threads <= 1` (or a single shard)
/// runs inline without spawning.
pub(crate) fn run_shards<T, F>(shards: u32, threads: u32, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    let shards = shards.max(1);
    let threads = threads.clamp(1, shards);
    if threads == 1 {
        return (0..shards).map(body).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards as usize {
                    break;
                }
                let result = body(i as u32);
                *slots[i].lock().expect("shard slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("shard slot poisoned")
                .expect("every shard index below the counter limit was claimed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_zero_replays_the_sequential_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(shard_seed(seed, 0), seed);
        }
    }

    #[test]
    fn shard_seeds_are_decorrelated() {
        let seeds: Vec<u64> = (0..16).map(|s| shard_seed(7, s)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "shard seeds collided: {seeds:?}");
    }

    #[test]
    fn results_are_in_shard_order_for_any_thread_count() {
        let expected: Vec<u64> = (0..23u32).map(|i| shard_seed(9, i)).collect();
        for threads in [1u32, 2, 3, 8, 64] {
            let got = run_shards(23, threads, |i| shard_seed(9, i));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }
}
