//! A simulated-annealing body (extension; ablation partner for Avala).
//!
//! Local search from the current deployment: each step moves one random
//! component to another admissible host and accepts worsening moves with a
//! Boltzmann probability under a geometric cooling schedule. Included as an
//! ablation point: it shows what a *local* improver achieves compared to
//! Avala's constructive strategy at equal evaluation budgets.

use crate::traits::{keep_best, preflight, AlgoError, AlgoResult, RedeploymentAlgorithm};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use redep_model::{ConstraintChecker, Deployment, DeploymentModel, Objective};
use std::time::Instant;

/// Configuration of the annealing schedule.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AnnealingConfig {
    /// Number of proposed moves.
    pub iterations: u32,
    /// Initial temperature (in objective units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration, in `(0, 1)`.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            iterations: 5_000,
            initial_temperature: 0.1,
            cooling: 0.999,
            seed: 0,
        }
    }
}

/// Simulated annealing over single-component moves.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct AnnealingAlgorithm {
    config: AnnealingConfig,
}

impl AnnealingAlgorithm {
    /// Creates the algorithm with default parameters.
    pub fn new() -> Self {
        AnnealingAlgorithm::default()
    }

    /// Creates the algorithm with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cooling` is not in `(0, 1)` or the temperature is not
    /// positive.
    pub fn with_config(config: AnnealingConfig) -> Self {
        assert!(
            config.cooling > 0.0 && config.cooling < 1.0,
            "cooling factor must be in (0, 1)"
        );
        assert!(
            config.initial_temperature > 0.0,
            "temperature must be positive"
        );
        AnnealingAlgorithm { config }
    }
}

impl RedeploymentAlgorithm for AnnealingAlgorithm {
    fn name(&self) -> &str {
        "annealing"
    }

    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError> {
        let started = Instant::now();
        let (hosts, components) = preflight(model)?;
        let cfg = self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut evaluations = 0u64;

        // Starting point: the initial deployment, if valid; otherwise a
        // shuffled first-fit like the stochastic body's.
        let mut current = match initial {
            Some(d) if constraints.check(model, d).is_ok() => d.clone(),
            _ => {
                let mut d = Deployment::new();
                let mut ok = true;
                'comp: for &c in &components {
                    let start = rng.random_range(0..hosts.len().max(1));
                    for i in 0..hosts.len() {
                        let h = hosts[(start + i) % hosts.len()];
                        if constraints.admits(model, &d, c, h) {
                            d.assign(c, h);
                            continue 'comp;
                        }
                    }
                    ok = false;
                    break;
                }
                if !ok || constraints.check(model, &d).is_err() {
                    return Err(AlgoError::NoFeasibleDeployment);
                }
                d
            }
        };

        if components.is_empty() {
            let value = objective.evaluate(model, &current);
            return Ok(AlgoResult {
                algorithm: self.name().to_owned(),
                deployment: current,
                value,
                evaluations: 1,
                wall_time: started.elapsed(),
                convergence: vec![(1, value)],
            });
        }

        let mut current_value = objective.evaluate(model, &current);
        evaluations += 1;
        let mut best = current.clone();
        let mut best_value = current_value;
        let mut convergence = vec![(evaluations, best_value)];
        let mut temperature = cfg.initial_temperature;

        for _ in 0..cfg.iterations {
            let c = components[rng.random_range(0..components.len())];
            let old = current.host_of(c).expect("complete deployment");
            let h = hosts[rng.random_range(0..hosts.len())];
            if h == old {
                temperature *= cfg.cooling;
                continue;
            }
            current.unassign(c);
            if !constraints.admits(model, &current, c, h) {
                current.assign(c, old);
                temperature *= cfg.cooling;
                continue;
            }
            current.assign(c, h);
            if constraints.check(model, &current).is_err() {
                current.assign(c, old);
                temperature *= cfg.cooling;
                continue;
            }
            let value = objective.evaluate(model, &current);
            evaluations += 1;
            // Signed gain: positive when the move improves the objective.
            let gain = if objective.is_improvement(current_value, value) {
                (value - current_value).abs()
            } else {
                -(value - current_value).abs()
            };
            let accept = gain >= 0.0 || rng.random_bool((gain / temperature).exp().clamp(0.0, 1.0));
            if accept {
                current_value = value;
                if objective.is_improvement(best_value, value) {
                    best = current.clone();
                    best_value = value;
                    convergence.push((evaluations, value));
                }
            } else {
                current.assign(c, old);
            }
            temperature *= cfg.cooling;
        }

        let (deployment, value) = keep_best(
            model,
            objective,
            constraints,
            initial,
            Some((best, best_value)),
        )
        .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn generated(seed: u64) -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(4, 10).with_seed(seed)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn produces_valid_deployments() {
        let (m, init) = generated(1);
        let r = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        r.deployment.validate(&m).unwrap();
        m.constraints().check(&m, &r.deployment).unwrap();
    }

    #[test]
    fn never_regresses() {
        let (m, init) = generated(2);
        let before = Availability.evaluate(&m, &init);
        let r = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert!(r.value >= before - 1e-12);
    }

    #[test]
    fn works_without_an_initial_deployment() {
        let (m, _) = generated(3);
        let r = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        r.deployment.validate(&m).unwrap();
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (m, init) = generated(4);
        let a = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        let b = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert_eq!(a.deployment, b.deployment);
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn invalid_cooling_panics() {
        let _ = AnnealingAlgorithm::with_config(AnnealingConfig {
            cooling: 1.5,
            ..AnnealingConfig::default()
        });
    }
}
