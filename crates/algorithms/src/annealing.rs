//! A simulated-annealing body (extension; ablation partner for Avala).
//!
//! Local search from the current deployment: each step moves one random
//! component to another admissible host and accepts worsening moves with a
//! Boltzmann probability under a geometric cooling schedule. Included as an
//! ablation point: it shows what a *local* improver achieves compared to
//! Avala's constructive strategy at equal evaluation budgets.

use crate::compiled::{try_compile, Compiled};
use crate::hierarchy::{
    coarse_descent, finish_hierarchical, run_hierarchical, HierOutcome, HierarchicalConfig,
};
use crate::parallel::{run_shards, shard_seed};
use crate::traits::{
    keep_best, keep_best_compiled, preflight, AlgoError, AlgoResult, RedeploymentAlgorithm,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use redep_model::{
    ConstraintChecker, Deployment, DeploymentModel, Direction, IncrementalScore, Objective,
    UNASSIGNED,
};
use std::time::Instant;

/// Configuration of the annealing schedule.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AnnealingConfig {
    /// Number of proposed moves.
    pub iterations: u32,
    /// Initial temperature (in objective units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per iteration, in `(0, 1)`.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of independent annealing chains (multi-start); chain `i` runs
    /// on the fixed seed stream derived from `(seed, i)`, so the merged
    /// result is a pure function of the configuration. Values below 1 are
    /// treated as 1. Chains beyond the first require the compiled path.
    pub shards: u32,
    /// Worker threads the chains run on; any value produces the same result.
    /// Values below 1 are treated as 1.
    pub threads: u32,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        AnnealingConfig {
            iterations: 5_000,
            initial_temperature: 0.1,
            cooling: 0.999,
            seed: 0,
            shards: 1,
            threads: 1,
        }
    }
}

/// Simulated annealing over single-component moves.
///
/// On the compiled path every proposed move is priced with an O(deg(c))
/// delta ([`IncrementalScore::peek`]); best-so-far candidates are re-scored
/// from scratch before being recorded, so reported values match the naive
/// body exactly.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct AnnealingAlgorithm {
    config: AnnealingConfig,
    hierarchy: Option<HierarchicalConfig>,
}

/// Margin within which a delta-scored move is re-scored from scratch before
/// it may displace the incumbent best.
const NEAR_EPS: f64 = 1e-9;

impl AnnealingAlgorithm {
    /// Creates the algorithm with default parameters.
    pub fn new() -> Self {
        AnnealingAlgorithm::default()
    }

    /// Creates the algorithm with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cooling` is not in `(0, 1)` or the temperature is not
    /// positive.
    pub fn with_config(config: AnnealingConfig) -> Self {
        assert!(
            config.cooling > 0.0 && config.cooling < 1.0,
            "cooling factor must be in (0, 1)"
        );
        assert!(
            config.initial_temperature > 0.0,
            "temperature must be positive"
        );
        AnnealingAlgorithm {
            config,
            hierarchy: None,
        }
    }

    /// Runs the hierarchical variant (`annealing-h`): greedy coarse
    /// placement over super-node clusters followed by deterministic
    /// best-improvement descent on the coarse model, frontier-pruned
    /// refinement within each cluster in parallel, and finally a
    /// frontier-pruned annealing chain on the merged assignment (the flat
    /// Metropolis schedule at the same iteration budget, with targets drawn
    /// from the incident-link frontier instead of all hosts). Requires the
    /// compiled path; a non-compilable objective or checker falls back to
    /// the flat naive body.
    pub fn with_hierarchy(mut self, config: HierarchicalConfig) -> Self {
        self.hierarchy = Some(config);
        self
    }

    /// Frontier-pruned annealing chain run on the merged hierarchical
    /// assignment. Same proposal count and cooling schedule as one flat
    /// chain, but each move's target host is sampled from the component's
    /// incident-link frontier plus a deterministic exploration-ring window
    /// rather than uniformly over all hosts; the hosts the cut never
    /// scored are charged to `pruned`. The chain is sequential on the
    /// master state after the shard merge, so thread-count invariance of
    /// the engine is preserved.
    fn pruned_polish(&self, c: &Compiled, hcfg: &HierarchicalConfig, out: &mut HierOutcome) {
        let cfg = self.config;
        let cm = &c.model;
        let n_hosts = cm.n_hosts();
        let n_comps = cm.n_comps();
        if n_comps == 0 || n_hosts < 2 {
            return;
        }
        // A seed stream no flat chain uses, so annealing and annealing-h
        // stay statistically independent under the same config seed.
        let mut rng = ChaCha8Rng::seed_from_u64(shard_seed(cfg.seed, u32::MAX));
        let mut inc = IncrementalScore::new(cm, &c.objective);
        let mut assign = out.assign.clone();
        let mut current_value = inc.assign_from(&assign);
        let mut load = c.constraints.load_of(&assign);
        let mut best = assign.clone();
        let mut best_value = current_value;
        let mut temperature = cfg.initial_temperature;
        let ring = hcfg.exploration_ring.max(1).min(n_hosts);
        let mut pruned = 0u64;
        let mut cand: Vec<u32> = Vec::new();

        for _ in 0..cfg.iterations {
            let comp = rng.random_range(0..n_comps) as u32;
            let old = assign[comp as usize];
            // Frontier: hosts where the component's logical neighbors sit,
            // across all clusters.
            cand.clear();
            for &li in cm.incident(comp) {
                let l = &cm.links()[li as usize];
                let h = assign[l.other(comp) as usize];
                if h != UNASSIGNED {
                    cand.push(h);
                }
            }
            // Deterministic exploration ring, as in cluster refinement, so
            // pruning cannot trap a component next to its neighbors forever.
            let start = comp as usize % n_hosts;
            for r in 0..ring {
                cand.push(((start + r) % n_hosts) as u32);
            }
            cand.sort_unstable();
            cand.dedup();
            pruned += (n_hosts as u64).saturating_sub(cand.len() as u64);
            let h = cand[rng.random_range(0..cand.len())];
            if h == old || !c.constraints.admits_with_load(&assign, &load, comp, h) {
                temperature *= cfg.cooling;
                continue;
            }
            let value = inc.peek(comp, h);
            // Signed gain: positive when the move improves the objective.
            let gain = if c.objective.is_improvement(current_value, value) {
                (value - current_value).abs()
            } else {
                -(value - current_value).abs()
            };
            let accept = gain >= 0.0 || rng.random_bool((gain / temperature).exp().clamp(0.0, 1.0));
            if accept {
                let mem = cm.comp_memory()[comp as usize];
                load[old as usize] -= mem;
                load[h as usize] += mem;
                assign[comp as usize] = h;
                inc.set(comp, h);
                current_value = value;
                // Same near-best re-score idiom as the flat chain: recorded
                // bests are pure values, never drifted deltas.
                let near = match c.objective.direction() {
                    Direction::Maximize => value > best_value - NEAR_EPS,
                    Direction::Minimize => value < best_value + NEAR_EPS,
                };
                if near {
                    let pure = inc.score_full();
                    current_value = pure;
                    if c.objective.is_improvement(best_value, pure) {
                        best.clone_from(&assign);
                        best_value = pure;
                    }
                }
            }
            temperature *= cfg.cooling;
        }

        if c.objective.is_improvement(out.value, best_value) {
            debug_assert!(c.constraints.check(&best));
            out.assign = best;
            out.value = best_value;
        }
        out.full += inc.full_evaluations();
        out.delta += inc.delta_evaluations();
        out.pruned += pruned;
        out.convergence.push((3, out.value));
    }

    fn run_compiled(
        &self,
        c: &Compiled,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
        started: Instant,
    ) -> Result<AlgoResult, AlgoError> {
        let cfg = self.config;
        let cm = &c.model;
        let n_hosts = cm.n_hosts();
        let n_comps = cm.n_comps();

        // Starting point shared by every chain: the initial deployment, when
        // valid. (Chains that can't use it first-fit their own start.)
        let valid_initial: Option<Vec<u32>> = initial
            .filter(|d| constraints.check(model, d).is_ok())
            .map(|d| cm.compile_assignment(d));

        if n_comps == 0 {
            let assign = valid_initial.unwrap_or_default();
            let mut inc = IncrementalScore::new(cm, &c.objective);
            let value = inc.assign_from(&assign);
            return Ok(AlgoResult {
                algorithm: self.name().to_owned(),
                deployment: cm.decode_assignment(&assign),
                value,
                evaluations: 1,
                wall_time: started.elapsed(),
                convergence: vec![(1, value)],
                full_evaluations: inc.full_evaluations(),
                delta_evaluations: inc.delta_evaluations(),
                pruned_evaluations: 0,
                hierarchy_clusters: 0,
                refine_rounds: 0,
            });
        }

        struct ChainOutcome {
            best: Vec<u32>,
            best_value: f64,
            evaluations: u64,
            full: u64,
            delta: u64,
            trace: Vec<(u64, f64)>,
        }

        let chain = |shard: u32| -> Result<ChainOutcome, AlgoError> {
            let mut rng = ChaCha8Rng::seed_from_u64(shard_seed(cfg.seed, shard));
            let mut assign = match &valid_initial {
                Some(a) => a.clone(),
                None => {
                    let mut a = vec![UNASSIGNED; n_comps];
                    'comp: for ci in 0..n_comps {
                        let start = rng.random_range(0..n_hosts.max(1));
                        for i in 0..n_hosts {
                            let h = ((start + i) % n_hosts) as u32;
                            if c.constraints.admits(&a, ci as u32, h) {
                                a[ci] = h;
                                continue 'comp;
                            }
                        }
                        return Err(AlgoError::NoFeasibleDeployment);
                    }
                    if !c.constraints.check(&a) {
                        return Err(AlgoError::NoFeasibleDeployment);
                    }
                    a
                }
            };

            let mut inc = IncrementalScore::new(cm, &c.objective);
            let mut current_value = inc.assign_from(&assign);
            let mut evaluations = 1u64;
            let mut best = assign.clone();
            let mut best_value = current_value;
            let mut trace = vec![(evaluations, best_value)];
            let mut temperature = cfg.initial_temperature;

            for _ in 0..cfg.iterations {
                let comp = rng.random_range(0..n_comps) as u32;
                let old = assign[comp as usize];
                let h = rng.random_range(0..n_hosts) as u32;
                if h == old {
                    temperature *= cfg.cooling;
                    continue;
                }
                assign[comp as usize] = UNASSIGNED;
                if !c.constraints.admits(&assign, comp, h) {
                    assign[comp as usize] = old;
                    temperature *= cfg.cooling;
                    continue;
                }
                assign[comp as usize] = h;
                if !c.constraints.check(&assign) {
                    assign[comp as usize] = old;
                    temperature *= cfg.cooling;
                    continue;
                }
                let value = inc.peek(comp, h);
                evaluations += 1;
                // Signed gain: positive when the move improves the objective.
                let gain = if c.objective.is_improvement(current_value, value) {
                    (value - current_value).abs()
                } else {
                    -(value - current_value).abs()
                };
                let accept =
                    gain >= 0.0 || rng.random_bool((gain / temperature).exp().clamp(0.0, 1.0));
                if accept {
                    inc.set(comp, h);
                    current_value = value;
                    // Epsilon pre-filter, then a pure re-score, so recorded
                    // bests are exactly the naive values and delta drift can
                    // never hide a genuine improvement.
                    let near = match c.objective.direction() {
                        Direction::Maximize => value > best_value - NEAR_EPS,
                        Direction::Minimize => value < best_value + NEAR_EPS,
                    };
                    if near {
                        let pure = inc.score_full();
                        current_value = pure;
                        if c.objective.is_improvement(best_value, pure) {
                            best.clone_from(&assign);
                            best_value = pure;
                            trace.push((evaluations, pure));
                        }
                    }
                } else {
                    assign[comp as usize] = old;
                }
                temperature *= cfg.cooling;
            }

            Ok(ChainOutcome {
                best,
                best_value,
                evaluations,
                full: inc.full_evaluations(),
                delta: inc.delta_evaluations(),
                trace,
            })
        };

        let outcomes = run_shards(cfg.shards.max(1), cfg.threads.max(1), chain);

        let mut best: Option<(Vec<u32>, f64)> = None;
        let mut evaluations = 0u64;
        let mut full = 0u64;
        let mut delta = 0u64;
        let mut convergence = Vec::new();
        let mut first_err = None;
        for outcome in outcomes {
            match outcome {
                Ok(o) => {
                    evaluations += o.evaluations;
                    full += o.full;
                    delta += o.delta;
                    let take = match &best {
                        Some((_, bv)) => c.objective.is_improvement(*bv, o.best_value),
                        None => true,
                    };
                    if take {
                        best = Some((o.best, o.best_value));
                        convergence = o.trace;
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        let Some((best_assign, best_value)) = best else {
            return Err(first_err.unwrap_or(AlgoError::NoFeasibleDeployment));
        };

        let (deployment, value) = keep_best_compiled(
            c,
            objective,
            initial,
            Some((cm.decode_assignment(&best_assign), best_value)),
        )
        .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: full,
            delta_evaluations: delta,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

impl RedeploymentAlgorithm for AnnealingAlgorithm {
    fn name(&self) -> &str {
        if self.hierarchy.is_some() {
            "annealing-h"
        } else {
            "annealing"
        }
    }

    fn run(
        &self,
        model: &DeploymentModel,
        objective: &dyn Objective,
        constraints: &dyn ConstraintChecker,
        initial: Option<&Deployment>,
    ) -> Result<AlgoResult, AlgoError> {
        let started = Instant::now();
        let (hosts, components) = preflight(model)?;
        if let Some(c) = try_compile(model, objective, constraints) {
            if let Some(hcfg) = &self.hierarchy {
                let mut out = run_hierarchical(&c, hcfg, |cc| coarse_descent(cc, 2))?;
                self.pruned_polish(&c, hcfg, &mut out);
                return finish_hierarchical(&c, objective, initial, started, self.name(), out);
            }
            return self.run_compiled(&c, model, objective, constraints, initial, started);
        }
        let cfg = self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut evaluations = 0u64;

        // Starting point: the initial deployment, if valid; otherwise a
        // shuffled first-fit like the stochastic body's.
        let mut current = match initial {
            Some(d) if constraints.check(model, d).is_ok() => d.clone(),
            _ => {
                let mut d = Deployment::new();
                let mut ok = true;
                'comp: for &c in &components {
                    let start = rng.random_range(0..hosts.len().max(1));
                    for i in 0..hosts.len() {
                        let h = hosts[(start + i) % hosts.len()];
                        if constraints.admits(model, &d, c, h) {
                            d.assign(c, h);
                            continue 'comp;
                        }
                    }
                    ok = false;
                    break;
                }
                if !ok || constraints.check(model, &d).is_err() {
                    return Err(AlgoError::NoFeasibleDeployment);
                }
                d
            }
        };

        if components.is_empty() {
            let value = objective.evaluate(model, &current);
            return Ok(AlgoResult {
                algorithm: self.name().to_owned(),
                deployment: current,
                value,
                evaluations: 1,
                wall_time: started.elapsed(),
                convergence: vec![(1, value)],
                full_evaluations: 1,
                delta_evaluations: 0,
                pruned_evaluations: 0,
                hierarchy_clusters: 0,
                refine_rounds: 0,
            });
        }

        let mut current_value = objective.evaluate(model, &current);
        evaluations += 1;
        let mut best = current.clone();
        let mut best_value = current_value;
        let mut convergence = vec![(evaluations, best_value)];
        let mut temperature = cfg.initial_temperature;

        for _ in 0..cfg.iterations {
            let c = components[rng.random_range(0..components.len())];
            let old = current.host_of(c).expect("complete deployment");
            let h = hosts[rng.random_range(0..hosts.len())];
            if h == old {
                temperature *= cfg.cooling;
                continue;
            }
            current.unassign(c);
            if !constraints.admits(model, &current, c, h) {
                current.assign(c, old);
                temperature *= cfg.cooling;
                continue;
            }
            current.assign(c, h);
            if constraints.check(model, &current).is_err() {
                current.assign(c, old);
                temperature *= cfg.cooling;
                continue;
            }
            let value = objective.evaluate(model, &current);
            evaluations += 1;
            // Signed gain: positive when the move improves the objective.
            let gain = if objective.is_improvement(current_value, value) {
                (value - current_value).abs()
            } else {
                -(value - current_value).abs()
            };
            let accept = gain >= 0.0 || rng.random_bool((gain / temperature).exp().clamp(0.0, 1.0));
            if accept {
                current_value = value;
                if objective.is_improvement(best_value, value) {
                    best = current.clone();
                    best_value = value;
                    convergence.push((evaluations, value));
                }
            } else {
                current.assign(c, old);
            }
            temperature *= cfg.cooling;
        }

        let (deployment, value) = keep_best(
            model,
            objective,
            constraints,
            initial,
            Some((best, best_value)),
        )
        .ok_or(AlgoError::NoFeasibleDeployment)?;
        Ok(AlgoResult {
            algorithm: self.name().to_owned(),
            deployment,
            value,
            evaluations,
            wall_time: started.elapsed(),
            convergence,
            full_evaluations: evaluations,
            delta_evaluations: 0,
            pruned_evaluations: 0,
            hierarchy_clusters: 0,
            refine_rounds: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn generated(seed: u64) -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(4, 10).with_seed(seed)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn produces_valid_deployments() {
        let (m, init) = generated(1);
        let r = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        r.deployment.validate(&m).unwrap();
        m.constraints().check(&m, &r.deployment).unwrap();
    }

    #[test]
    fn never_regresses() {
        let (m, init) = generated(2);
        let before = Availability.evaluate(&m, &init);
        let r = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert!(r.value >= before - 1e-12);
    }

    #[test]
    fn works_without_an_initial_deployment() {
        let (m, _) = generated(3);
        let r = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), None)
            .unwrap();
        r.deployment.validate(&m).unwrap();
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let (m, init) = generated(4);
        let a = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        let b = AnnealingAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        assert_eq!(a.deployment, b.deployment);
    }

    #[test]
    fn multi_chain_runs_are_thread_count_invariant() {
        let (m, init) = generated(6);
        let config = AnnealingConfig {
            iterations: 400,
            shards: 4,
            threads: 1,
            ..AnnealingConfig::default()
        };
        let reference = AnnealingAlgorithm::with_config(config)
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        for threads in [2u32, 8] {
            let r = AnnealingAlgorithm::with_config(AnnealingConfig { threads, ..config })
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            assert_eq!(r.deployment, reference.deployment, "threads = {threads}");
            assert_eq!(r.value, reference.value, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn invalid_cooling_panics() {
        let _ = AnnealingAlgorithm::with_config(AnnealingConfig {
            cooling: 1.5,
            ..AnnealingConfig::default()
        });
    }
}
