//! Hierarchical placement: coarse-solve over super-nodes, refine per cluster.
//!
//! Flat search bodies score candidate moves against every host, so their
//! cost grows with the full host count even though most hosts are
//! indistinguishable from a single component's point of view. The
//! hierarchical engine decomposes the problem along the
//! [`Hierarchy`] super-node partition instead:
//!
//! 1. **Coarse solve** — placement over the aggregated cluster model
//!    ([`Hierarchy::coarse_model`]) under the cluster-projected constraints
//!    ([`redep_model::CompiledConstraints::project_to_clusters`]), assigning
//!    every component to a *cluster*.
//! 2. **Expand** — a deterministic first-fit picks a concrete host inside
//!    each component's cluster (with a global-first-fit repair for
//!    components whose cluster cannot fit them).
//! 3. **Refine** — each cluster is an independent shard: a local search
//!    improves host choices *within* the cluster, with candidate moves
//!    restricted to the component's incident-link frontier (hosts where its
//!    logical neighbors sit) plus a small deterministic exploration ring.
//!    Hosts not scored are charged to the `pruned_evaluations` counter, so
//!    the cut is visible in telemetry.
//!
//! Refinement shards never read another shard's mutable state: every shard
//! starts from the same expanded assignment and only moves its own cluster's
//! components between its own cluster's hosts, so the merged result — taken
//! in cluster order exactly as `parallel.rs` merges multi-start shards — is
//! a pure function of the inputs, byte-identical at any thread count.
//!
//! Cross-cluster constraint safety: collocated groups are preserved by the
//! coarse projection (members land in one cluster, hence one shard), and a
//! separated member in another cluster sits on a host outside this shard's
//! cluster by construction, so stale cross-shard assignments can never make
//! an admitted move invalid. A final full check backs this with a fallback
//! to the unrefined assignment.

use crate::compiled::Compiled;
use crate::parallel::run_shards;
use crate::traits::{keep_best_compiled, AlgoError, AlgoResult};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use redep_model::{
    Deployment, Hierarchy, HierarchyConfig, IncrementalScore, Objective, UNASSIGNED,
};
use std::time::Instant;

/// Configuration of a hierarchical run, shared by all `*-h` algorithm
/// variants (see e.g. `AvalaAlgorithm::with_hierarchy`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct HierarchicalConfig {
    /// Hosts joined by links with delay ≤ this threshold cluster together
    /// (forwarded to [`HierarchyConfig`]).
    pub delay_threshold: f64,
    /// Desired cluster count; `0` picks `⌈√hosts⌉` (forwarded to
    /// [`HierarchyConfig`]).
    pub target_clusters: usize,
    /// Upper bound on within-cluster refinement passes; refinement stops
    /// early once a pass makes no move.
    pub refine_rounds: usize,
    /// Extra candidate hosts examined per component beyond its incident-link
    /// frontier: a deterministic window of the cluster's host list, rotated
    /// by component index so different components explore different hosts.
    pub exploration_ring: usize,
    /// Worker threads for the per-cluster refinement shards. Any value
    /// produces byte-identical results; more threads only reduce wall time.
    pub threads: usize,
}

impl Default for HierarchicalConfig {
    fn default() -> Self {
        HierarchicalConfig {
            delay_threshold: 0.0,
            target_clusters: 0,
            refine_rounds: 2,
            exploration_ring: 2,
            threads: 1,
        }
    }
}

impl HierarchicalConfig {
    /// The model-side clustering config this run forwards to
    /// [`Hierarchy::build`].
    pub(crate) fn clustering(&self) -> HierarchyConfig {
        HierarchyConfig {
            delay_threshold: self.delay_threshold,
            target_clusters: self.target_clusters,
        }
    }
}

/// What a coarse solver produced: a component→cluster assignment (entries
/// may be [`UNASSIGNED`]; the expand step repairs those globally) plus its
/// scoring counters.
pub(crate) struct CoarseOutcome {
    pub cluster_assign: Vec<u32>,
    pub full: u64,
    pub delta: u64,
}

/// The hierarchical engine's raw result, before the baseline guard.
pub(crate) struct HierOutcome {
    pub assign: Vec<u32>,
    pub value: f64,
    pub full: u64,
    pub delta: u64,
    pub pruned: u64,
    pub clusters: u64,
    pub refine_rounds: u64,
    pub convergence: Vec<(u64, f64)>,
}

/// Avala-flavored coarse greedy, component-major: walk components in
/// descending seed-rank order (interaction frequency minus relative memory
/// footprint, like the flat avala pick rule) and put each one on the
/// admissible cluster where its already-placed neighbors accumulate the
/// highest interaction affinity, ties to the larger-capacity cluster. The
/// per-component affinity row is maintained incrementally on placement, so
/// the whole stage is O(n·k + L) with no rescans. (The flat path cannot use
/// incremental accumulation: it changes float summation order, and flat
/// avala must match the naive body bit for bit.)
pub(crate) fn coarse_greedy(cc: &Compiled) -> CoarseOutcome {
    let cm = &cc.model;
    let k = cm.n_hosts();
    let n = cm.n_comps();
    let mut assign = vec![UNASSIGNED; n];
    if n == 0 || k == 0 {
        return CoarseOutcome {
            cluster_assign: assign,
            full: 0,
            delta: 0,
        };
    }

    // Cluster preference for affinity ties: descending capacity, then index.
    let mut order: Vec<u32> = (0..k as u32).collect();
    order.sort_by(|&a, &b| {
        cm.host_memory()[b as usize]
            .total_cmp(&cm.host_memory()[a as usize])
            .then(a.cmp(&b))
    });

    let max_mem = cm.comp_memory().iter().cloned().fold(0.0, f64::max);
    let seed: Vec<f64> = (0..n as u32)
        .map(|ci| {
            let freq: f64 = cm
                .incident(ci)
                .iter()
                .map(|&li| cm.links()[li as usize].frequency)
                .sum();
            let mem = cm.comp_memory()[ci as usize];
            freq - if max_mem > 0.0 { mem / max_mem } else { 0.0 }
        })
        .collect();
    let mut comp_order: Vec<u32> = (0..n as u32).collect();
    comp_order.sort_by(|&a, &b| {
        seed[b as usize]
            .total_cmp(&seed[a as usize])
            .then(a.cmp(&b))
    });

    let mut load = cc.constraints.load_of(&assign);
    // affinity[ci·k + h]: interaction volume ci would keep close on cluster h.
    let mut affinity = vec![0.0f64; n * k];
    for &ci in &comp_order {
        let row = &affinity[ci as usize * k..(ci as usize + 1) * k];
        let mut best: Option<(u32, f64)> = None;
        for &h in &order {
            if !cc.constraints.admits_with_load(&assign, &load, ci, h) {
                continue;
            }
            let a = row[h as usize];
            // `order` already encodes the tie preference, so strictly-better
            // affinity is the only way to displace an earlier candidate.
            if best.is_none_or(|(_, ba)| a > ba) {
                best = Some((h, a));
            }
        }
        let Some((h, _)) = best else {
            continue; // no admissible cluster: the expand step repairs globally
        };
        assign[ci as usize] = h;
        load[h as usize] += cm.comp_memory()[ci as usize];
        for &li in cm.incident(ci) {
            let l = &cm.links()[li as usize];
            let other = l.other(ci);
            if assign[other as usize] == UNASSIGNED {
                affinity[other as usize * k + h as usize] += l.frequency;
            }
        }
    }
    CoarseOutcome {
        cluster_assign: assign,
        full: 0,
        delta: 0,
    }
}

/// Stochastic-flavored coarse solver: `iterations` seeded random shuffles of
/// cluster and component order, first-fit placement, best kept by strict
/// improvement (first iteration wins ties).
pub(crate) fn coarse_random(cc: &Compiled, seed: u64, iterations: u32) -> CoarseOutcome {
    let cm = &cc.model;
    let k = cm.n_hosts() as u32;
    let n = cm.n_comps() as u32;
    if n == 0 || k == 0 {
        return CoarseOutcome {
            cluster_assign: vec![UNASSIGNED; n as usize],
            full: 0,
            delta: 0,
        };
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut inc = IncrementalScore::new(cm, &cc.objective);
    let mut cluster_order: Vec<u32> = (0..k).collect();
    let mut comp_order: Vec<u32> = (0..n).collect();
    let mut assign = vec![UNASSIGNED; n as usize];
    let mut remaining: Vec<u32> = Vec::with_capacity(n as usize);
    let mut best: Option<(Vec<u32>, f64)> = None;
    for _ in 0..iterations.max(1) {
        cluster_order.shuffle(&mut rng);
        comp_order.shuffle(&mut rng);
        assign.fill(UNASSIGNED);
        let mut load = cc.constraints.load_of(&assign);
        remaining.clear();
        remaining.extend_from_slice(&comp_order);
        for &h in &cluster_order {
            remaining.retain(|&ci| {
                if cc.constraints.admits_with_load(&assign, &load, ci, h) {
                    assign[ci as usize] = h;
                    load[h as usize] += cm.comp_memory()[ci as usize];
                    false
                } else {
                    true
                }
            });
        }
        if !remaining.is_empty() {
            continue;
        }
        let value = inc.assign_from(&assign);
        let improved = match &best {
            Some((_, bv)) => cc.objective.is_improvement(*bv, value),
            None => true,
        };
        if improved {
            best = Some((assign.clone(), value));
        }
    }
    let cluster_assign = best
        .map(|(a, _)| a)
        // No complete shuffle placement: fall back to the greedy coarse
        // assignment (the expand step repairs any remaining holes).
        .unwrap_or_else(|| coarse_greedy(cc).cluster_assign);
    CoarseOutcome {
        cluster_assign,
        full: inc.full_evaluations(),
        delta: inc.delta_evaluations(),
    }
}

/// Annealing-flavored coarse solver: greedy start, then `passes`
/// deterministic best-improvement sweeps moving single components between
/// clusters on the coarse scorer.
pub(crate) fn coarse_descent(cc: &Compiled, passes: usize) -> CoarseOutcome {
    let cm = &cc.model;
    let k = cm.n_hosts() as u32;
    let n = cm.n_comps() as u32;
    let mut out = coarse_greedy(cc);
    if n == 0 || k == 0 || out.cluster_assign.contains(&UNASSIGNED) {
        return out;
    }
    let mut inc = IncrementalScore::new(cm, &cc.objective);
    inc.assign_from(&out.cluster_assign);
    let mut load = cc.constraints.load_of(&out.cluster_assign);
    for _ in 0..passes {
        let mut moved = false;
        for ci in 0..n {
            let cur = out.cluster_assign[ci as usize];
            let cur_value = inc.value();
            let mut best: Option<(u32, f64)> = None;
            for h in 0..k {
                if h == cur
                    || !cc
                        .constraints
                        .admits_with_load(&out.cluster_assign, &load, ci, h)
                {
                    continue;
                }
                let v = inc.peek(ci, h);
                if cc.objective.is_improvement(cur_value, v) {
                    let better = match best {
                        Some((_, bv)) => cc.objective.is_improvement(bv, v),
                        None => true,
                    };
                    if better {
                        best = Some((h, v));
                    }
                }
            }
            if let Some((h, _)) = best {
                let mem = cm.comp_memory()[ci as usize];
                load[cur as usize] -= mem;
                load[h as usize] += mem;
                inc.set(ci, h);
                out.cluster_assign[ci as usize] = h;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    out.full += inc.full_evaluations();
    out.delta += inc.delta_evaluations();
    out
}

/// One refinement shard's result.
struct RefineOut {
    /// Final host per component of this shard's cluster.
    positions: Vec<(u32, u32)>,
    pruned: u64,
    delta: u64,
    rounds: u64,
}

/// Runs the full hierarchical engine: cluster, coarse-solve (via the
/// algorithm-flavored `coarse` callback), expand, refine in parallel.
pub(crate) fn run_hierarchical<F>(
    c: &Compiled,
    cfg: &HierarchicalConfig,
    coarse: F,
) -> Result<HierOutcome, AlgoError>
where
    F: FnOnce(&Compiled) -> CoarseOutcome,
{
    let cm = &c.model;
    let n_comps = cm.n_comps();
    let n_hosts = cm.n_hosts();

    let hier = Hierarchy::build(cm, &cfg.clustering());
    let k = hier.n_clusters();

    if n_comps == 0 {
        let mut inc = IncrementalScore::new(cm, &c.objective);
        let value = inc.score_full();
        return Ok(HierOutcome {
            assign: Vec::new(),
            value,
            full: inc.full_evaluations(),
            delta: 0,
            pruned: 0,
            clusters: k as u64,
            refine_rounds: 0,
            convergence: vec![(0, value)],
        });
    }

    // 1. Coarse solve on the super-node model under projected constraints.
    let coarse_compiled = Compiled {
        model: hier.coarse_model(cm),
        objective: c.objective.clone(),
        constraints: c
            .constraints
            .project_to_clusters(hier.cluster_map(), k, hier.capacities()),
    };
    let coarse_out = coarse(&coarse_compiled);

    // 2. Expand: concrete host within each component's cluster, repairing
    //    globally when the cluster cannot fit the component.
    let mut assign = vec![UNASSIGNED; n_comps];
    let mut load = c.constraints.load_of(&assign);
    'comp: for ci in 0..n_comps as u32 {
        let cluster = coarse_out.cluster_assign[ci as usize];
        if cluster != UNASSIGNED {
            for &h in hier.hosts(cluster) {
                if c.constraints.admits_with_load(&assign, &load, ci, h) {
                    assign[ci as usize] = h;
                    load[h as usize] += cm.comp_memory()[ci as usize];
                    continue 'comp;
                }
            }
        }
        for h in 0..n_hosts as u32 {
            if c.constraints.admits_with_load(&assign, &load, ci, h) {
                assign[ci as usize] = h;
                load[h as usize] += cm.comp_memory()[ci as usize];
                continue 'comp;
            }
        }
        return Err(AlgoError::NoFeasibleDeployment);
    }

    let mut inc = IncrementalScore::new(cm, &c.objective);
    let base_value = inc.assign_from(&assign);
    let mut convergence = vec![(0u64, base_value)];

    // 3. Refine each cluster independently. Every shard clones the same
    //    post-expand scorer and moves only its own cluster's components
    //    between its own cluster's hosts, so shards are pure functions of
    //    the expanded assignment and merge deterministically in cluster
    //    order at any thread count.
    let mut comps_by_cluster: Vec<Vec<u32>> = vec![Vec::new(); k];
    for ci in 0..n_comps as u32 {
        let h = assign[ci as usize];
        comps_by_cluster[hier.cluster_of(h) as usize].push(ci);
    }
    let base_delta = inc.delta_evaluations();
    let outs: Vec<RefineOut> = run_shards(k as u32, cfg.threads.max(1) as u32, |shard| {
        let mut local = inc.clone();
        let mut local_load = load.clone();
        let hosts = hier.hosts(shard);
        let comps = &comps_by_cluster[shard as usize];
        let mut pruned = 0u64;
        let mut rounds = 0u64;
        let mut cand: Vec<u32> = Vec::new();
        for _ in 0..cfg.refine_rounds {
            if comps.is_empty() {
                break;
            }
            rounds += 1;
            let mut moved = false;
            for &ci in comps {
                let cur_host = local.assignment()[ci as usize];
                // Frontier: hosts (in this cluster) where the component's
                // logical neighbors currently sit.
                cand.clear();
                for &li in cm.incident(ci) {
                    let l = &cm.links()[li as usize];
                    let h = local.assignment()[l.other(ci) as usize];
                    if h != UNASSIGNED && hier.cluster_of(h) == shard {
                        cand.push(h);
                    }
                }
                // Deterministic exploration ring: a rotated window of the
                // cluster's host list, so pruning can't trap a component
                // next to its neighbors forever.
                if cfg.exploration_ring > 0 {
                    let start = ci as usize % hosts.len();
                    for r in 0..cfg.exploration_ring.min(hosts.len()) {
                        cand.push(hosts[(start + r) % hosts.len()]);
                    }
                }
                cand.sort_unstable();
                cand.dedup();
                // The flat path would score a move to every host; charge
                // the ones the frontier cut skipped.
                pruned += (n_hosts as u64).saturating_sub(cand.len() as u64);
                let cur_value = local.value();
                let mut best: Option<(u32, f64)> = None;
                for &h in &cand {
                    if h == cur_host {
                        continue;
                    }
                    // Price first, gate on admissibility only for improving
                    // candidates: every frontier candidate gets a real delta
                    // scoring while the O(groups) constraint probe runs only
                    // for the few that could win. Selection is unchanged —
                    // an inadmissible improver was skipped before too.
                    let v = local.peek(ci, h);
                    if c.objective.is_improvement(cur_value, v) {
                        let better = match best {
                            Some((_, bv)) => c.objective.is_improvement(bv, v),
                            None => true,
                        };
                        if better
                            && c.constraints.admits_with_load(
                                local.assignment(),
                                &local_load,
                                ci,
                                h,
                            )
                        {
                            best = Some((h, v));
                        }
                    }
                }
                if let Some((h, _)) = best {
                    let mem = cm.comp_memory()[ci as usize];
                    local_load[cur_host as usize] -= mem;
                    local_load[h as usize] += mem;
                    local.set(ci, h);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        RefineOut {
            positions: comps
                .iter()
                .map(|&ci| (ci, local.assignment()[ci as usize]))
                .collect(),
            pruned,
            delta: local.delta_evaluations() - base_delta,
            rounds,
        }
    });

    // 4. Merge in cluster order (shards own disjoint components).
    let mut pruned = 0u64;
    let mut shard_delta = 0u64;
    let mut rounds_max = 0u64;
    let mut refined = assign.clone();
    for o in outs {
        pruned += o.pruned;
        shard_delta += o.delta;
        rounds_max = rounds_max.max(o.rounds);
        for (ci, h) in o.positions {
            refined[ci as usize] = h;
        }
    }
    let mut value = if c.constraints.check(&refined) {
        let v = inc.assign_from(&refined);
        assign = refined;
        v
    } else {
        // Shard-local admissibility should compose (see module docs); if it
        // ever does not, the unrefined assignment is still valid.
        debug_assert!(false, "merged refinement broke a constraint");
        base_value
    };
    convergence.push((1, value));

    // 5. Global frontier polish: one sequential best-improvement pass over
    //    the merged assignment with candidates drawn from each component's
    //    incident-link frontier across *all* clusters. This recovers the
    //    couplings the decomposition cut (a component whose chattiest
    //    neighbor landed in another cluster can now follow it) and, being a
    //    deterministic pass on the master state, preserves byte-identical
    //    results at any thread count.
    let mut load = c.constraints.load_of(&assign);
    let mut cand: Vec<u32> = Vec::new();
    for ci in 0..n_comps as u32 {
        let cur_host = assign[ci as usize];
        cand.clear();
        for &li in cm.incident(ci) {
            let l = &cm.links()[li as usize];
            let h = assign[l.other(ci) as usize];
            if h != UNASSIGNED {
                cand.push(h);
            }
        }
        cand.sort_unstable();
        cand.dedup();
        pruned += (n_hosts as u64).saturating_sub(cand.len() as u64);
        let cur_value = inc.value();
        let mut best: Option<(u32, f64)> = None;
        for &h in &cand {
            if h == cur_host {
                continue;
            }
            let v = inc.peek(ci, h);
            if c.objective.is_improvement(cur_value, v) {
                let better = match best {
                    Some((_, bv)) => c.objective.is_improvement(bv, v),
                    None => true,
                };
                if better && c.constraints.admits_with_load(&assign, &load, ci, h) {
                    best = Some((h, v));
                }
            }
        }
        if let Some((h, v)) = best {
            let mem = cm.comp_memory()[ci as usize];
            load[cur_host as usize] -= mem;
            load[h as usize] += mem;
            inc.set(ci, h);
            assign[ci as usize] = h;
            value = v;
        }
    }
    debug_assert!(c.constraints.check(&assign));
    convergence.push((2, value));

    Ok(HierOutcome {
        assign,
        value,
        full: inc.full_evaluations() + coarse_out.full,
        delta: inc.delta_evaluations() + shard_delta + coarse_out.delta,
        pruned,
        clusters: k as u64,
        refine_rounds: rounds_max,
        convergence,
    })
}

/// Wraps a [`HierOutcome`] into an [`AlgoResult`] behind the baseline guard.
///
/// `evaluations` counts every deployment scoring the engine performed (full
/// and delta alike): the hierarchical variants price complete deployments
/// through incremental moves, so the full/delta split — not a separate
/// counter — is the honest cost measure.
pub(crate) fn finish_hierarchical(
    c: &Compiled,
    objective: &dyn Objective,
    initial: Option<&Deployment>,
    started: Instant,
    name: &str,
    out: HierOutcome,
) -> Result<AlgoResult, AlgoError> {
    let candidate = Some((c.model.decode_assignment(&out.assign), out.value));
    let (deployment, value) = keep_best_compiled(c, objective, initial, candidate)
        .ok_or(AlgoError::NoFeasibleDeployment)?;
    Ok(AlgoResult {
        algorithm: name.to_owned(),
        deployment,
        value,
        evaluations: out.full + out.delta,
        wall_time: started.elapsed(),
        convergence: out.convergence,
        full_evaluations: out.full,
        delta_evaluations: out.delta,
        pruned_evaluations: out.pruned,
        hierarchy_clusters: out.clusters,
        refine_rounds: out.refine_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::try_compile;
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn compiled(hosts: usize, comps: usize, seed: u64) -> Compiled {
        let s = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(seed)).unwrap();
        try_compile(&s.model, &Availability, s.model.constraints()).unwrap()
    }

    #[test]
    fn coarse_greedy_places_every_component() {
        let c = compiled(12, 40, 1);
        let hier = Hierarchy::build(&c.model, &HierarchyConfig::default());
        let cc = Compiled {
            model: hier.coarse_model(&c.model),
            objective: c.objective.clone(),
            constraints: c.constraints.project_to_clusters(
                hier.cluster_map(),
                hier.n_clusters(),
                hier.capacities(),
            ),
        };
        let out = coarse_greedy(&cc);
        assert!(out.cluster_assign.iter().all(|&a| a != UNASSIGNED));
        assert!(cc.constraints.check(&out.cluster_assign));
    }

    #[test]
    fn engine_produces_a_valid_deployment() {
        let c = compiled(12, 40, 2);
        let out = run_hierarchical(&c, &HierarchicalConfig::default(), coarse_greedy).unwrap();
        assert!(c.constraints.check(&out.assign));
        assert!(out.clusters > 0);
        assert!(out.pruned > 0, "frontier pruning skipped nothing");
    }

    #[test]
    fn refinement_never_regresses_the_expanded_assignment() {
        for seed in [1u64, 2, 3] {
            let c = compiled(10, 30, seed);
            let out = run_hierarchical(&c, &HierarchicalConfig::default(), coarse_greedy).unwrap();
            let (p0, v0) = out.convergence[0];
            let (_, v1) = *out.convergence.last().unwrap();
            assert_eq!(p0, 0);
            assert!(
                c.objective.is_improvement(v0, v1) || v1 == v0,
                "seed {seed}: refinement regressed {v0} -> {v1}"
            );
        }
    }

    #[test]
    fn engine_is_thread_invariant() {
        let c = compiled(16, 48, 3);
        let base = run_hierarchical(
            &c,
            &HierarchicalConfig {
                threads: 1,
                ..HierarchicalConfig::default()
            },
            coarse_greedy,
        )
        .unwrap();
        for threads in [2usize, 8] {
            let other = run_hierarchical(
                &c,
                &HierarchicalConfig {
                    threads,
                    ..HierarchicalConfig::default()
                },
                coarse_greedy,
            )
            .unwrap();
            assert_eq!(base.assign, other.assign, "threads {threads}");
            assert_eq!(base.value, other.value, "threads {threads}");
            assert_eq!(base.pruned, other.pruned, "threads {threads}");
        }
    }
}
