//! Compiled-vs-naive equivalence across all six algorithm bodies.
//!
//! Every algorithm must produce the same deployment and the same value
//! (within 1e-12) whether it runs on the compiled evaluation core or on the
//! naive trait-object path. The naive path is forced with
//! [`redep_model::Uncompiled`], which hides [`Objective::compiled`] from the
//! algorithm while delegating everything else.

use redep_algorithms::annealing::AnnealingConfig;
use redep_algorithms::genetic::GeneticConfig;
use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm,
    RedeploymentAlgorithm, StochasticAlgorithm,
};
use redep_model::{
    Availability, CommunicationVolume, Composite, Deployment, DeploymentModel, Generator,
    GeneratorConfig, Latency, LinkSecurity, Objective, PathAwareAvailability, Uncompiled,
};

fn generated(hosts: usize, comps: usize, seed: u64) -> (DeploymentModel, Deployment) {
    let s = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(seed)).unwrap();
    (s.model, s.initial)
}

fn algorithms(small: bool) -> Vec<(&'static str, Box<dyn RedeploymentAlgorithm>)> {
    let mut algos: Vec<(&'static str, Box<dyn RedeploymentAlgorithm>)> = vec![
        (
            "stochastic",
            Box::new(StochasticAlgorithm::with_config(40, 9)),
        ),
        ("avala", Box::new(AvalaAlgorithm::new())),
        ("decap", Box::new(DecApAlgorithm::new())),
        (
            "annealing",
            Box::new(AnnealingAlgorithm::with_config(AnnealingConfig {
                iterations: 600,
                seed: 5,
                ..AnnealingConfig::default()
            })),
        ),
        (
            "genetic",
            Box::new(GeneticAlgorithm::with_config(GeneticConfig {
                population: 12,
                generations: 8,
                seed: 5,
                ..GeneticConfig::default()
            })),
        ),
    ];
    if small {
        algos.push(("exact", Box::new(ExactAlgorithm::new())));
    }
    algos
}

fn check_equivalence(
    model: &DeploymentModel,
    initial: &Deployment,
    objective: &dyn Objective,
    small: bool,
) {
    for (name, algo) in algorithms(small) {
        let fast = algo
            .run(model, objective, model.constraints(), Some(initial))
            .unwrap();
        let slow = algo
            .run(
                model,
                &Uncompiled(objective),
                model.constraints(),
                Some(initial),
            )
            .unwrap();
        assert_eq!(
            fast.deployment,
            slow.deployment,
            "{name}/{}: deployments diverge",
            objective.name()
        );
        assert!(
            (fast.value - slow.value).abs() <= 1e-12 * fast.value.abs().max(1.0),
            "{name}/{}: {} vs {}",
            objective.name(),
            fast.value,
            slow.value
        );
        assert_eq!(
            fast.evaluations,
            slow.evaluations,
            "{name}/{}: evaluation counts diverge",
            objective.name()
        );
        // The naive path never uses delta scoring.
        assert_eq!(slow.delta_evaluations, 0, "{name}");
        assert_eq!(slow.full_evaluations, slow.evaluations, "{name}");
    }
}

#[test]
fn all_six_bodies_agree_on_availability_small_instance() {
    let (m, init) = generated(3, 6, 11);
    check_equivalence(&m, &init, &Availability, true);
}

#[test]
fn approximative_bodies_agree_on_availability_medium_instance() {
    let (m, init) = generated(6, 18, 12);
    check_equivalence(&m, &init, &Availability, false);
}

#[test]
fn all_six_bodies_agree_on_every_single_objective() {
    let (m, init) = generated(3, 5, 13);
    check_equivalence(&m, &init, &Availability, true);
    check_equivalence(&m, &init, &PathAwareAvailability, true);
    check_equivalence(&m, &init, &Latency::new(), true);
    check_equivalence(&m, &init, &CommunicationVolume, true);
    check_equivalence(&m, &init, &LinkSecurity, true);
}

#[test]
fn all_six_bodies_agree_on_a_weighted_composite() {
    let (m, init) = generated(3, 5, 14);
    let composite = Composite::new()
        .with("availability", Availability, 2.0)
        .with("latency", Latency::new(), 1.0)
        .with("security", LinkSecurity, 0.5);
    check_equivalence(&m, &init, &composite, true);
}

#[test]
fn compiled_paths_actually_use_delta_scoring() {
    // Guard against silently falling back to the naive body: the three
    // move-based searches must report delta evaluations on the compiled path.
    let (m, init) = generated(4, 10, 15);
    let exact = ExactAlgorithm::new()
        .run(&m, &Availability, m.constraints(), Some(&init))
        .unwrap();
    assert!(exact.delta_evaluations > 0, "exact fell back to naive");
    let annealing = AnnealingAlgorithm::with_config(AnnealingConfig {
        iterations: 300,
        ..AnnealingConfig::default()
    })
    .run(&m, &Availability, m.constraints(), Some(&init))
    .unwrap();
    assert!(
        annealing.delta_evaluations > 0,
        "annealing fell back to naive"
    );
    let avala = AvalaAlgorithm::new()
        .run(&m, &Availability, m.constraints(), Some(&init))
        .unwrap();
    assert!(avala.delta_evaluations > 0, "avala fell back to naive");
}
