//! Cross-algorithm quality checks on small instances where the Exact
//! optimum is computable — the premise of experiment E4.

use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm,
    RedeploymentAlgorithm, StochasticAlgorithm,
};
use redep_model::{Availability, Generator, GeneratorConfig, Latency, Objective};

fn small_instance(seed: u64) -> (redep_model::DeploymentModel, redep_model::Deployment) {
    let s = Generator::generate(&GeneratorConfig::sized(3, 8).with_seed(seed)).unwrap();
    (s.model, s.initial)
}

#[test]
fn approximative_algorithms_are_near_optimal_on_small_instances() {
    let mut ratios: Vec<(&str, f64)> = Vec::new();
    for seed in 0..5 {
        let (m, init) = small_instance(seed);
        let optimal = ExactAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap()
            .value;
        assert!(optimal > 0.0);

        let algos: Vec<(&str, Box<dyn RedeploymentAlgorithm>)> = vec![
            ("avala", Box::new(AvalaAlgorithm::new())),
            ("stochastic", Box::new(StochasticAlgorithm::new())),
            ("genetic", Box::new(GeneticAlgorithm::new())),
            ("annealing", Box::new(AnnealingAlgorithm::new())),
            ("decap", Box::new(DecApAlgorithm::new())),
        ];
        for (name, algo) in algos {
            let r = algo
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            assert!(
                r.value <= optimal + 1e-9,
                "{name} beat the optimum?! {} > {optimal}",
                r.value
            );
            ratios.push((name, r.value / optimal));
        }
    }
    // Every approximative algorithm should land within 25% of optimal on
    // these tiny instances, and the mean should be well above 85%.
    for (name, ratio) in &ratios {
        assert!(*ratio > 0.75, "{name} achieved only {ratio:.3} of optimal");
    }
    let mean: f64 = ratios.iter().map(|(_, r)| r).sum::<f64>() / ratios.len() as f64;
    assert!(mean > 0.85, "mean quality ratio {mean:.3}");
}

#[test]
fn exact_dominates_every_other_algorithm() {
    let (m, init) = small_instance(7);
    let optimal = ExactAlgorithm::new()
        .run(&m, &Availability, m.constraints(), Some(&init))
        .unwrap();
    let avala = AvalaAlgorithm::new()
        .run(&m, &Availability, m.constraints(), Some(&init))
        .unwrap();
    assert!(optimal.value >= avala.value - 1e-12);
}

#[test]
fn algorithms_also_reduce_latency_when_asked_to() {
    // Variation point 1: swap the objective, keep the bodies.
    let (m, init) = small_instance(9);
    let before = Latency::new().evaluate(&m, &init);
    for algo in [
        Box::new(ExactAlgorithm::new()) as Box<dyn RedeploymentAlgorithm>,
        Box::new(AvalaAlgorithm::new()),
        Box::new(StochasticAlgorithm::new()),
    ] {
        let r = algo
            .run(&m, &Latency::new(), m.constraints(), Some(&init))
            .unwrap();
        assert!(
            r.value <= before + 1e-9,
            "{} raised latency: {} -> {}",
            algo.name(),
            before,
            r.value
        );
    }
}

#[test]
fn paper_claim_availability_improvement_also_tends_to_reduce_latency() {
    // §5.1: "The algorithms used in this scenario also typically decrease
    // the system's overall latency." Check the tendency across seeds.
    let mut improved = 0;
    let mut total = 0;
    for seed in 0..10 {
        let (m, init) = small_instance(seed);
        let before = Latency::new().evaluate(&m, &init);
        let r = AvalaAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        let after = Latency::new().evaluate(&m, &r.deployment);
        total += 1;
        if after <= before + 1e-9 {
            improved += 1;
        }
    }
    assert!(
        improved * 2 > total,
        "latency improved in only {improved}/{total} cases"
    );
}
