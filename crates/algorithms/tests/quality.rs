//! Cross-algorithm quality checks on small instances where the Exact
//! optimum is computable — the premise of experiment E4.

use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm,
    RedeploymentAlgorithm, StochasticAlgorithm,
};
use redep_model::{Availability, Generator, GeneratorConfig, Latency, Objective};

fn small_instance(seed: u64) -> (redep_model::DeploymentModel, redep_model::Deployment) {
    let s = Generator::generate(&GeneratorConfig::sized(3, 8).with_seed(seed)).unwrap();
    (s.model, s.initial)
}

#[test]
fn approximative_algorithms_are_near_optimal_on_small_instances() {
    let mut ratios: Vec<(&str, f64)> = Vec::new();
    for seed in 0..5 {
        let (m, init) = small_instance(seed);
        let optimal = ExactAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap()
            .value;
        assert!(optimal > 0.0);

        let algos: Vec<(&str, Box<dyn RedeploymentAlgorithm>)> = vec![
            ("avala", Box::new(AvalaAlgorithm::new())),
            ("stochastic", Box::new(StochasticAlgorithm::new())),
            ("genetic", Box::new(GeneticAlgorithm::new())),
            ("annealing", Box::new(AnnealingAlgorithm::new())),
            ("decap", Box::new(DecApAlgorithm::new())),
        ];
        for (name, algo) in algos {
            let r = algo
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            assert!(
                r.value <= optimal + 1e-9,
                "{name} beat the optimum?! {} > {optimal}",
                r.value
            );
            ratios.push((name, r.value / optimal));
        }
    }
    // Every approximative algorithm should land within 25% of optimal on
    // these tiny instances, and the mean should be well above 85%.
    for (name, ratio) in &ratios {
        assert!(*ratio > 0.75, "{name} achieved only {ratio:.3} of optimal");
    }
    let mean: f64 = ratios.iter().map(|(_, r)| r).sum::<f64>() / ratios.len() as f64;
    assert!(mean > 0.85, "mean quality ratio {mean:.3}");
}

#[test]
fn exact_dominates_every_other_algorithm() {
    let (m, init) = small_instance(7);
    let optimal = ExactAlgorithm::new()
        .run(&m, &Availability, m.constraints(), Some(&init))
        .unwrap();
    let avala = AvalaAlgorithm::new()
        .run(&m, &Availability, m.constraints(), Some(&init))
        .unwrap();
    assert!(optimal.value >= avala.value - 1e-12);
}

#[test]
fn algorithms_also_reduce_latency_when_asked_to() {
    // Variation point 1: swap the objective, keep the bodies.
    let (m, init) = small_instance(9);
    let before = Latency::new().evaluate(&m, &init);
    for algo in [
        Box::new(ExactAlgorithm::new()) as Box<dyn RedeploymentAlgorithm>,
        Box::new(AvalaAlgorithm::new()),
        Box::new(StochasticAlgorithm::new()),
    ] {
        let r = algo
            .run(&m, &Latency::new(), m.constraints(), Some(&init))
            .unwrap();
        assert!(
            r.value <= before + 1e-9,
            "{} raised latency: {} -> {}",
            algo.name(),
            before,
            r.value
        );
    }
}

#[test]
fn paper_claim_availability_improvement_also_tends_to_reduce_latency() {
    // §5.1: "The algorithms used in this scenario also typically decrease
    // the system's overall latency." Check the tendency across seeds.
    let mut improved = 0;
    let mut total = 0;
    for seed in 0..10 {
        let (m, init) = small_instance(seed);
        let before = Latency::new().evaluate(&m, &init);
        let r = AvalaAlgorithm::new()
            .run(&m, &Availability, m.constraints(), Some(&init))
            .unwrap();
        let after = Latency::new().evaluate(&m, &r.deployment);
        total += 1;
        if after <= before + 1e-9 {
            improved += 1;
        }
    }
    assert!(
        improved * 2 > total,
        "latency improved in only {improved}/{total} cases"
    );
}

#[test]
fn hierarchical_pruned_quality_within_two_percent_of_flat() {
    // The E3d quality bar: frontier pruning plus super-node decomposition
    // may only trade a sliver of solution quality for its throughput — the
    // pruned stochastic and annealing variants must land within 2% of their
    // flat counterparts (and actually exercise the pruning counters).
    use redep_algorithms::hierarchy::HierarchicalConfig;

    for (hosts, comps) in [(8usize, 32usize), (12, 80)] {
        let s = Generator::generate(&GeneratorConfig::sized(hosts, comps).with_seed(5)).unwrap();
        let (m, init) = (s.model, s.initial);
        let hcfg = HierarchicalConfig::default();
        let pairs: Vec<(
            Box<dyn RedeploymentAlgorithm>,
            Box<dyn RedeploymentAlgorithm>,
        )> = vec![
            (
                Box::new(StochasticAlgorithm::with_config(20, 0)),
                Box::new(StochasticAlgorithm::with_config(20, 0).with_hierarchy(hcfg)),
            ),
            (
                Box::new(AnnealingAlgorithm::new()),
                Box::new(AnnealingAlgorithm::new().with_hierarchy(hcfg)),
            ),
        ];
        for (flat, hier) in pairs {
            let f = flat
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            let h = hier
                .run(&m, &Availability, m.constraints(), Some(&init))
                .unwrap();
            assert!(
                h.value >= 0.98 * f.value,
                "{} at {hosts}x{comps}: hierarchical {} vs flat {} (more than 2% worse)",
                hier.name(),
                h.value,
                f.value
            );
            assert!(
                h.pruned_evaluations > 0,
                "{} at {hosts}x{comps}: pruning never engaged",
                hier.name()
            );
            assert!(
                h.hierarchy_clusters > 0,
                "{} at {hosts}x{comps}: no clusters reported",
                hier.name()
            );
        }
    }
}
