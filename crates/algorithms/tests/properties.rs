//! Property-based tests: every algorithm body upholds the
//! `RedeploymentAlgorithm` contract on arbitrary generated systems.

use proptest::prelude::*;
use redep_algorithms::hierarchy::HierarchicalConfig;
use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm,
    RedeploymentAlgorithm, StochasticAlgorithm,
};
use redep_model::{
    Availability, ConstraintChecker, Generator, GeneratorConfig, Latency, Objective, Range,
};

fn small_config() -> impl Strategy<Value = GeneratorConfig> {
    (2usize..=4, 2usize..=8, any::<u64>()).prop_map(|(hosts, components, seed)| GeneratorConfig {
        hosts,
        components,
        seed,
        host_memory: Range::new(500.0, 1_000.0),
        component_memory: Range::new(1.0, 20.0),
        ..GeneratorConfig::default()
    })
}

fn suite() -> Vec<Box<dyn RedeploymentAlgorithm>> {
    vec![
        Box::new(ExactAlgorithm::new()),
        Box::new(AvalaAlgorithm::new()),
        Box::new(StochasticAlgorithm::with_config(30, 0)),
        Box::new(GeneticAlgorithm::new()),
        Box::new(AnnealingAlgorithm::new()),
        Box::new(DecApAlgorithm::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_algorithm_returns_valid_never_worse_deployments(config in small_config()) {
        let system = Generator::generate(&config).unwrap();
        let before = Availability.evaluate(&system.model, &system.initial);
        for algo in suite() {
            let r = algo
                .run(&system.model, &Availability, system.model.constraints(), Some(&system.initial))
                .unwrap();
            // Contract 1: complete and constraint-satisfying.
            r.deployment.validate(&system.model).unwrap();
            system.model.constraints().check(&system.model, &r.deployment).unwrap();
            // Contract 2: the reported value IS the objective of the result.
            let actual = Availability.evaluate(&system.model, &r.deployment);
            prop_assert!((actual - r.value).abs() < 1e-9, "{}: reported {} actual {}", algo.name(), r.value, actual);
            // Contract 3: never worse than the running deployment.
            prop_assert!(r.value >= before - 1e-9, "{} regressed: {} < {}", algo.name(), r.value, before);
        }
    }

    #[test]
    fn exact_dominates_all_approximative_bodies(config in small_config()) {
        let system = Generator::generate(&config).unwrap();
        let optimal = ExactAlgorithm::new()
            .run(&system.model, &Availability, system.model.constraints(), Some(&system.initial))
            .unwrap()
            .value;
        for algo in suite() {
            let r = algo
                .run(&system.model, &Availability, system.model.constraints(), Some(&system.initial))
                .unwrap();
            prop_assert!(
                r.value <= optimal + 1e-9,
                "{} beat the exact optimum: {} > {}",
                algo.name(),
                r.value,
                optimal
            );
        }
    }

    #[test]
    fn objective_swap_is_respected(config in small_config()) {
        // Variation point 1: the same bodies minimize latency when asked.
        let system = Generator::generate(&config).unwrap();
        let before = Latency::new().evaluate(&system.model, &system.initial);
        for algo in suite() {
            let r = algo
                .run(&system.model, &Latency::new(), system.model.constraints(), Some(&system.initial))
                .unwrap();
            prop_assert!(
                r.value <= before + 1e-9,
                "{} raised latency: {} -> {}",
                algo.name(),
                before,
                r.value
            );
        }
    }

    #[test]
    fn hierarchical_bodies_are_thread_invariant(config in small_config()) {
        // The hierarchical engine's contract: per-cluster refinement shards
        // merge in shard order, so the AlgoResult is byte-identical at any
        // thread count — same deployment, same value, same counters, same
        // convergence trace. Only wall time may differ.
        let system = Generator::generate(&config).unwrap();
        let hier = |threads: usize| {
            let hcfg = HierarchicalConfig { threads, ..HierarchicalConfig::default() };
            let algos: Vec<Box<dyn RedeploymentAlgorithm>> = vec![
                Box::new(AvalaAlgorithm::new().with_hierarchy(hcfg)),
                Box::new(StochasticAlgorithm::with_config(10, 0).with_hierarchy(hcfg)),
                Box::new(AnnealingAlgorithm::new().with_hierarchy(hcfg)),
                Box::new(DecApAlgorithm::new().with_hierarchy(hcfg)),
            ];
            algos
        };
        for (one, many) in hier(1).into_iter().zip(hier(8)) {
            let a = one
                .run(&system.model, &Availability, system.model.constraints(), Some(&system.initial))
                .unwrap();
            let b = many
                .run(&system.model, &Availability, system.model.constraints(), Some(&system.initial))
                .unwrap();
            prop_assert_eq!(&a.deployment, &b.deployment, "{}: deployment differs by threads", one.name());
            prop_assert_eq!(a.value, b.value, "{}: value differs by threads", one.name());
            prop_assert_eq!(a.evaluations, b.evaluations, "{}: evaluations differ by threads", one.name());
            prop_assert_eq!(a.pruned_evaluations, b.pruned_evaluations, "{}: pruned differ by threads", one.name());
            prop_assert_eq!(a.hierarchy_clusters, b.hierarchy_clusters, "{}: clusters differ by threads", one.name());
            prop_assert_eq!(a.refine_rounds, b.refine_rounds, "{}: rounds differ by threads", one.name());
            prop_assert_eq!(&a.convergence, &b.convergence, "{}: convergence differs by threads", one.name());
        }
    }

    #[test]
    fn deterministic_bodies_reproduce(config in small_config()) {
        let system = Generator::generate(&config).unwrap();
        for algo in suite() {
            let a = algo
                .run(&system.model, &Availability, system.model.constraints(), Some(&system.initial))
                .unwrap();
            let b = algo
                .run(&system.model, &Availability, system.model.constraints(), Some(&system.initial))
                .unwrap();
            prop_assert_eq!(a.deployment, b.deployment, "{} is nondeterministic", algo.name());
        }
    }
}
