//! The `MiddlewareAdapter`: DeSi's interface to a running system.
//!
//! "The MiddlewareAdapter component … provides DeSi with the same
//! information from a running, real system. MiddlewareAdapter's Monitor
//! subcomponent captures the run-time data from the external
//! MiddlewarePlatform and stores it inside the Model's SystemData component.
//! MiddlewareAdapter's Effector subcomponent … issues a set of commands to
//! the MiddlewarePlatform to modify the running system's deployment
//! architecture."
//!
//! Here the middleware platform is a [`redep_prism::PrismHost`] fleet inside
//! a [`redep_netsim::Simulator`]; the adapter exchanges data with the
//! deployer host between simulation steps.

use crate::error::DesiError;
use crate::system_data::SystemData;
use redep_model::{keys, Deployment, HostId};
use redep_netsim::Simulator;
use redep_prism::{MonitoringSnapshot, PrismHost};
use std::collections::BTreeMap;

/// Connects DeSi to a simulated Prism-MW system.
#[derive(Clone, Copy, Debug)]
pub struct MiddlewareAdapter {
    deployer_host: HostId,
}

impl MiddlewareAdapter {
    /// Creates an adapter talking to the deployer on `deployer_host`.
    pub fn new(deployer_host: HostId) -> Self {
        MiddlewareAdapter { deployer_host }
    }

    /// The Monitor subcomponent: pulls the deployer's collected monitoring
    /// snapshots into the system model — logical-link frequencies and event
    /// sizes, physical-link reliabilities, and the actual deployment.
    ///
    /// Returns the number of snapshots applied.
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::Adapter`] when the deployer host is absent or
    /// not running a deployer.
    pub fn pull_monitoring_data(
        &self,
        sim: &Simulator,
        system: &mut SystemData,
    ) -> Result<usize, DesiError> {
        let host = sim
            .node_ref::<PrismHost>(self.deployer_host)
            .ok_or_else(|| {
                DesiError::Adapter(format!("no Prism host at {}", self.deployer_host))
            })?;
        let deployer = host.deployer().ok_or_else(|| {
            DesiError::Adapter(format!("{} runs no deployer", self.deployer_host))
        })?;
        let snapshots: Vec<MonitoringSnapshot> = deployer.snapshots().values().cloned().collect();
        self.apply_snapshots(system, &snapshots)?;
        Ok(snapshots.len())
    }

    /// Applies already-extracted snapshots (exposed separately so the
    /// decentralized configuration can feed per-host snapshots through the
    /// same code path).
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::Adapter`] if a snapshot names a component the
    /// model does not know.
    pub fn apply_snapshots(
        &self,
        system: &mut SystemData,
        snapshots: &[MonitoringSnapshot],
    ) -> Result<(), DesiError> {
        let ids = system.component_ids_by_name();
        let mut deployment = system.deployment().clone();
        for snap in snapshots {
            // Deployment: the snapshot's components live on the reporting host.
            for name in snap.components.keys() {
                let id = *ids
                    .get(name)
                    .ok_or_else(|| DesiError::Adapter(format!("unknown component '{name}'")))?;
                deployment.assign(id, snap.host);
            }
            // Interaction parameters.
            for ((a, b), freq) in &snap.frequencies {
                let (Some(&ca), Some(&cb)) = (ids.get(a), ids.get(b)) else {
                    continue;
                };
                let size = snap.event_sizes.get(&(a.clone(), b.clone())).copied();
                system.model_mut().set_logical_link(ca, cb, |l| {
                    l.set_frequency(*freq);
                    if let Some(s) = size {
                        if s > 0.0 {
                            l.set_event_size(s);
                        }
                    }
                })?;
            }
            // Link reliabilities (the monitored halves; architect-provided
            // parameters like security are left untouched).
            for (peer, rel) in &snap.reliabilities {
                if system.model().contains_host(*peer) && *peer != snap.host {
                    system
                        .model_mut()
                        .set_physical_link(snap.host, *peer, |l| {
                            l.params_mut()
                                .set(keys::LINK_RELIABILITY, rel.clamp(0.0, 1.0));
                        })?;
                }
            }
        }
        system.set_deployment(deployment);
        Ok(())
    }

    /// The Effector subcomponent: pushes an improved deployment to the
    /// running system by handing the deployer a redeployment command
    /// (executed by the admins as the simulation continues).
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::Adapter`] when the deployer host is absent or
    /// not running a deployer.
    pub fn push_deployment(
        &self,
        sim: &mut Simulator,
        system: &SystemData,
        target: &Deployment,
    ) -> Result<(), DesiError> {
        self.push_deployment_traced(sim, system, target, None)
    }

    /// [`MiddlewareAdapter::push_deployment`] with the migration protocol
    /// traced: every move span (and its configure/request/transfer/ack
    /// cascade) journals as a child of `parent` — typically the framework's
    /// redeployment span for the cycle that decided the move.
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::Adapter`] when the deployer host is absent or
    /// not running a deployer.
    pub fn push_deployment_traced(
        &self,
        sim: &mut Simulator,
        system: &SystemData,
        target: &Deployment,
        parent: Option<redep_prism::TraceCtx>,
    ) -> Result<(), DesiError> {
        let mut by_name: BTreeMap<String, HostId> = BTreeMap::new();
        for (c, h) in target.iter() {
            let name = system
                .model()
                .component(c)
                .map_err(DesiError::Model)?
                .name()
                .to_owned();
            by_name.insert(name, h);
        }
        let host = sim
            .node_mut::<PrismHost>(self.deployer_host)
            .ok_or_else(|| {
                DesiError::Adapter(format!("no Prism host at {}", self.deployer_host))
            })?;
        host.effect_redeployment_traced(by_name, parent)
            .map_err(|e| DesiError::Adapter(e.to_string()))
    }

    /// Settles any still-open move spans of the deployer's current epoch as
    /// `abandoned` — called by a framework giving up on an incomplete
    /// redeployment, so no journal ends with dangling move spans.
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::Adapter`] when the deployer host is absent.
    pub fn abandon_pending_moves(&self, sim: &mut Simulator) -> Result<(), DesiError> {
        let host = sim
            .node_mut::<PrismHost>(self.deployer_host)
            .ok_or_else(|| {
                DesiError::Adapter(format!("no Prism host at {}", self.deployer_host))
            })?;
        host.abandon_pending_moves();
        Ok(())
    }

    /// Whether the last pushed redeployment has completed in the running
    /// system.
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::Adapter`] when the deployer host is absent or
    /// not running a deployer.
    pub fn redeployment_complete(&self, sim: &Simulator) -> Result<bool, DesiError> {
        let host = sim
            .node_ref::<PrismHost>(self.deployer_host)
            .ok_or_else(|| {
                DesiError::Adapter(format!("no Prism host at {}", self.deployer_host))
            })?;
        let deployer = host.deployer().ok_or_else(|| {
            DesiError::Adapter(format!("{} runs no deployer", self.deployer_host))
        })?;
        Ok(deployer.status().is_complete())
    }

    /// Whether the last pushed redeployment has *settled*: nothing is in
    /// flight anymore, though some moves may have failed for good (see
    /// [`MiddlewareAdapter::redeployment_failures`]). A settled-but-
    /// incomplete redeployment is the frameworks' cue to reconcile instead
    /// of waiting longer.
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::Adapter`] when the deployer host is absent or
    /// not running a deployer.
    pub fn redeployment_settled(&self, sim: &Simulator) -> Result<bool, DesiError> {
        let host = sim
            .node_ref::<PrismHost>(self.deployer_host)
            .ok_or_else(|| {
                DesiError::Adapter(format!("no Prism host at {}", self.deployer_host))
            })?;
        let deployer = host.deployer().ok_or_else(|| {
            DesiError::Adapter(format!("{} runs no deployer", self.deployer_host))
        })?;
        Ok(deployer.status().is_settled())
    }

    /// Moves of the last pushed redeployment the deployer has given up on,
    /// with their failure reasons.
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::Adapter`] when the deployer host is absent or
    /// not running a deployer.
    pub fn redeployment_failures(
        &self,
        sim: &Simulator,
    ) -> Result<Vec<(String, String)>, DesiError> {
        let host = sim
            .node_ref::<PrismHost>(self.deployer_host)
            .ok_or_else(|| {
                DesiError::Adapter(format!("no Prism host at {}", self.deployer_host))
            })?;
        let deployer = host.deployer().ok_or_else(|| {
            DesiError::Adapter(format!("{} runs no deployer", self.deployer_host))
        })?;
        Ok(deployer.status().failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::DeploymentModel;

    fn simple_system() -> SystemData {
        let mut m = DeploymentModel::new();
        let h0 = m.add_host("h0").unwrap();
        let h1 = m.add_host("h1").unwrap();
        m.set_physical_link(h0, h1, |_| {}).unwrap();
        let a = m.add_component("a").unwrap();
        let b = m.add_component("b").unwrap();
        m.set_logical_link(a, b, |_| {}).unwrap();
        let d: Deployment = [(a, h0), (b, h1)].into_iter().collect();
        SystemData::new(m, d)
    }

    #[test]
    fn snapshots_update_frequencies_reliabilities_and_deployment() {
        let mut sys = simple_system();
        let h0 = HostId::new(0);
        let h1 = HostId::new(1);
        let mut snap = MonitoringSnapshot {
            host: h0,
            ..MonitoringSnapshot::default()
        };
        snap.components.insert("a".into(), "w".into());
        snap.components.insert("b".into(), "w".into()); // b moved to h0!
        snap.frequencies.insert(("a".into(), "b".into()), 7.5);
        snap.event_sizes.insert(("a".into(), "b".into()), 256.0);
        snap.reliabilities.insert(h1, 0.65);

        MiddlewareAdapter::new(h0)
            .apply_snapshots(&mut sys, &[snap])
            .unwrap();

        let (a, b) = (
            sys.model().component_ids()[0],
            sys.model().component_ids()[1],
        );
        assert_eq!(sys.model().frequency(a, b), 7.5);
        assert_eq!(sys.model().event_size(a, b), 256.0);
        assert_eq!(sys.model().reliability(h0, h1), 0.65);
        assert_eq!(sys.deployment().host_of(b), Some(h0));
    }

    #[test]
    fn unknown_component_names_are_rejected() {
        let mut sys = simple_system();
        let mut snap = MonitoringSnapshot {
            host: HostId::new(0),
            ..MonitoringSnapshot::default()
        };
        snap.components.insert("ghost".into(), "w".into());
        assert!(matches!(
            MiddlewareAdapter::new(HostId::new(0)).apply_snapshots(&mut sys, &[snap]),
            Err(DesiError::Adapter(_))
        ));
    }

    #[test]
    fn adapter_errors_on_missing_deployer() {
        let sim = Simulator::new(0);
        let adapter = MiddlewareAdapter::new(HostId::new(0));
        assert!(adapter.redeployment_complete(&sim).is_err());
    }
}
