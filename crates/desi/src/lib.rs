//! # redep-desi
//!
//! **DeSi**, "a visual deployment exploration environment that supports
//! specification, manipulation, and visualization of deployment
//! architectures for large-scale, highly distributed systems" — reproduced
//! headlessly, with the same Model / View / Controller architecture as the
//! paper's Figure 4:
//!
//! * **Model** — [`SystemData`] (the system itself), [`GraphViewData`]
//!   (visualization geometry), [`AlgoResultData`] (algorithm outcomes);
//! * **View** — [`TableView`] renders the Figure 9 tabular editor as text;
//!   [`GraphView`] renders the Figure 10 deployment graph as ASCII and SVG;
//!   [`TelemetryView`] renders the run journal, metrics, and algorithm
//!   convergence traces as a text dashboard;
//! * **Controller** — the generator/modifier (re-exported from
//!   `redep-model`), the [`AlgorithmContainer`] (pluggable algorithms, the
//!   analyzer's add/remove API), and the [`MiddlewareAdapter`] that connects
//!   DeSi to a running Prism-MW system (its `Monitor` pulls monitoring data
//!   into the model; its `Effector` pushes improved deployments back).
//!
//! # Example
//!
//! ```
//! use redep_desi::{DeSi, TableView};
//! use redep_model::{Availability, GeneratorConfig};
//! use redep_algorithms::AvalaAlgorithm;
//!
//! let mut desi = DeSi::generate(&GeneratorConfig::sized(3, 8))?;
//! desi.container_mut().register(AvalaAlgorithm::new());
//! let result = desi.run_algorithm("avala", &Availability)?;
//! assert!(result.result.value > 0.0);
//! let table = TableView::new().render(desi.system(), desi.results());
//! assert!(table.contains("avala"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapter;
pub mod container;
pub mod desi;
pub mod error;
pub mod graph_view_data;
pub mod results;
pub mod system_data;
pub mod views;

pub use adapter::MiddlewareAdapter;
pub use container::AlgorithmContainer;
pub use desi::DeSi;
pub use error::DesiError;
pub use graph_view_data::{GraphViewData, NodeStyle};
pub use results::{AlgoResultData, RecordedResult};
pub use system_data::SystemData;
pub use views::{GraphView, TableView, TelemetryView};
