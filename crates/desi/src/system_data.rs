//! `SystemData`: "the key part of the Model … the software system itself in
//! terms of the architectural constructs and parameters".

use redep_model::{ComponentId, Deployment, DeploymentModel, HostId, ModelError};
use std::collections::BTreeMap;

/// The system model plus its current deployment, with a revision counter so
/// views and controllers can cheaply detect changes (DeSi's Model is
/// "reactive and accessible to the Controller via a simple API").
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SystemData {
    model: DeploymentModel,
    deployment: Deployment,
    revision: u64,
}

impl SystemData {
    /// Creates system data from a model and its current deployment.
    pub fn new(model: DeploymentModel, deployment: Deployment) -> Self {
        SystemData {
            model,
            deployment,
            revision: 0,
        }
    }

    /// The deployment-architecture model.
    pub fn model(&self) -> &DeploymentModel {
        &self.model
    }

    /// Mutable model access; bumps the revision.
    pub fn model_mut(&mut self) -> &mut DeploymentModel {
        self.revision += 1;
        &mut self.model
    }

    /// The current deployment.
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Replaces the current deployment; bumps the revision.
    pub fn set_deployment(&mut self, deployment: Deployment) {
        self.deployment = deployment;
        self.revision += 1;
    }

    /// Monotonic revision counter (any mutation increments it).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Maps component instance names to ids (for exchanges with the
    /// middleware, which addresses components by name).
    pub fn component_ids_by_name(&self) -> BTreeMap<String, ComponentId> {
        self.model
            .components()
            .map(|c| (c.name().to_owned(), c.id()))
            .collect()
    }

    /// The current deployment expressed with component names — the form the
    /// deployer ships to admins.
    pub fn deployment_by_name(&self) -> BTreeMap<String, HostId> {
        self.deployment
            .iter()
            .filter_map(|(c, h)| {
                self.model
                    .component(c)
                    .ok()
                    .map(|comp| (comp.name().to_owned(), h))
            })
            .collect()
    }

    /// Translates a name-keyed deployment into an id-keyed [`Deployment`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownComponent`] if a name is not in the
    /// model (reported with a placeholder id, as names have no id).
    pub fn deployment_from_names(
        &self,
        by_name: &BTreeMap<String, HostId>,
    ) -> Result<Deployment, ModelError> {
        let ids = self.component_ids_by_name();
        let mut d = Deployment::new();
        for (name, host) in by_name {
            let id = ids
                .get(name)
                .copied()
                .ok_or(ModelError::UnknownComponent(ComponentId::new(u32::MAX)))?;
            d.assign(id, *host);
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Generator, GeneratorConfig};

    fn data() -> SystemData {
        let s = Generator::generate(&GeneratorConfig::sized(3, 6)).unwrap();
        SystemData::new(s.model, s.initial)
    }

    #[test]
    fn revision_tracks_mutations() {
        let mut d = data();
        assert_eq!(d.revision(), 0);
        d.model_mut();
        assert_eq!(d.revision(), 1);
        let dep = d.deployment().clone();
        d.set_deployment(dep);
        assert_eq!(d.revision(), 2);
    }

    #[test]
    fn name_mapping_roundtrips() {
        let d = data();
        let by_name = d.deployment_by_name();
        assert_eq!(by_name.len(), d.deployment().len());
        let back = d.deployment_from_names(&by_name).unwrap();
        assert_eq!(&back, d.deployment());
    }

    #[test]
    fn unknown_names_error() {
        let d = data();
        let mut by_name = BTreeMap::new();
        by_name.insert("no-such-component".to_owned(), HostId::new(0));
        assert!(d.deployment_from_names(&by_name).is_err());
    }
}
