//! The tabular editor view (Figure 9), rendered as text.
//!
//! The page layout follows the figure: a **Parameters** table ("the
//! properties of every host, component, or link within a software system"),
//! a **Constraints** panel, an **Algorithms** panel, and a **Results**
//! panel.

use crate::results::AlgoResultData;
use crate::system_data::SystemData;
use std::fmt::Write as _;

/// Renders the Figure 9 table-oriented page as plain text.
#[derive(Clone, Copy, Debug, Default)]
pub struct TableView;

impl TableView {
    /// Creates the view.
    pub fn new() -> Self {
        TableView
    }

    /// Renders the parameters / constraints / algorithms / results page.
    pub fn render(&self, system: &SystemData, results: &AlgoResultData) -> String {
        let mut out = String::new();
        self.render_parameters(&mut out, system);
        self.render_constraints(&mut out, system);
        self.render_results(&mut out, system, results);
        out
    }

    fn rule(out: &mut String, title: &str) {
        let _ = writeln!(
            out,
            "\n=== {title} {}",
            "=".repeat(60usize.saturating_sub(title.len()))
        );
    }

    fn render_parameters(&self, out: &mut String, system: &SystemData) {
        let model = system.model();
        Self::rule(out, "Parameters");
        let _ = writeln!(out, "{:<10} {:<18} PARAMETERS", "HOST", "NAME");
        for host in model.hosts() {
            let params: Vec<String> = host
                .params()
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = writeln!(
                out,
                "{:<10} {:<18} {}",
                host.id().to_string(),
                host.name(),
                params.join(", ")
            );
        }
        let _ = writeln!(
            out,
            "\n{:<10} {:<18} {:<8} PARAMETERS",
            "COMPONENT", "NAME", "HOST"
        );
        for component in model.components() {
            let params: Vec<String> = component
                .params()
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let host = system
                .deployment()
                .host_of(component.id())
                .map(|h| h.to_string())
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:<10} {:<18} {:<8} {}",
                component.id().to_string(),
                component.name(),
                host,
                params.join(", ")
            );
        }
        let _ = writeln!(out, "\n{:<12} PARAMETERS", "PHYS.LINK");
        for link in model.physical_links() {
            let params: Vec<String> = link
                .params()
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = writeln!(out, "{:<12} {}", link.ends().to_string(), params.join(", "));
        }
        let _ = writeln!(out, "\n{:<12} PARAMETERS", "LOG.LINK");
        for link in model.logical_links() {
            let params: Vec<String> = link
                .params()
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = writeln!(out, "{:<12} {}", link.ends().to_string(), params.join(", "));
        }
    }

    fn render_constraints(&self, out: &mut String, system: &SystemData) {
        Self::rule(out, "Constraints");
        let constraints = system.model().constraints();
        if constraints.is_empty() {
            let _ = writeln!(out, "(none)");
        }
        for c in constraints.iter() {
            let _ = writeln!(out, "- {c}");
        }
        let _ = writeln!(
            out,
            "memory capacity check: {}",
            if constraints.enforces_memory() {
                "on"
            } else {
                "off"
            }
        );
    }

    fn render_results(&self, out: &mut String, _system: &SystemData, results: &AlgoResultData) {
        Self::rule(out, "Results");
        let _ = writeln!(
            out,
            "{:<12} {:<14} {:>12} {:>10} {:>7} {:>12} {:>12}",
            "ALGORITHM", "OBJECTIVE", "VALUE", "AVAIL", "MOVES", "EST.EFFECT", "RUNTIME"
        );
        for r in results.records() {
            let _ = writeln!(
                out,
                "{:<12} {:<14} {:>12.4} {:>10.4} {:>7} {:>10}ms {:>10}µs",
                r.result.algorithm,
                r.objective,
                r.result.value,
                r.availability,
                r.moves,
                r.estimated_effect_time.as_millis(),
                r.result.wall_time.as_micros(),
            );
        }
        if results.is_empty() {
            let _ = writeln!(out, "(no algorithms run yet)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::RecordedResult;
    use redep_algorithms::{AvalaAlgorithm, RedeploymentAlgorithm};
    use redep_model::{Availability, Constraint, Generator, GeneratorConfig};

    fn system() -> SystemData {
        let s = Generator::generate(&GeneratorConfig::sized(3, 6)).unwrap();
        SystemData::new(s.model, s.initial)
    }

    #[test]
    fn renders_all_four_sections() {
        let sys = system();
        let text = TableView::new().render(&sys, &AlgoResultData::new());
        for section in ["Parameters", "Constraints", "Results"] {
            assert!(text.contains(section), "missing section {section}");
        }
        assert!(text.contains("host-0"));
        assert!(text.contains("comp-0"));
        assert!(text.contains("(no algorithms run yet)"));
    }

    #[test]
    fn lists_every_entity() {
        let sys = system();
        let text = TableView::new().render(&sys, &AlgoResultData::new());
        for host in sys.model().hosts() {
            assert!(text.contains(host.name()));
        }
        for component in sys.model().components() {
            assert!(text.contains(component.name()));
        }
    }

    #[test]
    fn shows_constraints_and_results() {
        let mut sys = system();
        let c0 = sys.model().component_ids()[0];
        let h0 = sys.model().host_ids()[0];
        sys.model_mut().constraints_mut().add(Constraint::PinnedTo {
            component: c0,
            hosts: std::collections::BTreeSet::from([h0]),
        });
        let mut results = AlgoResultData::new();
        let raw = AvalaAlgorithm::new()
            .run(
                sys.model(),
                &Availability,
                sys.model().constraints(),
                Some(sys.deployment()),
            )
            .unwrap();
        results.push(RecordedResult::new(
            sys.model(),
            sys.deployment(),
            &Availability,
            raw,
        ));
        let text = TableView::new().render(&sys, &results);
        assert!(text.contains("pinned to"));
        assert!(text.contains("avala"));
        assert!(text.contains("availability"));
    }
}
