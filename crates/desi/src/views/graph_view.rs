//! The graph-oriented view (Figure 10): hosts as white boxes, components as
//! shaded boxes inside them, solid lines for physical links, thin lines for
//! logical links. Rendered as SVG (faithful) and ASCII (terminal-friendly
//! thumbnail — the figure's overview pane).

use crate::graph_view_data::GraphViewData;
use crate::system_data::SystemData;
use std::fmt::Write as _;

/// Renders deployment graphs from a [`GraphViewData`] layout.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphView;

impl GraphView {
    /// Creates the view.
    pub fn new() -> Self {
        GraphView
    }

    /// Renders the full SVG graph (Figure 10's main pane).
    pub fn render_svg(&self, system: &SystemData, layout: &GraphViewData) -> String {
        let model = system.model();
        let (w, h) = layout.canvas();
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
        );
        let _ = writeln!(
            svg,
            r##"<rect width="100%" height="100%" fill="#fafafa"/>"##
        );

        // Physical links first (solid black, under the boxes).
        for link in model.physical_links() {
            let ends = link.ends();
            if let (Some((x1, y1)), Some((x2, y2))) =
                (layout.host_center(ends.lo()), layout.host_center(ends.hi()))
            {
                let _ = writeln!(
                    svg,
                    r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="black" stroke-width="2"><title>{} rel={:.2}</title></line>"#,
                    ends,
                    link.reliability()
                );
            }
        }
        // Logical links (thin gray).
        for link in model.logical_links() {
            let ends = link.ends();
            if let (Some((x1, y1)), Some((x2, y2))) = (
                layout.component_center(ends.lo()),
                layout.component_center(ends.hi()),
            ) {
                let _ = writeln!(
                    svg,
                    r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="#888888" stroke-width="0.7"><title>{} freq={:.2}</title></line>"##,
                    ends,
                    link.frequency()
                );
            }
        }
        // Host boxes (white) with their components (shaded).
        let comp = GraphViewData::COMPONENT_SIZE * layout.zoom();
        for (hid, hl) in layout.layouts() {
            let name = model
                .host(hid)
                .map(|x| x.name().to_owned())
                .unwrap_or_default();
            let _ = writeln!(
                svg,
                r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{}" stroke="black" stroke-width="{}"/>"#,
                hl.x,
                hl.y,
                hl.width,
                hl.height,
                layout.host_style().fill,
                layout.host_style().border
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" font-size="{:.0}" font-family="sans-serif">{name} ({hid})</text>"#,
                hl.x + 4.0,
                hl.y + 11.0 * layout.zoom(),
                10.0 * layout.zoom()
            );
            for (cid, (x, y)) in &hl.components {
                let cname = model
                    .component(*cid)
                    .map(|c| c.name().to_owned())
                    .unwrap_or_default();
                let _ = writeln!(
                    svg,
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{comp:.1}" height="{comp:.1}" fill="{}" stroke="black" stroke-width="{}"><title>{cname}</title></rect>"#,
                    layout.component_style().fill,
                    layout.component_style().border
                );
                let _ = writeln!(
                    svg,
                    r#"<text x="{:.1}" y="{:.1}" font-size="{:.0}" font-family="sans-serif">{cid}</text>"#,
                    x + 3.0,
                    y + comp / 2.0 + 3.0,
                    8.0 * layout.zoom()
                );
            }
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Renders the ASCII thumbnail: one line per host listing its
    /// components, plus the physical topology (Figure 10's overview pane).
    pub fn render_ascii(&self, system: &SystemData) -> String {
        let model = system.model();
        let deployment = system.deployment();
        let mut out = String::new();
        for host in model.hosts() {
            let comps: Vec<String> = deployment
                .components_on(host.id())
                .into_iter()
                .filter_map(|c| model.component(c).ok().map(|x| x.name().to_owned()))
                .collect();
            let _ = writeln!(
                out,
                "[{} {}]: {}",
                host.id(),
                host.name(),
                if comps.is_empty() {
                    "(empty)".to_owned()
                } else {
                    comps.join(", ")
                }
            );
        }
        let _ = writeln!(out, "links:");
        for link in model.physical_links() {
            let _ = writeln!(
                out,
                "  {}  rel={:.2} bw={:.0} delay={:.2}",
                link.ends(),
                link.reliability(),
                link.bandwidth(),
                link.delay()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Generator, GeneratorConfig};

    fn system() -> SystemData {
        let s = Generator::generate(&GeneratorConfig::sized(3, 6)).unwrap();
        SystemData::new(s.model, s.initial)
    }

    #[test]
    fn svg_contains_every_entity() {
        let sys = system();
        let layout = GraphViewData::layout(sys.model(), sys.deployment());
        let svg = GraphView::new().render_svg(&sys, &layout);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One white rect per host, one shaded per component.
        assert_eq!(svg.matches(r##"fill="#ffffff""##).count(), 3);
        assert_eq!(svg.matches(r##"fill="#d9d9d9""##).count(), 6);
        // Physical links drawn solid, logical thin.
        assert_eq!(
            svg.matches(r#"stroke="black" stroke-width="2""#).count(),
            sys.model().physical_link_count()
        );
        assert_eq!(
            svg.matches(r##"stroke="#888888""##).count(),
            sys.model().logical_link_count()
        );
    }

    #[test]
    fn ascii_lists_hosts_components_and_links() {
        let sys = system();
        let text = GraphView::new().render_ascii(&sys);
        assert!(text.contains("host-0"));
        assert!(text.contains("comp-"));
        assert!(text.contains("links:"));
        assert!(text.contains("rel="));
    }

    #[test]
    fn zoomed_svg_is_larger() {
        let sys = system();
        let z1 = GraphViewData::layout_zoomed(sys.model(), sys.deployment(), 1.0);
        let z2 = GraphViewData::layout_zoomed(sys.model(), sys.deployment(), 2.0);
        let svg1 = GraphView::new().render_svg(&sys, &z1);
        let svg2 = GraphView::new().render_svg(&sys, &z2);
        assert_ne!(svg1, svg2);
    }
}
