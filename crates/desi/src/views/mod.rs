//! DeSi's View subsystem: renderers over the Model.
//!
//! "The current architecture of the View subsystem contains two components —
//! GraphView and TableView." Both are pure functions of the Model (the
//! decoupling the paper calls out: new visualizations of the same models,
//! or the same visualizations on new models). The telemetry view extends
//! the subsystem the same way: a third pure renderer, over the run journal
//! and convergence traces instead of the deployment model.

mod graph_view;
mod table_view;
mod telemetry_view;

pub use graph_view::GraphView;
pub use table_view::TableView;
pub use telemetry_view::TelemetryView;
