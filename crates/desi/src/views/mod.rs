//! DeSi's View subsystem: renderers over the Model.
//!
//! "The current architecture of the View subsystem contains two components —
//! GraphView and TableView." Both are pure functions of the Model (the
//! decoupling the paper calls out: new visualizations of the same models,
//! or the same visualizations on new models).

mod graph_view;
mod table_view;

pub use graph_view::GraphView;
pub use table_view::TableView;
