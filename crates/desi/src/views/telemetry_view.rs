//! The telemetry dashboard view: the run journal and algorithm convergence
//! traces, rendered as text alongside the Figure 9/10 views.
//!
//! Where [`TableView`](crate::TableView) shows *what the system is* and
//! [`GraphView`](crate::GraphView) *where everything runs*, the telemetry
//! view shows *what happened during the run*: journal shape, event counts,
//! metric values, and an ASCII convergence plot per recorded algorithm
//! result.

use crate::results::AlgoResultData;
use redep_telemetry::Telemetry;
use std::fmt::Write as _;

/// ASCII intensity ramp used for the convergence sparklines (low → high).
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders a telemetry handle plus recorded algorithm results as a
/// text dashboard.
#[derive(Clone, Copy, Debug, Default)]
pub struct TelemetryView {
    width: usize,
}

impl TelemetryView {
    /// Default sparkline width, in characters.
    pub const DEFAULT_WIDTH: usize = 48;

    /// Creates the view with the default sparkline width.
    pub fn new() -> Self {
        TelemetryView {
            width: Self::DEFAULT_WIDTH,
        }
    }

    /// Overrides the sparkline width (clamped to at least 8 characters).
    #[must_use]
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width.max(8);
        self
    }

    /// Renders the journal/metrics digest and the convergence panel.
    pub fn render(&self, telemetry: &Telemetry, results: &AlgoResultData) -> String {
        let mut out = String::new();
        Self::rule(&mut out, "Telemetry");
        for line in telemetry.summary().lines() {
            let _ = writeln!(out, "{line}");
        }
        self.render_convergence(&mut out, results);
        out
    }

    fn rule(out: &mut String, title: &str) {
        let _ = writeln!(
            out,
            "\n=== {title} {}",
            "=".repeat(60usize.saturating_sub(title.len()))
        );
    }

    fn render_convergence(&self, out: &mut String, results: &AlgoResultData) {
        Self::rule(out, "Convergence");
        if results.is_empty() {
            let _ = writeln!(out, "(no algorithms run yet)");
            return;
        }
        for r in results.records() {
            let trace = &r.result.convergence;
            let _ = writeln!(
                out,
                "{:<12} {:<14} {} point{} -> final {:.4}",
                r.result.algorithm,
                r.objective,
                trace.len(),
                if trace.len() == 1 { "" } else { "s" },
                r.result.value,
            );
            if let Some(spark) = self.sparkline(trace) {
                let first = trace.first().expect("non-empty trace");
                let last = trace.last().expect("non-empty trace");
                let _ = writeln!(
                    out,
                    "  [{spark}]  {:.4} @ {} .. {:.4} @ {}",
                    first.1, first.0, last.1, last.0
                );
            }
        }
    }

    /// Maps a trace to a fixed-width ASCII sparkline, step-sampling the
    /// progress axis and ramping value between the trace's min and max.
    /// Returns `None` for traces too short to plot.
    fn sparkline(&self, trace: &[(u64, f64)]) -> Option<String> {
        if trace.len() < 2 {
            return None;
        }
        let (lo, hi) = trace
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, v)| {
                (lo.min(v), hi.max(v))
            });
        let span = hi - lo;
        let cells = self.width.min(trace.len().max(2));
        let mut spark = String::with_capacity(cells);
        for cell in 0..cells {
            // Sample the trace entry whose index maps onto this cell.
            let idx = cell * (trace.len() - 1) / (cells - 1);
            let v = trace[idx].1;
            let level = if span <= f64::EPSILON {
                RAMP.len() - 1
            } else {
                (((v - lo) / span) * (RAMP.len() - 1) as f64).round() as usize
            };
            spark.push(RAMP[level.min(RAMP.len() - 1)] as char);
        }
        Some(spark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::RecordedResult;
    use crate::system_data::SystemData;
    use redep_algorithms::{RedeploymentAlgorithm, StochasticAlgorithm};
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn recorded() -> AlgoResultData {
        let s = Generator::generate(&GeneratorConfig::sized(3, 8).with_seed(7)).unwrap();
        let sys = SystemData::new(s.model, s.initial);
        let mut results = AlgoResultData::new();
        let raw = StochasticAlgorithm::new()
            .run(
                sys.model(),
                &Availability,
                sys.model().constraints(),
                Some(sys.deployment()),
            )
            .unwrap();
        results.push(RecordedResult::new(
            sys.model(),
            sys.deployment(),
            &Availability,
            raw,
        ));
        results
    }

    #[test]
    fn renders_summary_and_convergence_sections() {
        let tele = Telemetry::new(16);
        tele.event("net.link.drop", 1_000)
            .field("reason", "loss")
            .emit();
        tele.metrics().counter("net.sent").add(3);
        let text = TelemetryView::new().render(&tele, &recorded());
        assert!(text.contains("Telemetry"), "{text}");
        assert!(text.contains("net.link.drop"), "{text}");
        assert!(text.contains("net.sent"), "{text}");
        assert!(text.contains("Convergence"), "{text}");
        assert!(text.contains("stochastic"), "{text}");
    }

    #[test]
    fn empty_results_say_so() {
        let text = TelemetryView::new().render(&Telemetry::disabled(), &AlgoResultData::new());
        assert!(text.contains("(no algorithms run yet)"));
        assert!(text.contains("disabled"));
    }

    #[test]
    fn sparkline_spans_the_value_range() {
        let view = TelemetryView::new().with_width(10);
        let trace: Vec<(u64, f64)> = (0..20).map(|i| (i, i as f64)).collect();
        let spark = view.sparkline(&trace).unwrap();
        assert_eq!(spark.len(), 10);
        assert!(
            spark.starts_with(' '),
            "lowest value maps to ramp start: {spark:?}"
        );
        assert!(
            spark.ends_with('@'),
            "highest value maps to ramp end: {spark:?}"
        );
    }

    #[test]
    fn flat_and_short_traces_are_handled() {
        let view = TelemetryView::new();
        assert!(view.sparkline(&[(1, 0.5)]).is_none());
        let flat = view.sparkline(&[(1, 0.5), (2, 0.5), (3, 0.5)]).unwrap();
        assert!(flat.bytes().all(|b| b == b'@'), "{flat:?}");
    }
}
