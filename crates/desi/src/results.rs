//! `AlgoResultData`: "facilities for capturing the outcomes of the
//! different deployment estimation algorithms: estimated deployment
//! architectures …, achieved availability, algorithm's running time,
//! estimated time to effect a redeployment, and so on."

use redep_algorithms::AlgoResult;
use redep_model::{Availability, Deployment, DeploymentModel, Latency, Objective};
use std::time::Duration;

/// One recorded algorithm outcome, enriched with the standard quality
/// measures regardless of which objective the algorithm optimized.
#[derive(Clone, PartialEq, Debug)]
pub struct RecordedResult {
    /// The raw algorithm result.
    pub result: AlgoResult,
    /// Name of the objective the algorithm optimized.
    pub objective: String,
    /// Availability of the proposed deployment.
    pub availability: f64,
    /// Latency of the proposed deployment.
    pub latency: f64,
    /// Number of component moves relative to the deployment the algorithm
    /// started from.
    pub moves: usize,
    /// Estimated time to effect the redeployment (moves × per-move cost).
    pub estimated_effect_time: Duration,
}

impl RecordedResult {
    /// Nominal cost of migrating one component, used for the effect-time
    /// estimate shown in the results panel.
    pub const PER_MOVE_COST: Duration = Duration::from_millis(500);

    /// Enriches a raw result against the model and the running deployment.
    pub fn new(
        model: &DeploymentModel,
        current: &Deployment,
        objective: &dyn Objective,
        result: AlgoResult,
    ) -> Self {
        let availability = Availability.evaluate(model, &result.deployment);
        let latency = Latency::new().evaluate(model, &result.deployment);
        let moves = current.diff(&result.deployment).len();
        RecordedResult {
            objective: objective.name().to_owned(),
            availability,
            latency,
            moves,
            estimated_effect_time: Self::PER_MOVE_COST * moves as u32,
            result,
        }
    }
}

/// The ordered log of recorded algorithm outcomes.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct AlgoResultData {
    records: Vec<RecordedResult>,
}

impl AlgoResultData {
    /// Creates an empty log.
    pub fn new() -> Self {
        AlgoResultData::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: RecordedResult) {
        self.records.push(record);
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[RecordedResult] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with the best availability, if any.
    pub fn best_availability(&self) -> Option<&RecordedResult> {
        self.records.iter().reduce(|a, b| {
            if b.availability > a.availability {
                b
            } else {
                a
            }
        })
    }

    /// The record with the lowest latency, if any.
    pub fn best_latency(&self) -> Option<&RecordedResult> {
        self.records
            .iter()
            .reduce(|a, b| if b.latency < a.latency { b } else { a })
    }

    /// The most recent record for a given algorithm name.
    pub fn latest_of(&self, algorithm: &str) -> Option<&RecordedResult> {
        self.records
            .iter()
            .rev()
            .find(|r| r.result.algorithm == algorithm)
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_algorithms::{AvalaAlgorithm, RedeploymentAlgorithm, StochasticAlgorithm};
    use redep_model::{Generator, GeneratorConfig};

    fn recorded() -> (DeploymentModel, Deployment, AlgoResultData) {
        let s = Generator::generate(&GeneratorConfig::sized(3, 8)).unwrap();
        let mut data = AlgoResultData::new();
        for algo in [
            Box::new(AvalaAlgorithm::new()) as Box<dyn RedeploymentAlgorithm>,
            Box::new(StochasticAlgorithm::new()),
        ] {
            let r = algo
                .run(
                    &s.model,
                    &Availability,
                    s.model.constraints(),
                    Some(&s.initial),
                )
                .unwrap();
            data.push(RecordedResult::new(&s.model, &s.initial, &Availability, r));
        }
        (s.model, s.initial, data)
    }

    #[test]
    fn records_are_enriched_with_both_quality_measures() {
        let (_, _, data) = recorded();
        assert_eq!(data.len(), 2);
        for r in data.records() {
            assert!((0.0..=1.0).contains(&r.availability));
            assert!(r.latency >= 0.0);
            assert_eq!(
                r.estimated_effect_time,
                RecordedResult::PER_MOVE_COST * r.moves as u32
            );
        }
    }

    #[test]
    fn best_selectors_work() {
        let (_, _, data) = recorded();
        let best = data.best_availability().unwrap();
        for r in data.records() {
            assert!(best.availability >= r.availability);
        }
        assert!(data.best_latency().is_some());
    }

    #[test]
    fn latest_of_finds_by_algorithm_name() {
        let (_, _, data) = recorded();
        assert!(data.latest_of("avala").is_some());
        assert!(data.latest_of("ghost").is_none());
    }
}
