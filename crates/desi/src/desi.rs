//! The DeSi facade: one object wiring the Model, View and Controller
//! subsystems together.

use crate::container::AlgorithmContainer;
use crate::error::DesiError;
use crate::graph_view_data::GraphViewData;
use crate::results::{AlgoResultData, RecordedResult};
use crate::system_data::SystemData;
use crate::views::{GraphView, TableView};
use redep_model::{
    AdlDocument, Deployment, DeploymentModel, Generator, GeneratorConfig, Modifier, Objective,
};

/// The deployment exploration environment.
///
/// See the [crate docs](crate) for the architecture; this type is the
/// convenient entry point used by examples, experiments, and the framework's
/// centralized instantiation.
#[derive(Debug, Default)]
pub struct DeSi {
    system: SystemData,
    results: AlgoResultData,
    container: AlgorithmContainer,
    modifier: Modifier,
}

impl DeSi {
    /// Creates an environment around an existing model and deployment.
    pub fn new(model: DeploymentModel, deployment: Deployment) -> Self {
        DeSi {
            system: SystemData::new(model, deployment),
            results: AlgoResultData::new(),
            container: AlgorithmContainer::new(),
            modifier: Modifier::new(),
        }
    }

    /// Creates an environment around a freshly generated hypothetical
    /// architecture (DeSi's Generator controller).
    ///
    /// # Errors
    ///
    /// Propagates generation failures.
    pub fn generate(config: &GeneratorConfig) -> Result<Self, DesiError> {
        let s = Generator::generate(config)?;
        Ok(DeSi::new(s.model, s.initial))
    }

    /// Loads an environment from an architecture-description document
    /// (the xADL integration point). Documents without a prescribed
    /// deployment start with an empty one.
    ///
    /// # Errors
    ///
    /// Propagates parse and validation failures.
    pub fn from_adl(json: &str) -> Result<Self, DesiError> {
        let doc = AdlDocument::from_json(json)?;
        Ok(DeSi::new(doc.model, doc.deployment.unwrap_or_default()))
    }

    /// Exports the current model and deployment as an ADL document.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_adl(&self) -> Result<String, DesiError> {
        AdlDocument::new(
            self.system.model().clone(),
            Some(self.system.deployment().clone()),
        )
        .to_json()
        .map_err(DesiError::Model)
    }

    /// The Model subsystem's system data.
    pub fn system(&self) -> &SystemData {
        &self.system
    }

    /// Mutable system data (the Modifier's target).
    pub fn system_mut(&mut self) -> &mut SystemData {
        &mut self.system
    }

    /// The undoable modifier (DeSi's Modifier controller).
    pub fn modifier_mut(&mut self) -> &mut Modifier {
        &mut self.modifier
    }

    /// Applies an undoable model edit through the modifier.
    ///
    /// # Errors
    ///
    /// Propagates model lookup failures.
    pub fn modify(
        &mut self,
        edit: impl FnOnce(&mut Modifier, &mut DeploymentModel) -> Result<(), redep_model::ModelError>,
    ) -> Result<(), DesiError> {
        edit(&mut self.modifier, self.system.model_mut())?;
        Ok(())
    }

    /// Undoes the most recent modifier edit.
    ///
    /// # Errors
    ///
    /// Propagates model lookup failures.
    pub fn undo(&mut self) -> Result<bool, DesiError> {
        Ok(self.modifier.undo(self.system.model_mut())?)
    }

    /// Sensitivity analysis: how much does `objective` change if the model
    /// were edited as given? The edit is applied, the current deployment is
    /// re-scored, and the edit is rolled back — the model is left exactly as
    /// it was. Returns `(score before, score after)`.
    ///
    /// This is DeSi's exploratory "assess a system's sensitivity to changes
    /// in specific parameters (e.g., the reliability of a network link)".
    ///
    /// # Errors
    ///
    /// Propagates model lookup failures from the edit or the rollback.
    ///
    /// # Example
    ///
    /// ```
    /// use redep_desi::DeSi;
    /// use redep_model::{Availability, GeneratorConfig, keys};
    ///
    /// let mut desi = DeSi::generate(&GeneratorConfig::sized(3, 6))?;
    /// let hosts = desi.system().model().host_ids();
    /// let (before, after) = desi.sensitivity(&Availability, |m, model| {
    ///     m.set_physical_param(model, hosts[0], hosts[1], keys::LINK_RELIABILITY, 0.01)
    /// })?;
    /// assert!(after <= before); // degrading a link cannot raise availability
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn sensitivity(
        &mut self,
        objective: &dyn Objective,
        edit: impl FnOnce(&mut Modifier, &mut DeploymentModel) -> Result<(), redep_model::ModelError>,
    ) -> Result<(f64, f64), DesiError> {
        let before = objective.evaluate(self.system.model(), self.system.deployment());
        let depth = self.modifier.history_len();
        edit(&mut self.modifier, self.system.model_mut())?;
        let after = objective.evaluate(self.system.model(), self.system.deployment());
        while self.modifier.history_len() > depth {
            self.modifier.undo(self.system.model_mut())?;
        }
        Ok((before, after))
    }

    /// Recorded algorithm outcomes.
    pub fn results(&self) -> &AlgoResultData {
        &self.results
    }

    /// The algorithm registry.
    pub fn container(&self) -> &AlgorithmContainer {
        &self.container
    }

    /// The algorithm registry, mutable (register/remove algorithms).
    pub fn container_mut(&mut self) -> &mut AlgorithmContainer {
        &mut self.container
    }

    /// Runs a registered algorithm against the current system and records
    /// the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::UnknownAlgorithm`] or the algorithm's failure.
    pub fn run_algorithm(
        &mut self,
        name: &str,
        objective: &dyn Objective,
    ) -> Result<RecordedResult, DesiError> {
        self.container
            .run(name, &self.system, objective, &mut self.results)
    }

    /// Runs every registered algorithm; failures are reported per algorithm.
    pub fn run_all(
        &mut self,
        objective: &dyn Objective,
    ) -> Vec<(String, Result<RecordedResult, DesiError>)> {
        self.container
            .run_all(&self.system, objective, &mut self.results)
    }

    /// Adopts a deployment as the current one (e.g. after effecting it).
    pub fn adopt_deployment(&mut self, deployment: Deployment) {
        self.system.set_deployment(deployment);
    }

    /// Renders the tabular page (Figure 9).
    pub fn render_table(&self) -> String {
        TableView::new().render(&self.system, &self.results)
    }

    /// Renders the deployment graph as SVG (Figure 10) at the given zoom.
    pub fn render_svg(&self, zoom: f64) -> String {
        let layout =
            GraphViewData::layout_zoomed(self.system.model(), self.system.deployment(), zoom);
        GraphView::new().render_svg(&self.system, &layout)
    }

    /// Renders the ASCII overview of the deployment.
    pub fn render_ascii(&self) -> String {
        GraphView::new().render_ascii(&self.system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_algorithms::{AvalaAlgorithm, StochasticAlgorithm};
    use redep_model::{keys, Availability};

    fn desi() -> DeSi {
        DeSi::generate(&GeneratorConfig::sized(3, 8)).unwrap()
    }

    #[test]
    fn generate_run_and_render() {
        let mut d = desi();
        d.container_mut().register(AvalaAlgorithm::new());
        d.container_mut().register(StochasticAlgorithm::new());
        let outcomes = d.run_all(&Availability);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|(_, r)| r.is_ok()));
        let table = d.render_table();
        assert!(table.contains("avala") && table.contains("stochastic"));
        assert!(d.render_svg(1.0).contains("<svg"));
        assert!(d.render_ascii().contains("host-0"));
    }

    #[test]
    fn adl_roundtrip_through_the_facade() {
        let d = desi();
        let json = d.to_adl().unwrap();
        let d2 = DeSi::from_adl(&json).unwrap();
        assert_eq!(d2.system().model(), d.system().model());
        assert_eq!(d2.system().deployment(), d.system().deployment());
    }

    #[test]
    fn modify_and_undo_through_the_facade() {
        let mut d = desi();
        let h0 = d.system().model().host_ids()[0];
        let before = d.system().model().host(h0).unwrap().memory();
        d.modify(|m, model| m.set_host_param(model, h0, keys::HOST_MEMORY, 1.0))
            .unwrap();
        assert_eq!(d.system().model().host(h0).unwrap().memory(), 1.0);
        assert!(d.undo().unwrap());
        assert_eq!(d.system().model().host(h0).unwrap().memory(), before);
    }

    #[test]
    fn adopt_deployment_bumps_revision() {
        let mut d = desi();
        let rev = d.system().revision();
        let dep = d.system().deployment().clone();
        d.adopt_deployment(dep);
        assert!(d.system().revision() > rev);
    }

    #[test]
    fn unknown_algorithm_is_an_error() {
        let mut d = desi();
        assert!(d.run_algorithm("ghost", &Availability).is_err());
    }

    #[test]
    fn sensitivity_probes_without_leaving_a_trace() {
        let mut d = desi();
        let model_before = d.system().model().clone();
        let hosts = d.system().model().host_ids();
        let (before, after) = d
            .sensitivity(&Availability, |m, model| {
                m.set_physical_param(model, hosts[0], hosts[1], keys::LINK_RELIABILITY, 0.01)
            })
            .unwrap();
        // The probe changed the score (or at least could have)…
        assert!(after <= before + 1e-12);
        // …but the model is exactly as before, and the history is clean.
        assert_eq!(d.system().model(), &model_before);
    }

    #[test]
    fn sensitivity_supports_multi_edit_probes() {
        let mut d = desi();
        let model_before = d.system().model().clone();
        let hosts = d.system().model().host_ids();
        let (_, _) = d
            .sensitivity(&Availability, |m, model| {
                m.set_physical_param(model, hosts[0], hosts[1], keys::LINK_RELIABILITY, 0.2)?;
                m.set_host_param(model, hosts[0], keys::HOST_MEMORY, 1.0)
            })
            .unwrap();
        assert_eq!(d.system().model(), &model_before);
    }
}
