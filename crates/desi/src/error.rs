//! DeSi's error type.

use std::error::Error;
use std::fmt;

/// An error produced by the DeSi environment.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum DesiError {
    /// No algorithm with this name is registered in the container.
    UnknownAlgorithm(String),
    /// The underlying model operation failed.
    Model(redep_model::ModelError),
    /// The invoked algorithm failed.
    Algorithm(redep_algorithms::AlgoError),
    /// The middleware adapter could not complete an exchange.
    Adapter(String),
}

impl fmt::Display for DesiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesiError::UnknownAlgorithm(name) => write!(f, "no algorithm named '{name}'"),
            DesiError::Model(e) => write!(f, "model error: {e}"),
            DesiError::Algorithm(e) => write!(f, "algorithm error: {e}"),
            DesiError::Adapter(msg) => write!(f, "middleware adapter error: {msg}"),
        }
    }
}

impl Error for DesiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DesiError::Model(e) => Some(e),
            DesiError::Algorithm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<redep_model::ModelError> for DesiError {
    fn from(e: redep_model::ModelError) -> Self {
        DesiError::Model(e)
    }
}

impl From<redep_algorithms::AlgoError> for DesiError {
    fn from(e: redep_algorithms::AlgoError) -> Self {
        DesiError::Algorithm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        let e = DesiError::UnknownAlgorithm("ghost".into());
        assert!(e.to_string().contains("ghost"));
        let e = DesiError::from(redep_algorithms::AlgoError::NoFeasibleDeployment);
        assert!(e.source().is_some());
    }
}
