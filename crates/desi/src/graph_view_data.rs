//! `GraphViewData`: "the information needed for visualizing a system's
//! deployment architecture: graphical (e.g., color, shape, border thickness)
//! and layout (e.g., juxtaposition, movability, containment) properties".

use redep_model::{ComponentId, Deployment, DeploymentModel, HostId};
use std::collections::BTreeMap;

/// Graphical style of a node (host or component box).
#[derive(Clone, PartialEq, Debug)]
pub struct NodeStyle {
    /// Fill color (CSS color string).
    pub fill: String,
    /// Border width in pixels.
    pub border: f64,
}

impl Default for NodeStyle {
    fn default() -> Self {
        NodeStyle {
            fill: "#ffffff".into(),
            border: 1.0,
        }
    }
}

/// Computed geometry of one host box and the components inside it.
#[derive(Clone, PartialEq, Debug)]
pub struct HostLayout {
    /// Top-left corner.
    pub x: f64,
    /// Top-left corner.
    pub y: f64,
    /// Box width.
    pub width: f64,
    /// Box height.
    pub height: f64,
    /// Positions of contained components (relative to the canvas).
    pub components: BTreeMap<ComponentId, (f64, f64)>,
}

/// Deterministic layout and styling of a deployment architecture.
///
/// Hosts are placed on a circle (juxtaposition), components in a grid inside
/// their host's box (containment) — the zoomed-out arrangement of Figure 10a.
/// The `zoom` factor scales the whole canvas (Figure 10b's zoomed-in view).
#[derive(Clone, PartialEq, Debug)]
pub struct GraphViewData {
    layouts: BTreeMap<HostId, HostLayout>,
    host_style: NodeStyle,
    component_style: NodeStyle,
    zoom: f64,
    canvas: (f64, f64),
}

impl GraphViewData {
    /// Base size of a component box, before zoom.
    pub const COMPONENT_SIZE: f64 = 28.0;

    /// Computes the layout for a model and deployment at zoom `1.0`.
    pub fn layout(model: &DeploymentModel, deployment: &Deployment) -> Self {
        Self::layout_zoomed(model, deployment, 1.0)
    }

    /// Computes the layout at an explicit zoom factor.
    ///
    /// # Panics
    ///
    /// Panics if `zoom` is not positive.
    pub fn layout_zoomed(model: &DeploymentModel, deployment: &Deployment, zoom: f64) -> Self {
        assert!(zoom > 0.0, "zoom must be positive, got {zoom}");
        let hosts = model.host_ids();
        let n = hosts.len().max(1);
        let comp = Self::COMPONENT_SIZE * zoom;
        let pad = 8.0 * zoom;

        // Size each host box by its component count (grid of up to 4 wide).
        let mut boxes: BTreeMap<HostId, (usize, f64, f64)> = BTreeMap::new();
        let mut max_side = 0.0f64;
        for &h in &hosts {
            let count = deployment.components_on(h).len();
            let cols = count.clamp(1, 4);
            let rows = count.div_ceil(4).max(1);
            let w = cols as f64 * (comp + pad) + pad;
            let hgt = rows as f64 * (comp + pad) + pad + 14.0 * zoom; // title strip
            boxes.insert(h, (count, w, hgt));
            max_side = max_side.max(w).max(hgt);
        }

        // Hosts on a circle whose radius comfortably fits the largest box.
        let radius = (max_side * n as f64 / std::f64::consts::PI).max(max_side) * 0.9 + 40.0 * zoom;
        let center = radius + max_side;
        let mut layouts = BTreeMap::new();
        for (i, &h) in hosts.iter().enumerate() {
            let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            let (_, w, hgt) = boxes[&h];
            let cx = center + radius * angle.cos();
            let cy = center + radius * angle.sin();
            let (x, y) = (cx - w / 2.0, cy - hgt / 2.0);
            let mut components = BTreeMap::new();
            for (j, c) in deployment.components_on(h).into_iter().enumerate() {
                let col = (j % 4) as f64;
                let row = (j / 4) as f64;
                components.insert(
                    c,
                    (
                        x + pad + col * (comp + pad),
                        y + 14.0 * zoom + pad + row * (comp + pad),
                    ),
                );
            }
            layouts.insert(
                h,
                HostLayout {
                    x,
                    y,
                    width: w,
                    height: hgt,
                    components,
                },
            );
        }
        let side = 2.0 * (center);
        GraphViewData {
            layouts,
            host_style: NodeStyle::default(),
            component_style: NodeStyle {
                fill: "#d9d9d9".into(),
                border: 1.0,
            },
            zoom,
            canvas: (side, side),
        }
    }

    /// Layout of one host box.
    pub fn host_layout(&self, h: HostId) -> Option<&HostLayout> {
        self.layouts.get(&h)
    }

    /// Iterates over host layouts in id order.
    pub fn layouts(&self) -> impl Iterator<Item = (HostId, &HostLayout)> {
        self.layouts.iter().map(|(h, l)| (*h, l))
    }

    /// Canvas dimensions.
    pub fn canvas(&self) -> (f64, f64) {
        self.canvas
    }

    /// The zoom factor the layout was computed at.
    pub fn zoom(&self) -> f64 {
        self.zoom
    }

    /// Style applied to host boxes (white, per Figure 10).
    pub fn host_style(&self) -> &NodeStyle {
        &self.host_style
    }

    /// Style applied to component boxes (shaded, per Figure 10).
    pub fn component_style(&self) -> &NodeStyle {
        &self.component_style
    }

    /// Center point of a host box (anchor for physical-link lines).
    pub fn host_center(&self, h: HostId) -> Option<(f64, f64)> {
        self.layouts
            .get(&h)
            .map(|l| (l.x + l.width / 2.0, l.y + l.height / 2.0))
    }

    /// Center point of a component box (anchor for logical-link lines).
    pub fn component_center(&self, c: ComponentId) -> Option<(f64, f64)> {
        let comp = Self::COMPONENT_SIZE * self.zoom;
        self.layouts.values().find_map(|l| {
            l.components
                .get(&c)
                .map(|(x, y)| (x + comp / 2.0, y + comp / 2.0))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_model::{Generator, GeneratorConfig};

    fn system() -> (DeploymentModel, Deployment) {
        let s = Generator::generate(&GeneratorConfig::sized(4, 10)).unwrap();
        (s.model, s.initial)
    }

    #[test]
    fn every_host_and_component_is_placed() {
        let (m, d) = system();
        let g = GraphViewData::layout(&m, &d);
        assert_eq!(g.layouts().count(), m.host_count());
        for c in m.component_ids() {
            assert!(g.component_center(c).is_some(), "component {c} unplaced");
        }
    }

    #[test]
    fn components_are_contained_in_their_host_box() {
        let (m, d) = system();
        let g = GraphViewData::layout(&m, &d);
        for (h, l) in g.layouts() {
            for c in d.components_on(h) {
                let (x, y) = l.components[&c];
                assert!(x >= l.x && x + GraphViewData::COMPONENT_SIZE <= l.x + l.width + 1e-9);
                assert!(y >= l.y && y + GraphViewData::COMPONENT_SIZE <= l.y + l.height + 1e-9);
            }
        }
    }

    #[test]
    fn host_boxes_do_not_overlap() {
        let (m, d) = system();
        let g = GraphViewData::layout(&m, &d);
        let ls: Vec<&HostLayout> = g.layouts().map(|(_, l)| l).collect();
        for i in 0..ls.len() {
            for j in (i + 1)..ls.len() {
                let (a, b) = (ls[i], ls[j]);
                let disjoint = a.x + a.width <= b.x
                    || b.x + b.width <= a.x
                    || a.y + a.height <= b.y
                    || b.y + b.height <= a.y;
                assert!(disjoint, "host boxes {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn zoom_scales_geometry() {
        let (m, d) = system();
        let g1 = GraphViewData::layout_zoomed(&m, &d, 1.0);
        let g2 = GraphViewData::layout_zoomed(&m, &d, 2.0);
        assert!(g2.canvas().0 > g1.canvas().0);
        assert_eq!(g2.zoom(), 2.0);
    }

    #[test]
    fn layout_is_deterministic() {
        let (m, d) = system();
        assert_eq!(GraphViewData::layout(&m, &d), GraphViewData::layout(&m, &d));
    }

    #[test]
    #[should_panic(expected = "zoom must be positive")]
    fn zero_zoom_panics() {
        let (m, d) = system();
        let _ = GraphViewData::layout_zoomed(&m, &d, 0.0);
    }
}
