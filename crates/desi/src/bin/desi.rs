//! The DeSi command-line tool: generate, inspect, and improve deployment
//! architectures from the shell.
//!
//! ```sh
//! # Fabricate a hypothetical architecture and save it as an ADL document:
//! desi generate --hosts 4 --components 12 --seed 7 --out system.json
//!
//! # Render the Figure 9 table and the Figure 10 graph:
//! desi view --adl system.json --svg system.svg
//!
//! # Run an algorithm and write the improved architecture back out:
//! desi improve --adl system.json --algorithm avala --objective availability \
//!              --adopt --out improved.json
//! ```

use redep_algorithms::{
    AnnealingAlgorithm, AvalaAlgorithm, DecApAlgorithm, ExactAlgorithm, GeneticAlgorithm,
    StochasticAlgorithm,
};
use redep_desi::DeSi;
use redep_model::{
    Availability, CommunicationVolume, GeneratorConfig, Latency, LinkSecurity, Objective,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got '{}'", args[i]))?;
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            flags.insert(key.to_owned(), args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(key.to_owned(), "true".to_owned());
            i += 1;
        }
    }
    Ok(flags)
}

fn objective_by_name(name: &str) -> Result<Box<dyn Objective>, String> {
    match name {
        "availability" => Ok(Box::new(Availability)),
        "latency" => Ok(Box::new(Latency::new())),
        "volume" | "communication" => Ok(Box::new(CommunicationVolume)),
        "security" => Ok(Box::new(LinkSecurity)),
        other => Err(format!(
            "unknown objective '{other}' (try availability, latency, volume, security)"
        )),
    }
}

fn register_suite(desi: &mut DeSi) {
    let c = desi.container_mut();
    c.register(ExactAlgorithm::new());
    c.register(AvalaAlgorithm::new());
    c.register(StochasticAlgorithm::new());
    c.register(GeneticAlgorithm::new());
    c.register(AnnealingAlgorithm::new());
    c.register(DecApAlgorithm::new());
}

fn load(flags: &BTreeMap<String, String>) -> Result<DeSi, String> {
    let path = flags
        .get("adl")
        .ok_or("missing --adl <file> (an architecture description document)")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    DeSi::from_adl(&json).map_err(|e| e.to_string())
}

fn save(desi: &DeSi, path: &str) -> Result<(), String> {
    let json = desi.to_adl().map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn cmd_generate(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let get_usize = |key: &str, default: usize| -> Result<usize, String> {
        flags
            .get(key)
            .map(|v| v.parse().map_err(|_| format!("--{key} must be a number")))
            .unwrap_or(Ok(default))
    };
    let config = GeneratorConfig {
        seed: get_usize("seed", 0)? as u64,
        ..GeneratorConfig::sized(get_usize("hosts", 4)?, get_usize("components", 12)?)
    };
    let desi = DeSi::generate(&config).map_err(|e| e.to_string())?;
    match flags.get("out") {
        Some(path) => save(&desi, path),
        None => {
            println!("{}", desi.render_table());
            Ok(())
        }
    }
}

fn cmd_view(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let desi = load(flags)?;
    println!("{}", desi.render_table());
    println!("{}", desi.render_ascii());
    if let Some(path) = flags.get("svg") {
        let zoom: f64 = flags
            .get("zoom")
            .map(|v| v.parse().map_err(|_| "--zoom must be a number"))
            .unwrap_or(Ok(1.0))?;
        std::fs::write(path, desi.render_svg(zoom))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_improve(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let mut desi = load(flags)?;
    register_suite(&mut desi);
    let objective = objective_by_name(
        flags
            .get("objective")
            .map(String::as_str)
            .unwrap_or("availability"),
    )?;
    let algorithm = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("avala");

    let record = desi
        .run_algorithm(algorithm, objective.as_ref())
        .map_err(|e| e.to_string())?;
    println!(
        "{algorithm}: {} = {:.4} (availability {:.4}, latency {:.4}, {} moves, {:?})",
        objective.name(),
        record.result.value,
        record.availability,
        record.latency,
        record.moves,
        record.result.wall_time
    );
    println!("proposed deployment: {}", record.result.deployment);

    if flags.contains_key("adopt") {
        desi.adopt_deployment(record.result.deployment.clone());
    }
    if let Some(path) = flags.get("out") {
        save(&desi, path)?;
    }
    Ok(())
}

fn usage() -> &'static str {
    "DeSi — deployment exploration from the command line

USAGE:
  desi generate [--hosts N] [--components M] [--seed S] [--out file.json]
  desi view     --adl file.json [--svg out.svg] [--zoom Z]
  desi improve  --adl file.json [--algorithm NAME] [--objective NAME]
                [--adopt] [--out file.json]

ALGORITHMS:  exact, avala, stochastic, genetic, annealing, decap
OBJECTIVES:  availability, latency, volume, security"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = parse_flags(rest).and_then(|flags| match command.as_str() {
        "generate" => cmd_generate(&flags),
        "view" => cmd_view(&flags),
        "improve" => cmd_improve(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
