//! The `AlgorithmContainer`: DeSi's pluggable algorithm registry.
//!
//! "The AlgorithmContainer component invokes the selected redeployment
//! algorithms … and updates the Model's AlgoResultData." Algorithms can be
//! added and removed at run time — the API the paper's meta-level analyzers
//! use to reconfigure the framework ("it may choose to add a new low-level
//! algorithm component that computes better results for the new operational
//! scenario").

use crate::error::DesiError;
use crate::results::{AlgoResultData, RecordedResult};
use crate::system_data::SystemData;
use redep_algorithms::RedeploymentAlgorithm;
use redep_model::Objective;
use std::fmt;

/// A runtime registry of redeployment algorithms.
#[derive(Default)]
pub struct AlgorithmContainer {
    algorithms: Vec<Box<dyn RedeploymentAlgorithm>>,
}

impl fmt::Debug for AlgorithmContainer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlgorithmContainer")
            .field("algorithms", &self.names())
            .finish()
    }
}

impl AlgorithmContainer {
    /// Creates an empty container.
    pub fn new() -> Self {
        AlgorithmContainer::default()
    }

    /// Registers an algorithm (replacing any existing one with the same
    /// name, so analyzers can swap configurations in place).
    pub fn register(&mut self, algorithm: impl RedeploymentAlgorithm + 'static) {
        self.register_boxed(Box::new(algorithm));
    }

    /// Registers an already-boxed algorithm.
    pub fn register_boxed(&mut self, algorithm: Box<dyn RedeploymentAlgorithm>) {
        self.algorithms.retain(|a| a.name() != algorithm.name());
        self.algorithms.push(algorithm);
    }

    /// Removes an algorithm by name; returns whether one was removed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.algorithms.len();
        self.algorithms.retain(|a| a.name() != name);
        self.algorithms.len() != before
    }

    /// Registered algorithm names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.algorithms.iter().map(|a| a.name()).collect()
    }

    /// Whether an algorithm with this name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.algorithms.iter().any(|a| a.name() == name)
    }

    /// Looks up an algorithm by name.
    pub fn get(&self, name: &str) -> Option<&dyn RedeploymentAlgorithm> {
        self.algorithms
            .iter()
            .find(|a| a.name() == name)
            .map(AsRef::as_ref)
    }

    /// Runs one algorithm against the system and records the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`DesiError::UnknownAlgorithm`] for unregistered names and
    /// propagates algorithm failures.
    pub fn run(
        &self,
        name: &str,
        system: &SystemData,
        objective: &dyn Objective,
        results: &mut AlgoResultData,
    ) -> Result<RecordedResult, DesiError> {
        let algorithm = self
            .get(name)
            .ok_or_else(|| DesiError::UnknownAlgorithm(name.to_owned()))?;
        let raw = algorithm.run(
            system.model(),
            objective,
            system.model().constraints(),
            Some(system.deployment()),
        )?;
        let record = RecordedResult::new(system.model(), system.deployment(), objective, raw);
        results.push(record.clone());
        Ok(record)
    }

    /// Runs every registered algorithm, recording all outcomes; algorithms
    /// that fail (e.g. budget-guarded Exact on a big instance) are skipped
    /// and reported in the returned list.
    pub fn run_all(
        &self,
        system: &SystemData,
        objective: &dyn Objective,
        results: &mut AlgoResultData,
    ) -> Vec<(String, Result<RecordedResult, DesiError>)> {
        self.algorithms
            .iter()
            .map(|a| {
                (
                    a.name().to_owned(),
                    self.run(a.name(), system, objective, results),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redep_algorithms::{AvalaAlgorithm, ExactAlgorithm, StochasticAlgorithm};
    use redep_model::{Availability, Generator, GeneratorConfig};

    fn system() -> SystemData {
        let s = Generator::generate(&GeneratorConfig::sized(3, 8)).unwrap();
        SystemData::new(s.model, s.initial)
    }

    #[test]
    fn register_and_remove() {
        let mut c = AlgorithmContainer::new();
        c.register(AvalaAlgorithm::new());
        c.register(StochasticAlgorithm::new());
        assert_eq!(c.names(), ["avala", "stochastic"]);
        assert!(c.remove("avala"));
        assert!(!c.remove("avala"));
        assert!(!c.contains("avala"));
    }

    #[test]
    fn reregistration_replaces() {
        let mut c = AlgorithmContainer::new();
        c.register(StochasticAlgorithm::with_config(10, 0));
        c.register(StochasticAlgorithm::with_config(20, 1));
        assert_eq!(c.names().len(), 1);
    }

    #[test]
    fn run_records_results() {
        let mut c = AlgorithmContainer::new();
        c.register(AvalaAlgorithm::new());
        let sys = system();
        let mut results = AlgoResultData::new();
        let r = c.run("avala", &sys, &Availability, &mut results).unwrap();
        assert_eq!(r.result.algorithm, "avala");
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn unknown_algorithm_errors() {
        let c = AlgorithmContainer::new();
        let sys = system();
        let mut results = AlgoResultData::new();
        assert!(matches!(
            c.run("ghost", &sys, &Availability, &mut results),
            Err(DesiError::UnknownAlgorithm(_))
        ));
    }

    #[test]
    fn run_all_reports_per_algorithm_outcomes() {
        let mut c = AlgorithmContainer::new();
        c.register(AvalaAlgorithm::new());
        // A budget-strangled Exact fails without aborting the sweep.
        c.register(ExactAlgorithm::with_budget(1));
        let sys = system();
        let mut results = AlgoResultData::new();
        let outcomes = c.run_all(&sys, &Availability, &mut results);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].1.is_ok());
        assert!(outcomes[1].1.is_err());
        assert_eq!(results.len(), 1);
    }
}
