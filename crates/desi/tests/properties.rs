//! Property-based tests: layout invariants and view totality over arbitrary
//! generated systems.

use proptest::prelude::*;
use redep_desi::{AlgoResultData, GraphView, GraphViewData, SystemData, TableView};
use redep_model::{Generator, GeneratorConfig, Range};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (1usize..=6, 0usize..=16, any::<u64>(), 0.5f64..=3.0).prop_map(
        |(hosts, components, seed, _zoom)| GeneratorConfig {
            hosts,
            components,
            seed,
            host_memory: Range::new(1_000.0, 2_000.0),
            component_memory: Range::new(1.0, 10.0),
            ..GeneratorConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn layout_places_everything_without_overlap(
        config in config_strategy(),
        zoom in 0.5f64..3.0,
    ) {
        let s = Generator::generate(&config).unwrap();
        let layout = GraphViewData::layout_zoomed(&s.model, &s.initial, zoom);
        // Every host has a box; every component a position inside its host.
        prop_assert_eq!(layout.layouts().count(), s.model.host_count());
        for c in s.model.component_ids() {
            prop_assert!(layout.component_center(c).is_some());
        }
        let comp = GraphViewData::COMPONENT_SIZE * zoom;
        for (h, l) in layout.layouts() {
            for c in s.initial.components_on(h) {
                let (x, y) = l.components[&c];
                prop_assert!(x >= l.x - 1e-9 && x + comp <= l.x + l.width + 1e-9);
                prop_assert!(y >= l.y - 1e-9 && y + comp <= l.y + l.height + 1e-9);
            }
        }
        // Host boxes never overlap.
        let boxes: Vec<_> = layout.layouts().map(|(_, l)| l).collect();
        for i in 0..boxes.len() {
            for j in (i + 1)..boxes.len() {
                let (a, b) = (boxes[i], boxes[j]);
                let disjoint = a.x + a.width <= b.x + 1e-9
                    || b.x + b.width <= a.x + 1e-9
                    || a.y + a.height <= b.y + 1e-9
                    || b.y + b.height <= a.y + 1e-9;
                prop_assert!(disjoint, "boxes {} and {} overlap", i, j);
            }
        }
        // Everything fits on the canvas.
        let (w, hgt) = layout.canvas();
        for l in boxes {
            prop_assert!(l.x >= 0.0 && l.y >= 0.0);
            prop_assert!(l.x + l.width <= w + 1e-9 && l.y + l.height <= hgt + 1e-9);
        }
    }

    #[test]
    fn views_render_every_generated_system(config in config_strategy()) {
        let s = Generator::generate(&config).unwrap();
        let sys = SystemData::new(s.model.clone(), s.initial.clone());
        let table = TableView::new().render(&sys, &AlgoResultData::new());
        for host in s.model.hosts() {
            prop_assert!(table.contains(host.name()));
        }
        let layout = GraphViewData::layout(&s.model, &s.initial);
        let svg = GraphView::new().render_svg(&sys, &layout);
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
        // One shaded rect per component.
        prop_assert_eq!(
            svg.matches(r##"fill="#d9d9d9""##).count(),
            s.model.component_count()
        );
    }
}
