//! The distribution transport: wire messages and reliable channels.
//!
//! Prism-MW's `DistributionConnector` carries events "across process or
//! machine boundaries". Over the simulated (lossy) network this crate speaks
//! a small wire protocol:
//!
//! * **Raw** frames — application events. They are exposed to link loss on
//!   purpose: lost application interactions are exactly what the
//!   availability objective measures.
//! * **Seq/Ack** frames — control and migration traffic (monitoring reports,
//!   redeployment commands, serialized component state). A
//!   [`ReliableChannel`] retransmits unacknowledged frames and deduplicates
//!   at the receiver, so redeployment never loses a component to a lossy
//!   link.
//! * **Ping/Pong** frames — the raw probes of the network-reliability
//!   monitor.

use redep_model::HostId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A frame on the simulated wire.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub(crate) enum WireMsg {
    /// A frame in transit to a non-neighbor, relayed hop by hop along each
    /// host's routing table. Every hop is an independent (lossy) link send,
    /// so end-to-end loss compounds naturally.
    Forward {
        /// The originating host (the logical sender the destination should
        /// respond to).
        src: HostId,
        /// The final destination.
        dst: HostId,
        /// The encoded inner frame.
        frame: Vec<u8>,
    },
    /// Unreliable application event addressed to a component.
    Raw {
        /// Destination component instance name.
        to_component: String,
        /// Encoded [`Event`](crate::Event).
        event: Vec<u8>,
    },
    /// Reliable, sequenced control frame.
    Seq {
        /// Channel sequence number.
        seq: u64,
        /// Destination component instance name.
        to_component: String,
        /// Encoded [`Event`](crate::Event).
        event: Vec<u8>,
    },
    /// Acknowledgment of a `Seq` frame.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Reliability probe.
    Ping {
        /// Correlation nonce.
        nonce: u64,
    },
    /// Reliability probe answer.
    Pong {
        /// The nonce of the answered ping.
        nonce: u64,
    },
}

impl WireMsg {
    pub(crate) fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("wire messages always serialize")
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, crate::PrismError> {
        serde_json::from_slice(bytes).map_err(|e| crate::PrismError::Codec(e.to_string()))
    }

    /// Wire size charged for this frame.
    pub(crate) fn wire_size(&self) -> u64 {
        match self {
            WireMsg::Raw { event, .. } | WireMsg::Seq { event, .. } => event.len() as u64 + 24,
            WireMsg::Forward { frame, .. } => frame.len() as u64 + 24,
            WireMsg::Ack { .. } | WireMsg::Ping { .. } | WireMsg::Pong { .. } => 16,
        }
    }
}

/// Sender/receiver state of one reliable channel to a single peer.
///
/// At-least-once retransmission plus receiver-side deduplication gives
/// exactly-once *delivery to the application* for control traffic, as long
/// as the link is eventually up.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ReliableChannel {
    next_seq: u64,
    /// Unacknowledged outbound frames: seq → (destination component, event).
    pending: BTreeMap<u64, (String, Vec<u8>)>,
    /// Sequence numbers already delivered to the application.
    seen: BTreeSet<u64>,
}

impl ReliableChannel {
    /// Creates an idle channel.
    pub fn new() -> Self {
        ReliableChannel::default()
    }

    /// Number of unacknowledged frames.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Enqueues an event for reliable delivery; returns the frame to put on
    /// the wire now (retransmissions follow via
    /// [`ReliableChannel::retransmits`]).
    pub(crate) fn send(&mut self, to_component: String, event: Vec<u8>) -> WireMsg {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending
            .insert(seq, (to_component.clone(), event.clone()));
        WireMsg::Seq {
            seq,
            to_component,
            event,
        }
    }

    /// Handles an incoming ack.
    pub(crate) fn on_ack(&mut self, seq: u64) {
        self.pending.remove(&seq);
    }

    /// Handles an incoming sequenced frame; returns `true` exactly once per
    /// sequence number (the first arrival), `false` for duplicates.
    pub(crate) fn on_seq(&mut self, seq: u64) -> bool {
        self.seen.insert(seq)
    }

    /// Frames to retransmit (everything unacknowledged), oldest first.
    pub(crate) fn retransmits(&self) -> Vec<WireMsg> {
        self.pending
            .iter()
            .map(|(seq, (to_component, event))| WireMsg::Seq {
                seq: *seq,
                to_component: to_component.clone(),
                event: event.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Whatever subset of frames gets acked, the retransmit set is
        /// exactly the complement — no frame is forgotten, none lingers.
        #[test]
        fn retransmits_are_exactly_the_unacked(sends in 1usize..24, ack_mask in any::<u32>()) {
            let mut ch = ReliableChannel::new();
            let mut seqs = Vec::new();
            for i in 0..sends {
                if let WireMsg::Seq { seq, .. } = ch.send(format!("c{i}"), vec![i as u8]) {
                    seqs.push(seq);
                }
            }
            let mut unacked = Vec::new();
            for (i, seq) in seqs.iter().enumerate() {
                if ack_mask & (1 << (i % 32)) != 0 {
                    ch.on_ack(*seq);
                } else {
                    unacked.push(*seq);
                }
            }
            let retrans: Vec<u64> = ch
                .retransmits()
                .into_iter()
                .filter_map(|m| match m {
                    WireMsg::Seq { seq, .. } => Some(seq),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(retrans, unacked);
        }

        /// The receiver delivers each sequence number exactly once, in any
        /// arrival order with any duplication.
        #[test]
        fn receiver_delivers_each_seq_once(arrivals in proptest::collection::vec(0u64..16, 1..64)) {
            let mut ch = ReliableChannel::new();
            let mut delivered = std::collections::BTreeSet::new();
            for seq in arrivals {
                if ch.on_seq(seq) {
                    prop_assert!(delivered.insert(seq), "seq {} delivered twice", seq);
                }
            }
        }

        /// Wire frames round-trip through the codec.
        #[test]
        fn wire_roundtrip_any_payload(seq in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let m = WireMsg::Seq { seq, to_component: "x".into(), event: payload };
            prop_assert_eq!(WireMsg::decode(&m.encode()).unwrap(), m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_assigns_increasing_seqs() {
        let mut ch = ReliableChannel::new();
        let a = ch.send("x".into(), vec![1]);
        let b = ch.send("x".into(), vec![2]);
        match (a, b) {
            (WireMsg::Seq { seq: s1, .. }, WireMsg::Seq { seq: s2, .. }) => {
                assert!(s2 > s1);
            }
            _ => panic!("expected Seq frames"),
        }
        assert_eq!(ch.in_flight(), 2);
    }

    #[test]
    fn ack_clears_pending() {
        let mut ch = ReliableChannel::new();
        let WireMsg::Seq { seq, .. } = ch.send("x".into(), vec![]) else {
            panic!()
        };
        ch.on_ack(seq);
        assert_eq!(ch.in_flight(), 0);
        assert!(ch.retransmits().is_empty());
    }

    #[test]
    fn retransmits_repeat_unacked_frames() {
        let mut ch = ReliableChannel::new();
        ch.send("x".into(), vec![1]);
        ch.send("y".into(), vec![2]);
        assert_eq!(ch.retransmits().len(), 2);
        // Retransmission does not consume.
        assert_eq!(ch.retransmits().len(), 2);
    }

    #[test]
    fn receiver_dedups_by_seq() {
        let mut ch = ReliableChannel::new();
        assert!(ch.on_seq(0));
        assert!(!ch.on_seq(0));
        assert!(ch.on_seq(1));
    }

    #[test]
    fn wire_roundtrip() {
        let m = WireMsg::Seq {
            seq: 3,
            to_component: "admin".into(),
            event: vec![1, 2],
        };
        assert_eq!(WireMsg::decode(&m.encode()).unwrap(), m);
        assert!(WireMsg::decode(b"junk").is_err());
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let small = WireMsg::Ack { seq: 1 };
        let big = WireMsg::Raw {
            to_component: "x".into(),
            event: vec![0; 1000],
        };
        assert!(big.wire_size() > small.wire_size());
    }
}
