//! The distribution transport: wire messages and reliable channels.
//!
//! Prism-MW's `DistributionConnector` carries events "across process or
//! machine boundaries". Over the simulated (lossy) network this crate speaks
//! a small wire protocol:
//!
//! * **Raw** frames — application events. They are exposed to link loss on
//!   purpose: lost application interactions are exactly what the
//!   availability objective measures.
//! * **Seq/Ack** frames — control and migration traffic (monitoring reports,
//!   redeployment commands, serialized component state). A
//!   [`ReliableChannel`] retransmits unacknowledged frames and deduplicates
//!   at the receiver, so redeployment never loses a component to a lossy
//!   link.
//! * **Ping/Pong** frames — the raw probes of the network-reliability
//!   monitor.

use crate::codec;
use crate::symbol::Symbol;
use redep_model::HostId;
use redep_netsim::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A frame on the simulated wire.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub(crate) enum WireMsg {
    /// A frame in transit to a non-neighbor, relayed hop by hop along each
    /// host's routing table. Every hop is an independent (lossy) link send,
    /// so end-to-end loss compounds naturally.
    Forward {
        /// The originating host (the logical sender the destination should
        /// respond to).
        src: HostId,
        /// The final destination.
        dst: HostId,
        /// The encoded inner frame.
        frame: Vec<u8>,
    },
    /// Unreliable application event addressed to a component.
    Raw {
        /// Destination component instance name.
        to_component: Symbol,
        /// Encoded [`Event`](crate::Event).
        event: Vec<u8>,
    },
    /// Reliable, sequenced control frame.
    Seq {
        /// Channel sequence number.
        seq: u64,
        /// Destination component instance name.
        to_component: Symbol,
        /// Encoded [`Event`](crate::Event).
        event: Vec<u8>,
    },
    /// Acknowledgment of a `Seq` frame.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Reliability probe.
    Ping {
        /// Correlation nonce.
        nonce: u64,
    },
    /// Reliability probe answer.
    Pong {
        /// The nonce of the answered ping.
        nonce: u64,
    },
}

impl WireMsg {
    pub(crate) fn encode(&self) -> Vec<u8> {
        match codec::wire_codec() {
            codec::WireCodec::Binary => codec::encode_wire(self),
            codec::WireCodec::Json => {
                serde_json::to_vec(self).expect("wire messages always serialize")
            }
        }
    }

    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, crate::PrismError> {
        if bytes.first() == Some(&codec::WIRE_MAGIC) {
            codec::decode_wire(bytes)
        } else {
            serde_json::from_slice(bytes).map_err(|e| crate::PrismError::Codec(e.to_string()))
        }
    }

    /// The trace context of the embedded event, for frames that carry one
    /// (`Raw`/`Seq` directly; `Forward` by unwrapping the inner frame).
    /// Diagnostic accessor: the hot path never decodes just for this.
    #[cfg(test)]
    pub(crate) fn trace_ctx(&self) -> Option<redep_telemetry::TraceCtx> {
        match self {
            WireMsg::Raw { event, .. } | WireMsg::Seq { event, .. } => {
                crate::Event::decode(event).ok()?.trace()
            }
            WireMsg::Forward { frame, .. } => WireMsg::decode(frame).ok()?.trace_ctx(),
            WireMsg::Ack { .. } | WireMsg::Ping { .. } | WireMsg::Pong { .. } => None,
        }
    }

    /// Wire size charged for this frame.
    pub(crate) fn wire_size(&self) -> u64 {
        match self {
            WireMsg::Raw { event, .. } | WireMsg::Seq { event, .. } => event.len() as u64 + 24,
            WireMsg::Forward { frame, .. } => frame.len() as u64 + 24,
            WireMsg::Ack { .. } | WireMsg::Ping { .. } | WireMsg::Pong { .. } => 16,
        }
    }
}

/// One unacknowledged outbound frame with its retransmission schedule.
#[derive(Clone, PartialEq, Debug)]
struct PendingFrame {
    to_component: Symbol,
    event: Vec<u8>,
    /// Retransmissions so far; drives the exponential backoff.
    attempts: u32,
    /// Earliest instant the next retransmission may go out.
    next_due: SimTime,
}

/// Retransmission intervals double per attempt up to `rto << MAX_BACKOFF_SHIFT`
/// (64× the base RTO), so a long outage costs a trickle, not a flood.
const MAX_BACKOFF_SHIFT: u32 = 6;

/// A frame this many attempts in (16× the base RTO between probes) is
/// considered stalled by an outage rather than ordinary link loss; peer
/// activity collapses its backoff (see
/// [`ReliableChannel::on_peer_activity`]).
const STALLED_ATTEMPTS: u32 = 4;

/// Sender/receiver state of one reliable channel to a single peer.
///
/// At-least-once retransmission plus receiver-side deduplication gives
/// exactly-once *delivery to the application* for control traffic, as long
/// as the link is eventually up. Each unacked frame backs off exponentially
/// (doubling per retransmission, capped at 64× the RTO), so an unreachable
/// peer degrades to a low-rate probe instead of a full-backlog resend every
/// RTO tick. Receiver-side dedup state is a contiguous delivered watermark
/// plus a small out-of-order set, bounded by the reorder window instead of
/// growing with channel lifetime.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ReliableChannel {
    next_seq: u64,
    /// Unacknowledged outbound frames by sequence number.
    pending: BTreeMap<u64, PendingFrame>,
    /// Every seq below this has been delivered to the application.
    next_expected: u64,
    /// Delivered seqs at or above the watermark (arrival ran ahead).
    out_of_order: BTreeSet<u64>,
}

impl ReliableChannel {
    /// Creates an idle channel.
    pub fn new() -> Self {
        ReliableChannel::default()
    }

    /// Number of unacknowledged frames.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The channel's durable sequence state: `(next_seq, next_expected)`.
    ///
    /// Pending (unacked) frames and the out-of-order set are deliberately
    /// not part of it — after a crash, retransmission and the migration
    /// protocol's NACK/holder-re-resolution paths regenerate what mattered.
    /// What *must* survive exactly is the sender-side `next_seq`: reusing a
    /// sequence number the peer has already delivered would be silently
    /// swallowed by its dedup watermark, deadlocking the channel.
    pub(crate) fn durable_state(&self) -> (u64, u64) {
        (self.next_seq, self.next_expected)
    }

    /// Rebuilds a channel from durable sequence state (empty pending and
    /// out-of-order sets — see [`ReliableChannel::durable_state`]).
    pub(crate) fn restore(next_seq: u64, next_expected: u64) -> Self {
        ReliableChannel {
            next_seq,
            pending: BTreeMap::new(),
            next_expected,
            out_of_order: BTreeSet::new(),
        }
    }

    /// Journal-replay bump of the sender sequence: one `ChannelSend` record
    /// re-applied means one sequence number was consumed before the crash.
    pub(crate) fn bump_next_seq(&mut self) {
        self.next_seq += 1;
    }

    /// Size of the receiver's out-of-order set — the only dedup state that
    /// is not O(1). Bounded by the reorder window of the link, not by the
    /// number of frames ever delivered.
    pub fn dedup_footprint(&self) -> usize {
        self.out_of_order.len()
    }

    /// Enqueues an event for reliable delivery; returns the frame to put on
    /// the wire now. The first retransmission becomes due one `rto` after
    /// `now`; each later one doubles the wait (see
    /// [`ReliableChannel::due_retransmits`]).
    pub(crate) fn send(
        &mut self,
        to_component: Symbol,
        event: Vec<u8>,
        now: SimTime,
        rto: Duration,
    ) -> WireMsg {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(
            seq,
            PendingFrame {
                to_component,
                event: event.clone(),
                attempts: 0,
                next_due: now + rto,
            },
        );
        WireMsg::Seq {
            seq,
            to_component,
            event,
        }
    }

    /// Handles an incoming ack.
    pub(crate) fn on_ack(&mut self, seq: u64) {
        self.pending.remove(&seq);
    }

    /// Handles an incoming sequenced frame; returns `true` exactly once per
    /// sequence number (the first arrival), `false` for duplicates.
    pub(crate) fn on_seq(&mut self, seq: u64) -> bool {
        if seq < self.next_expected || self.out_of_order.contains(&seq) {
            return false;
        }
        if seq == self.next_expected {
            self.next_expected += 1;
            while self.out_of_order.remove(&self.next_expected) {
                self.next_expected += 1;
            }
        } else {
            self.out_of_order.insert(seq);
        }
        true
    }

    /// Frames whose backoff timer has expired, oldest first. Each returned
    /// frame's attempt count is bumped and its next due time doubled
    /// (capped), so calling this every RTO tick re-sends a frame after
    /// 1, 2, 4, … RTOs instead of on every tick.
    pub(crate) fn due_retransmits(&mut self, now: SimTime, rto: Duration) -> Vec<WireMsg> {
        let mut due = Vec::new();
        for (seq, frame) in self.pending.iter_mut() {
            if frame.next_due <= now {
                frame.attempts += 1;
                let backoff = rto.saturating_mul(1 << frame.attempts.min(MAX_BACKOFF_SHIFT));
                frame.next_due = now + backoff;
                due.push(WireMsg::Seq {
                    seq: *seq,
                    to_component: frame.to_component,
                    event: frame.event.clone(),
                });
            }
        }
        due
    }

    /// Fresh evidence that the path to this peer works again (a frame just
    /// arrived from it): collapse the exponential backoff of frames deep in
    /// backoff so they retry at the base RTO instead of the outage-rate
    /// trickle. A long partition otherwise leaves surviving frames probing
    /// at the backoff cap for the rest of the run, turning a healed link
    /// into minutes of stalled control traffic. Ordinary lossy-link retries
    /// (one or two attempts in) keep their schedule, and the restarts are
    /// staggered one RTO apart so the healed link is not hit by a
    /// thundering herd of simultaneous retransmissions.
    pub(crate) fn on_peer_activity(&mut self, now: SimTime, rto: Duration) {
        let mut i = 0u32;
        for frame in self.pending.values_mut() {
            if frame.attempts >= STALLED_ATTEMPTS {
                frame.attempts = 0;
                i += 1;
                frame.next_due = frame.next_due.min(now + rto.saturating_mul(i as u64));
            }
        }
    }

    /// Every unacknowledged frame, oldest first, regardless of backoff
    /// (test oracle; the wire path uses
    /// [`ReliableChannel::due_retransmits`]).
    #[cfg(test)]
    pub(crate) fn retransmits(&self) -> Vec<WireMsg> {
        self.pending
            .iter()
            .map(|(seq, frame)| WireMsg::Seq {
                seq: *seq,
                to_component: frame.to_component,
                event: frame.event.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn send(ch: &mut ReliableChannel, to: impl Into<Symbol>, event: Vec<u8>) -> WireMsg {
        ch.send(to.into(), event, SimTime::ZERO, Duration::from_millis(200))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Whatever subset of frames gets acked, the retransmit set is
        /// exactly the complement — no frame is forgotten, none lingers.
        #[test]
        fn retransmits_are_exactly_the_unacked(sends in 1usize..24, ack_mask in any::<u32>()) {
            let mut ch = ReliableChannel::new();
            let mut seqs = Vec::new();
            for i in 0..sends {
                if let WireMsg::Seq { seq, .. } = send(&mut ch, format!("c{i}"), vec![i as u8]) {
                    seqs.push(seq);
                }
            }
            let mut unacked = Vec::new();
            for (i, seq) in seqs.iter().enumerate() {
                if ack_mask & (1 << (i % 32)) != 0 {
                    ch.on_ack(*seq);
                } else {
                    unacked.push(*seq);
                }
            }
            let retrans: Vec<u64> = ch
                .retransmits()
                .into_iter()
                .filter_map(|m| match m {
                    WireMsg::Seq { seq, .. } => Some(seq),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(retrans, unacked);
        }

        /// The receiver delivers each sequence number exactly once, in any
        /// arrival order with any duplication.
        #[test]
        fn receiver_delivers_each_seq_once(arrivals in proptest::collection::vec(0u64..16, 1..64)) {
            let mut ch = ReliableChannel::new();
            let mut delivered = std::collections::BTreeSet::new();
            for seq in arrivals {
                if ch.on_seq(seq) {
                    prop_assert!(delivered.insert(seq), "seq {} delivered twice", seq);
                }
            }
        }

        /// The watermark + out-of-order compaction answers exactly like the
        /// unbounded seen-set it replaced, arrival order and duplication
        /// notwithstanding — and once the prefix is contiguous the
        /// out-of-order set is empty again.
        #[test]
        fn compacted_dedup_matches_the_unbounded_model(arrivals in proptest::collection::vec(0u64..24, 1..96)) {
            let mut ch = ReliableChannel::new();
            let mut model = std::collections::BTreeSet::new();
            for seq in arrivals {
                prop_assert_eq!(ch.on_seq(seq), model.insert(seq), "divergence at seq {}", seq);
                // Footprint stays within the highest gap, never the full history.
                let contiguous = (0..).take_while(|s| model.contains(s)).count() as u64;
                prop_assert_eq!(
                    ch.dedup_footprint(),
                    model.iter().filter(|&&s| s >= contiguous).count()
                );
            }
        }

        /// In-order delivery keeps the receiver state O(1): the out-of-order
        /// set never holds anything.
        #[test]
        fn in_order_delivery_needs_no_out_of_order_state(n in 1u64..512) {
            let mut ch = ReliableChannel::new();
            for seq in 0..n {
                prop_assert!(ch.on_seq(seq));
                prop_assert_eq!(ch.dedup_footprint(), 0);
            }
        }

        /// Wire frames round-trip through the codec.
        #[test]
        fn wire_roundtrip_any_payload(seq in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let m = WireMsg::Seq { seq, to_component: "x".into(), event: payload };
            prop_assert_eq!(WireMsg::decode(&m.encode()).unwrap(), m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RTO: Duration = Duration::from_millis(200);

    fn send(ch: &mut ReliableChannel, to: &str, event: Vec<u8>) -> WireMsg {
        ch.send(to.into(), event, SimTime::ZERO, RTO)
    }

    #[test]
    fn send_assigns_increasing_seqs() {
        let mut ch = ReliableChannel::new();
        let a = send(&mut ch, "x", vec![1]);
        let b = send(&mut ch, "x", vec![2]);
        match (a, b) {
            (WireMsg::Seq { seq: s1, .. }, WireMsg::Seq { seq: s2, .. }) => {
                assert!(s2 > s1);
            }
            _ => panic!("expected Seq frames"),
        }
        assert_eq!(ch.in_flight(), 2);
    }

    #[test]
    fn ack_clears_pending() {
        let mut ch = ReliableChannel::new();
        let WireMsg::Seq { seq, .. } = send(&mut ch, "x", vec![]) else {
            panic!()
        };
        ch.on_ack(seq);
        assert_eq!(ch.in_flight(), 0);
        assert!(ch.retransmits().is_empty());
    }

    #[test]
    fn retransmits_repeat_unacked_frames() {
        let mut ch = ReliableChannel::new();
        send(&mut ch, "x", vec![1]);
        send(&mut ch, "y", vec![2]);
        assert_eq!(ch.retransmits().len(), 2);
        // Retransmission does not consume.
        assert_eq!(ch.retransmits().len(), 2);
    }

    #[test]
    fn backoff_doubles_per_retransmission() {
        let mut ch = ReliableChannel::new();
        send(&mut ch, "x", vec![1]);
        // Not yet due before one RTO has passed.
        assert!(ch
            .due_retransmits(SimTime::from_micros(RTO.as_micros() - 1), RTO)
            .is_empty());
        // Due at exactly one RTO; the next wait doubles each time after.
        let mut t = SimTime::ZERO + RTO;
        for round in 0..4u32 {
            assert_eq!(ch.due_retransmits(t, RTO).len(), 1, "round {round}");
            let wait = RTO.saturating_mul(1 << (round + 1));
            // One microsecond before the next deadline: silent.
            assert!(ch
                .due_retransmits(t + Duration::from_micros(wait.as_micros() - 1), RTO)
                .is_empty());
            t += wait;
        }
    }

    #[test]
    fn backoff_caps_instead_of_overflowing() {
        let mut ch = ReliableChannel::new();
        send(&mut ch, "x", vec![1]);
        let mut t = SimTime::ZERO + RTO;
        for _ in 0..40 {
            assert_eq!(ch.due_retransmits(t, RTO).len(), 1);
            t += RTO.saturating_mul(1 << MAX_BACKOFF_SHIFT);
        }
        assert_eq!(ch.in_flight(), 1);
    }

    #[test]
    fn receiver_dedups_by_seq() {
        let mut ch = ReliableChannel::new();
        assert!(ch.on_seq(0));
        assert!(!ch.on_seq(0));
        assert!(ch.on_seq(1));
    }

    #[test]
    fn wire_roundtrip() {
        let m = WireMsg::Seq {
            seq: 3,
            to_component: "admin".into(),
            event: vec![1, 2],
        };
        assert_eq!(WireMsg::decode(&m.encode()).unwrap(), m);
        assert!(WireMsg::decode(b"junk").is_err());
    }

    #[test]
    fn trace_ctx_survives_the_wire_even_through_forwarding() {
        use redep_telemetry::TraceCtx;
        let ctx = TraceCtx {
            trace_id: 11,
            span_id: 12,
            parent_id: Some(11),
        };
        let event = crate::Event::notification("traced").with_trace(ctx);
        let raw = WireMsg::Raw {
            to_component: "admin".into(),
            event: event.encode().unwrap(),
        };
        assert_eq!(raw.trace_ctx(), Some(ctx));
        let forwarded = WireMsg::Forward {
            src: HostId::new(1),
            dst: HostId::new(2),
            frame: raw.encode(),
        };
        assert_eq!(forwarded.trace_ctx(), Some(ctx));
        assert_eq!(WireMsg::Ack { seq: 1 }.trace_ctx(), None);
        let untraced = WireMsg::Raw {
            to_component: "admin".into(),
            event: crate::Event::notification("plain").encode().unwrap(),
        };
        assert_eq!(untraced.trace_ctx(), None);
    }

    #[test]
    fn wire_size_scales_with_payload() {
        let small = WireMsg::Ack { seq: 1 };
        let big = WireMsg::Raw {
            to_component: "x".into(),
            event: vec![0; 1000],
        };
        assert!(big.wire_size() > small.wire_size());
    }
}
