//! Wire codecs for events and transport frames.
//!
//! The default codec is a compact length-prefixed little-endian binary
//! format: symbol names travel as LEB128 varint interner ids, parameter
//! values as one tag byte plus a raw value, payloads as varint-length raw
//! bytes. The previous `serde_json` encoding is retained behind the
//! `codec=json` debug option ([`set_wire_codec`]) for human-readable frame
//! dumps; decoders sniff the leading magic byte, so both codecs can coexist
//! on one link.
//!
//! Shipping interner ids is sound here because the "wire" never leaves the
//! process: netsim simulates all hosts in one address space sharing one
//! interner (see [`crate::symbol`]), and encoded frames never reach
//! journals or reports.
//!
//! # Binary layout
//!
//! Event (`0xE5` magic):
//!
//! ```text
//! [0xE5][kind u8][flags u8][name varint]
//!   [source varint  — iff flags bit0]
//!   [size varint    — iff flags bit1]
//!   [trace_id varint][span_id varint] — iff flags bit2
//!   [parent_id varint — iff flags bit3, only valid with bit2]
//! [param_count varint]
//!   repeat: [key varint][tag u8][value]
//!     tag 0/1 = bool false/true (no value bytes)
//!     tag 2   = int, zigzag varint
//!     tag 3   = float, 8 bytes f64 LE
//!     tag 4   = text, varint length + UTF-8 bytes
//! [payload_len varint][payload bytes]
//! ```
//!
//! Transport frame (`0xEB` magic): `[0xEB][variant u8]` then the variant's
//! fields in order, ids/seqs/nonces as varints, embedded frames as varint
//! length + bytes.

use crate::event::{Event, EventKind, ParamVec};
use crate::symbol::Symbol;
use crate::PrismError;
use redep_model::ParamValue;
use std::sync::atomic::{AtomicU8, Ordering};

/// Leading byte of a binary-encoded [`Event`]. Distinct from `{` (0x7B), so
/// decoders can tell binary frames from JSON ones.
pub const EVENT_MAGIC: u8 = 0xE5;

/// Leading byte of a binary-encoded transport frame.
pub(crate) const WIRE_MAGIC: u8 = 0xEB;

/// Which encoding [`Event::encode`] and the transport use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireCodec {
    /// Compact binary (the default).
    Binary,
    /// `serde_json`, kept as a debug option for readable frame dumps.
    Json,
}

static WIRE_CODEC: AtomicU8 = AtomicU8::new(0);

/// Selects the process-wide wire codec (`codec=json` debug switch).
pub fn set_wire_codec(codec: WireCodec) {
    WIRE_CODEC.store(
        match codec {
            WireCodec::Binary => 0,
            WireCodec::Json => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected process-wide wire codec.
pub fn wire_codec() -> WireCodec {
    match WIRE_CODEC.load(Ordering::Relaxed) {
        0 => WireCodec::Binary,
        _ => WireCodec::Json,
    }
}

// --- varint primitives ---------------------------------------------------

pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, PrismError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| codec_err("truncated varint"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(codec_err("varint overflow"));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_symbol(out: &mut Vec<u8>, s: Symbol) {
    put_varint(out, u64::from(s.id()));
}

fn get_symbol(bytes: &[u8], pos: &mut usize) -> Result<Symbol, PrismError> {
    let id = get_varint(bytes, pos)?;
    let id = u32::try_from(id).map_err(|_| codec_err("symbol id out of range"))?;
    Symbol::from_id(id).ok_or_else(|| codec_err("unknown symbol id"))
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_varint(out, b.len() as u64);
    out.extend_from_slice(b);
}

pub(crate) fn get_bytes<'a>(bytes: &'a [u8], pos: &mut usize) -> Result<&'a [u8], PrismError> {
    let len = get_varint(bytes, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| codec_err("truncated bytes"))?;
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

fn codec_err(msg: &str) -> PrismError {
    PrismError::Codec(msg.to_owned())
}

// --- event codec ---------------------------------------------------------

const TAG_FALSE: u8 = 0;
const TAG_TRUE: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_TEXT: u8 = 4;

const FLAG_SOURCE: u8 = 0b01;
const FLAG_SIZE: u8 = 0b10;
/// Event carries a `TraceCtx` (`trace_id` + `span_id` varints follow the
/// optional size field). Events without one keep a pre-trace flags byte and
/// encode byte-identically to the pre-trace wire format.
const FLAG_TRACE: u8 = 0b100;
/// Only ever set together with [`FLAG_TRACE`]: a `parent_id` varint follows
/// the span id.
const FLAG_TRACE_PARENT: u8 = 0b1000;

/// Encodes an event in the binary layout (see module docs).
pub(crate) fn encode_event(e: &Event) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + e.payload.len());
    out.push(EVENT_MAGIC);
    out.push(match e.kind {
        EventKind::Request => 0,
        EventKind::Reply => 1,
        EventKind::Notification => 2,
    });
    let mut flags = 0u8;
    if e.source.is_some() {
        flags |= FLAG_SOURCE;
    }
    if e.size.is_some() {
        flags |= FLAG_SIZE;
    }
    if let Some(trace) = e.trace {
        flags |= FLAG_TRACE;
        if trace.parent_id.is_some() {
            flags |= FLAG_TRACE_PARENT;
        }
    }
    out.push(flags);
    put_symbol(&mut out, e.name);
    if let Some(src) = e.source {
        put_symbol(&mut out, src);
    }
    if let Some(size) = e.size {
        put_varint(&mut out, size);
    }
    if let Some(trace) = e.trace {
        put_varint(&mut out, trace.trace_id);
        put_varint(&mut out, trace.span_id);
        if let Some(parent) = trace.parent_id {
            put_varint(&mut out, parent);
        }
    }
    put_varint(&mut out, e.params.len() as u64);
    for (k, v) in e.params.iter() {
        put_symbol(&mut out, *k);
        match v {
            ParamValue::Bool(false) => out.push(TAG_FALSE),
            ParamValue::Bool(true) => out.push(TAG_TRUE),
            ParamValue::Int(i) => {
                out.push(TAG_INT);
                put_varint(&mut out, zigzag(*i));
            }
            ParamValue::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_le_bytes());
            }
            ParamValue::Text(s) => {
                out.push(TAG_TEXT);
                put_bytes(&mut out, s.as_bytes());
            }
        }
    }
    put_bytes(&mut out, &e.payload);
    out
}

/// Decodes a binary event, rejecting trailing garbage.
pub(crate) fn decode_event(bytes: &[u8]) -> Result<Event, PrismError> {
    let mut pos = 0usize;
    if bytes.get(pos) != Some(&EVENT_MAGIC) {
        return Err(codec_err("bad event magic"));
    }
    pos += 1;
    let kind = match bytes.get(pos) {
        Some(0) => EventKind::Request,
        Some(1) => EventKind::Reply,
        Some(2) => EventKind::Notification,
        _ => return Err(codec_err("bad event kind")),
    };
    pos += 1;
    let flags = *bytes.get(pos).ok_or_else(|| codec_err("truncated event"))?;
    pos += 1;
    let name = get_symbol(bytes, &mut pos)?;
    let source = if flags & FLAG_SOURCE != 0 {
        Some(get_symbol(bytes, &mut pos)?)
    } else {
        None
    };
    let size = if flags & FLAG_SIZE != 0 {
        Some(get_varint(bytes, &mut pos)?)
    } else {
        None
    };
    if flags & FLAG_TRACE_PARENT != 0 && flags & FLAG_TRACE == 0 {
        return Err(codec_err("trace parent flag without trace flag"));
    }
    let trace = if flags & FLAG_TRACE != 0 {
        let trace_id = get_varint(bytes, &mut pos)?;
        let span_id = get_varint(bytes, &mut pos)?;
        let parent_id = if flags & FLAG_TRACE_PARENT != 0 {
            Some(get_varint(bytes, &mut pos)?)
        } else {
            None
        };
        Some(redep_telemetry::TraceCtx {
            trace_id,
            span_id,
            parent_id,
        })
    } else {
        None
    };
    let count = get_varint(bytes, &mut pos)? as usize;
    let mut params = ParamVec::new();
    for _ in 0..count {
        let key = get_symbol(bytes, &mut pos)?;
        let tag = *bytes.get(pos).ok_or_else(|| codec_err("truncated param"))?;
        pos += 1;
        let value = match tag {
            TAG_FALSE => ParamValue::Bool(false),
            TAG_TRUE => ParamValue::Bool(true),
            TAG_INT => ParamValue::Int(unzigzag(get_varint(bytes, &mut pos)?)),
            TAG_FLOAT => {
                let end = pos + 8;
                let raw = bytes
                    .get(pos..end)
                    .ok_or_else(|| codec_err("truncated float"))?;
                pos = end;
                ParamValue::Float(f64::from_le_bytes(raw.try_into().expect("8-byte slice")))
            }
            TAG_TEXT => {
                let raw = get_bytes(bytes, &mut pos)?;
                ParamValue::Text(
                    std::str::from_utf8(raw)
                        .map_err(|_| codec_err("param text not utf-8"))?
                        .to_owned(),
                )
            }
            _ => return Err(codec_err("bad param tag")),
        };
        params.insert(key, value);
    }
    let payload = get_bytes(bytes, &mut pos)?.to_vec();
    if pos != bytes.len() {
        return Err(codec_err("trailing bytes after event"));
    }
    Ok(Event {
        name,
        kind,
        params,
        payload,
        source,
        size,
        trace,
    })
}

// --- transport frame codec -----------------------------------------------

use crate::transport::WireMsg;
use redep_model::HostId;

const WIRE_FORWARD: u8 = 0;
const WIRE_RAW: u8 = 1;
const WIRE_SEQ: u8 = 2;
const WIRE_ACK: u8 = 3;
const WIRE_PING: u8 = 4;
const WIRE_PONG: u8 = 5;

/// Encodes a transport frame in the binary layout (see module docs).
pub(crate) fn encode_wire(m: &WireMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.push(WIRE_MAGIC);
    match m {
        WireMsg::Forward { src, dst, frame } => {
            out.push(WIRE_FORWARD);
            put_varint(&mut out, u64::from(src.raw()));
            put_varint(&mut out, u64::from(dst.raw()));
            put_bytes(&mut out, frame);
        }
        WireMsg::Raw {
            to_component,
            event,
        } => {
            out.push(WIRE_RAW);
            put_symbol(&mut out, *to_component);
            put_bytes(&mut out, event);
        }
        WireMsg::Seq {
            seq,
            to_component,
            event,
        } => {
            out.push(WIRE_SEQ);
            put_varint(&mut out, *seq);
            put_symbol(&mut out, *to_component);
            put_bytes(&mut out, event);
        }
        WireMsg::Ack { seq } => {
            out.push(WIRE_ACK);
            put_varint(&mut out, *seq);
        }
        WireMsg::Ping { nonce } => {
            out.push(WIRE_PING);
            put_varint(&mut out, *nonce);
        }
        WireMsg::Pong { nonce } => {
            out.push(WIRE_PONG);
            put_varint(&mut out, *nonce);
        }
    }
    out
}

/// Decodes a binary transport frame, rejecting trailing garbage.
pub(crate) fn decode_wire(bytes: &[u8]) -> Result<WireMsg, PrismError> {
    let mut pos = 0usize;
    if bytes.get(pos) != Some(&WIRE_MAGIC) {
        return Err(codec_err("bad wire magic"));
    }
    pos += 1;
    let variant = *bytes.get(pos).ok_or_else(|| codec_err("truncated frame"))?;
    pos += 1;
    let msg = match variant {
        WIRE_FORWARD => {
            let src = get_host(bytes, &mut pos)?;
            let dst = get_host(bytes, &mut pos)?;
            let frame = get_bytes(bytes, &mut pos)?.to_vec();
            WireMsg::Forward { src, dst, frame }
        }
        WIRE_RAW => {
            let to_component = get_symbol(bytes, &mut pos)?;
            let event = get_bytes(bytes, &mut pos)?.to_vec();
            WireMsg::Raw {
                to_component,
                event,
            }
        }
        WIRE_SEQ => {
            let seq = get_varint(bytes, &mut pos)?;
            let to_component = get_symbol(bytes, &mut pos)?;
            let event = get_bytes(bytes, &mut pos)?.to_vec();
            WireMsg::Seq {
                seq,
                to_component,
                event,
            }
        }
        WIRE_ACK => WireMsg::Ack {
            seq: get_varint(bytes, &mut pos)?,
        },
        WIRE_PING => WireMsg::Ping {
            nonce: get_varint(bytes, &mut pos)?,
        },
        WIRE_PONG => WireMsg::Pong {
            nonce: get_varint(bytes, &mut pos)?,
        },
        _ => return Err(codec_err("bad wire variant")),
    };
    if pos != bytes.len() {
        return Err(codec_err("trailing bytes after frame"));
    }
    Ok(msg)
}

fn get_host(bytes: &[u8], pos: &mut usize) -> Result<HostId, PrismError> {
    let raw = get_varint(bytes, pos)?;
    let raw = u32::try_from(raw).map_err(|_| codec_err("host id out of range"))?;
    Ok(HostId::new(raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn event_roundtrip_all_param_kinds() {
        let mut e = Event::request("codec.test")
            .with_param("b0", false)
            .with_param("b1", true)
            .with_param("i", -42i64)
            .with_param("f", 2.5)
            .with_param("t", "hello")
            .with_payload(vec![0, 255, 7])
            .with_size(1234);
        e.set_source("codec-src");
        let bytes = encode_event(&e);
        assert_eq!(bytes[0], EVENT_MAGIC);
        assert_eq!(decode_event(&bytes).unwrap(), e);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let e = Event::notification("codec.trunc").with_param("k", 7i64);
        let bytes = encode_event(&e);
        for cut in 0..bytes.len() {
            assert!(decode_event(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_event(&padded).is_err());
    }

    #[test]
    fn event_roundtrip_with_trace_ctx() {
        use redep_telemetry::TraceCtx;
        let root =
            Event::notification("codec.trace").with_trace(TraceCtx::root(0x0300_0001_0000_0001));
        let bytes = encode_event(&root);
        assert_eq!(decode_event(&bytes).unwrap(), root);
        let child = Event::request("codec.trace.child").with_trace(TraceCtx {
            trace_id: 5,
            span_id: 9,
            parent_id: Some(5),
        });
        let bytes = encode_event(&child);
        assert_eq!(decode_event(&bytes).unwrap(), child);
        for cut in 0..bytes.len() {
            assert!(decode_event(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trace_parent_flag_requires_trace_flag() {
        let e = Event::notification("codec.badflags");
        let mut bytes = encode_event(&e);
        bytes[2] = 0b1000; // parent without trace
        assert!(decode_event(&bytes).is_err());
    }

    #[test]
    fn traceless_event_flags_byte_stays_pre_trace() {
        let e = Event::notification("codec.noflags");
        let bytes = encode_event(&e);
        assert_eq!(bytes[2] & (FLAG_TRACE | FLAG_TRACE_PARENT), 0);
    }

    #[test]
    fn decode_rejects_unknown_symbol_id() {
        let mut out = vec![EVENT_MAGIC, 2, 0];
        put_varint(&mut out, u64::from(u32::MAX)); // never interned
        put_varint(&mut out, 0);
        put_varint(&mut out, 0);
        assert!(decode_event(&out).is_err());
    }

    #[test]
    fn wire_roundtrip_all_variants() {
        let frames = [
            WireMsg::Forward {
                src: HostId::new(1),
                dst: HostId::new(300),
                frame: vec![1, 2, 3],
            },
            WireMsg::Raw {
                to_component: Symbol::intern("wire-raw-dst"),
                event: vec![9; 40],
            },
            WireMsg::Seq {
                seq: 129,
                to_component: Symbol::intern("wire-seq-dst"),
                event: Vec::new(),
            },
            WireMsg::Ack { seq: u64::MAX },
            WireMsg::Ping { nonce: 7 },
            WireMsg::Pong { nonce: 8 },
        ];
        for m in frames {
            let bytes = encode_wire(&m);
            assert_eq!(bytes[0], WIRE_MAGIC);
            assert_eq!(decode_wire(&bytes).unwrap(), m);
            let mut padded = bytes.clone();
            padded.push(1);
            assert!(decode_wire(&padded).is_err());
        }
    }

    #[test]
    fn codec_switch_is_observable() {
        assert_eq!(wire_codec(), WireCodec::Binary);
        set_wire_codec(WireCodec::Json);
        assert_eq!(wire_codec(), WireCodec::Json);
        set_wire_codec(WireCodec::Binary);
        assert_eq!(wire_codec(), WireCodec::Binary);
    }
}
