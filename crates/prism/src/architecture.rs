//! Architectures: runtime configurations of components and connectors.

use crate::brick::{BrickId, ComponentAction, ComponentBehavior, ComponentCtx};
use crate::connector::Connector;
use crate::event::Event;
use crate::monitor::ConnectorMonitor;
use crate::symbol::Symbol;
use crate::PrismError;
use redep_model::HostId;
use redep_netsim::{Duration, SimTime};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// A queued local delivery.
///
/// Events are `Arc`-shared: routing an emission to N recipients bumps a
/// reference count N times instead of deep-cloning name, params, and payload
/// per hop. Handlers receive `&Event` and never mutate in place, so no
/// copy-on-write is required on the delivery path.
#[derive(Debug)]
enum Delivery {
    /// Run `on_attach` for the component.
    Attach(BrickId),
    /// Hand an event to the component.
    Handle(BrickId, Arc<Event>),
    /// Fire a timer on the component.
    Timer(BrickId, u64),
}

/// An effect that escapes the architecture and must be carried out by the
/// host runtime (remote sends, timer arming).
#[derive(Clone, PartialEq, Debug)]
pub(crate) enum HostAction {
    /// Ship an event to a named component on another host.
    SendRemote {
        /// Destination host.
        host: HostId,
        /// Destination component instance name.
        to_component: Symbol,
        /// The event.
        event: Event,
    },
    /// Ship an event to a named component wherever the directory says it
    /// currently lives.
    SendNamed {
        /// Destination component instance name.
        to_component: Symbol,
        /// The event.
        event: Event,
    },
    /// Arm a timer for a local component.
    SetTimer {
        /// The component to wake.
        component: Symbol,
        /// Delay from now.
        delay: Duration,
        /// Token passed back on expiry.
        token: u64,
    },
}

struct ComponentSlot {
    name: Symbol,
    behavior: Box<dyn ComponentBehavior>,
    welded: BTreeSet<BrickId>,
}

/// A Prism-MW `Architecture`: the record of a (sub)system's configuration —
/// its components and connectors — with "facilities for their addition,
/// removal, and reconnection, possibly at system run-time".
///
/// Event processing is an explicit, deterministic pump: deliveries queue in
/// FIFO order and [`Architecture::pump`] drains them, which stands in for
/// Prism-MW's thread-pool `Scaffold` without sacrificing reproducibility.
///
/// # Example
///
/// ```
/// use redep_prism::{Architecture, ComponentBehavior, ComponentCtx, Event};
/// use redep_netsim::SimTime;
/// use redep_model::HostId;
///
/// #[derive(Default)]
/// struct Logger { seen: Vec<String> }
/// impl ComponentBehavior for Logger {
///     fn type_name(&self) -> &str { "logger" }
///     fn handle(&mut self, _ctx: &mut ComponentCtx<'_>, event: &Event) {
///         self.seen.push(event.name().to_owned());
///     }
/// }
///
/// let mut arch = Architecture::new("demo", HostId::new(0));
/// let logger = arch.add_component("log", Logger::default())?;
/// let src = arch.add_component("src", Logger::default())?;
/// let bus = arch.add_connector("bus");
/// arch.weld(logger, bus)?;
/// arch.weld(src, bus)?;
///
/// arch.publish("src", Event::notification("hello"))?;
/// arch.pump(SimTime::ZERO);
/// // "src" received the published event; it did not re-emit it, so the
/// // logger saw nothing yet.
/// assert_eq!(arch.component_ref::<Logger>("src").unwrap().seen, ["hello"]);
/// # Ok::<(), redep_prism::PrismError>(())
/// ```
pub struct Architecture {
    name: String,
    host: HostId,
    next_brick: u64,
    /// Component slots indexed by `BrickId::raw()`. `None` marks ids that
    /// belong to connectors or to detached components; brick ids are drawn
    /// from one counter, so both tables are sparse by design. Indexing
    /// replaces the name-keyed `BTreeMap` lookups on the routing hot path.
    components: Vec<Option<ComponentSlot>>,
    by_name: BTreeMap<String, BrickId>,
    /// Connector slots indexed by `BrickId::raw()` (see `components`).
    connectors: Vec<Option<Connector>>,
    queue: VecDeque<Delivery>,
    host_actions: Vec<HostAction>,
    scratch: Vec<ComponentAction>,
    /// Reusable recipient buffer for `route_emission`.
    route_scratch: Vec<(BrickId, Symbol)>,
    /// Reusable welded-connector buffer for `route_emission`.
    welded_scratch: Vec<BrickId>,
    events_processed: u64,
    now: SimTime,
}

impl fmt::Debug for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Architecture")
            .field("name", &self.name)
            .field("host", &self.host)
            .field("components", &self.by_name.keys().collect::<Vec<_>>())
            .field("connectors", &self.connector_count())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Architecture {
    /// Creates an empty architecture for the given host.
    pub fn new(name: impl Into<String>, host: HostId) -> Self {
        Architecture {
            name: name.into(),
            host,
            next_brick: 0,
            components: Vec::new(),
            by_name: BTreeMap::new(),
            connectors: Vec::new(),
            queue: VecDeque::new(),
            host_actions: Vec::new(),
            scratch: Vec::new(),
            route_scratch: Vec::new(),
            welded_scratch: Vec::new(),
            events_processed: 0,
            now: SimTime::ZERO,
        }
    }

    fn component_slot(&self, id: BrickId) -> Option<&ComponentSlot> {
        self.components.get(id.raw() as usize)?.as_ref()
    }

    fn component_slot_mut(&mut self, id: BrickId) -> Option<&mut ComponentSlot> {
        self.components.get_mut(id.raw() as usize)?.as_mut()
    }

    fn connector_slot(&self, id: BrickId) -> Option<&Connector> {
        self.connectors.get(id.raw() as usize)?.as_ref()
    }

    fn connector_slot_mut(&mut self, id: BrickId) -> Option<&mut Connector> {
        self.connectors.get_mut(id.raw() as usize)?.as_mut()
    }

    /// The architecture's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The host this architecture runs on.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Total events processed by [`Architecture::pump`] so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn fresh_id(&mut self) -> BrickId {
        let id = BrickId::new(self.next_brick);
        self.next_brick += 1;
        id
    }

    // ---- configuration management ------------------------------------------

    /// Adds a component under a unique instance name; its
    /// [`ComponentBehavior::on_attach`] runs at the next pump.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::DuplicateComponent`] if the name is taken.
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        behavior: impl ComponentBehavior,
    ) -> Result<BrickId, PrismError> {
        self.add_boxed_component(name, Box::new(behavior))
    }

    /// Adds an already-boxed component (used when reconstituting migrants).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::DuplicateComponent`] if the name is taken.
    pub fn add_boxed_component(
        &mut self,
        name: impl Into<String>,
        behavior: Box<dyn ComponentBehavior>,
    ) -> Result<BrickId, PrismError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(PrismError::DuplicateComponent(name));
        }
        let id = self.fresh_id();
        let symbol = Symbol::intern(&name);
        self.by_name.insert(name, id);
        let idx = id.raw() as usize;
        if self.components.len() <= idx {
            self.components.resize_with(idx + 1, || None);
        }
        self.components[idx] = Some(ComponentSlot {
            name: symbol,
            behavior,
            welded: BTreeSet::new(),
        });
        self.queue.push_back(Delivery::Attach(id));
        Ok(id)
    }

    /// Detaches a component: unwelds it everywhere and removes it, returning
    /// its type name and state snapshot (the payload of a migration).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::UnknownComponent`] if no such component exists.
    pub fn detach_component(&mut self, name: &str) -> Result<(String, Vec<u8>), PrismError> {
        let id = self
            .by_name
            .remove(name)
            .ok_or_else(|| PrismError::UnknownComponent(name.to_owned()))?;
        let slot = self.components[id.raw() as usize]
            .take()
            .expect("maps in sync");
        for conn in slot.welded {
            if let Some(c) = self.connector_slot_mut(conn) {
                c.unweld(id);
            }
        }
        // Deliveries already queued for the departed component are dropped;
        // the host-level buffer is responsible for not losing remote events.
        self.queue.retain(|d| match d {
            Delivery::Attach(i) | Delivery::Handle(i, _) | Delivery::Timer(i, _) => *i != id,
        });
        Ok((
            slot.behavior.type_name().to_owned(),
            slot.behavior.snapshot(),
        ))
    }

    /// Adds a connector.
    pub fn add_connector(&mut self, name: impl Into<String>) -> BrickId {
        let id = self.fresh_id();
        let idx = id.raw() as usize;
        if self.connectors.len() <= idx {
            self.connectors.resize_with(idx + 1, || None);
        }
        self.connectors[idx] = Some(Connector::new(id, name));
        id
    }

    /// Welds a component to a connector.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::UnknownBrick`] if either id is unknown and
    /// [`PrismError::InvalidWeld`] if `component`/`connector` name bricks of
    /// the wrong kinds.
    pub fn weld(&mut self, component: BrickId, connector: BrickId) -> Result<(), PrismError> {
        if self.connector_slot(component).is_some() || self.component_slot(connector).is_some() {
            return Err(PrismError::InvalidWeld(component, connector));
        }
        let slot = self
            .components
            .get_mut(component.raw() as usize)
            .and_then(Option::as_mut)
            .ok_or(PrismError::UnknownBrick(component))?;
        let conn = self
            .connectors
            .get_mut(connector.raw() as usize)
            .and_then(Option::as_mut)
            .ok_or(PrismError::UnknownBrick(connector))?;
        slot.welded.insert(connector);
        conn.weld(component);
        Ok(())
    }

    /// Removes the weld between a component and a connector.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::UnknownBrick`] if either id is unknown.
    pub fn unweld(&mut self, component: BrickId, connector: BrickId) -> Result<(), PrismError> {
        let slot = self
            .components
            .get_mut(component.raw() as usize)
            .and_then(Option::as_mut)
            .ok_or(PrismError::UnknownBrick(component))?;
        let conn = self
            .connectors
            .get_mut(connector.raw() as usize)
            .and_then(Option::as_mut)
            .ok_or(PrismError::UnknownBrick(connector))?;
        slot.welded.remove(&connector);
        conn.unweld(component);
        Ok(())
    }

    /// Attaches a monitor to a connector.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::UnknownBrick`] if the connector is unknown.
    pub fn attach_monitor(
        &mut self,
        connector: BrickId,
        monitor: impl ConnectorMonitor,
    ) -> Result<(), PrismError> {
        self.connector_slot_mut(connector)
            .ok_or(PrismError::UnknownBrick(connector))?
            .add_monitor(Box::new(monitor));
        Ok(())
    }

    /// Borrows a connector's monitor of concrete type `T`, if attached.
    pub fn monitor_ref<T: ConnectorMonitor>(&self, connector: BrickId) -> Option<&T> {
        self.connector_slot(connector)?
            .monitors()
            .iter()
            .find_map(|m| {
                let any: &dyn Any = m.as_ref();
                any.downcast_ref::<T>()
            })
    }

    /// Mutably borrows a connector's monitor of concrete type `T`.
    pub fn monitor_mut<T: ConnectorMonitor>(&mut self, connector: BrickId) -> Option<&mut T> {
        self.connector_slot_mut(connector)?
            .monitors_mut()
            .iter_mut()
            .find_map(|m| {
                let any: &mut dyn Any = m.as_mut();
                any.downcast_mut::<T>()
            })
    }

    // ---- introspection -------------------------------------------------------

    /// Returns `true` if a component with this instance name exists.
    pub fn contains_component(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// `(instance name, type name)` of every component, in name order.
    pub fn component_inventory(&self) -> Vec<(String, String)> {
        self.by_name
            .iter()
            .map(|(name, id)| {
                let slot = self.component_slot(*id).expect("maps in sync");
                (name.clone(), slot.behavior.type_name().to_owned())
            })
            .collect()
    }

    /// `(instance name, type name, state snapshot)` of every component, in
    /// name order, *without* detaching anything — the checkpoint path of the
    /// durable store and the state-equivalence witness of crash recovery.
    pub fn component_snapshots(&self) -> Vec<(String, String, Vec<u8>)> {
        self.by_name
            .iter()
            .map(|(name, id)| {
                let slot = self.component_slot(*id).expect("maps in sync");
                (
                    name.clone(),
                    slot.behavior.type_name().to_owned(),
                    slot.behavior.snapshot(),
                )
            })
            .collect()
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.by_name.len()
    }

    /// Number of connectors.
    pub fn connector_count(&self) -> usize {
        self.connectors.iter().flatten().count()
    }

    /// Borrows a component downcast to its concrete type.
    pub fn component_ref<T: ComponentBehavior>(&self, name: &str) -> Option<&T> {
        let id = *self.by_name.get(name)?;
        let any: &dyn Any = self.component_slot(id)?.behavior.as_ref();
        any.downcast_ref::<T>()
    }

    /// Mutably borrows a component downcast to its concrete type.
    pub fn component_mut<T: ComponentBehavior>(&mut self, name: &str) -> Option<&mut T> {
        let id = *self.by_name.get(name)?;
        let any: &mut dyn Any = self.component_slot_mut(id)?.behavior.as_mut();
        any.downcast_mut::<T>()
    }

    // ---- event flow -----------------------------------------------------------

    /// Queues an event for direct delivery to the named component (used for
    /// events arriving from other hosts and for external injection).
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::UnknownComponent`] when no such component is
    /// currently attached — the caller (host runtime) buffers such events
    /// during migrations.
    pub fn publish(&mut self, to_component: &str, event: Event) -> Result<(), PrismError> {
        let id = self
            .by_name
            .get(to_component)
            .ok_or_else(|| PrismError::UnknownComponent(to_component.to_owned()))?;
        self.queue.push_back(Delivery::Handle(*id, Arc::new(event)));
        Ok(())
    }

    /// Queues a timer expiry for the named component.
    ///
    /// # Errors
    ///
    /// Returns [`PrismError::UnknownComponent`] when the component has left
    /// this architecture (e.g. it migrated away after arming the timer).
    pub fn deliver_timer(&mut self, component: &str, token: u64) -> Result<(), PrismError> {
        let id = self
            .by_name
            .get(component)
            .ok_or_else(|| PrismError::UnknownComponent(component.to_owned()))?;
        self.queue.push_back(Delivery::Timer(*id, token));
        Ok(())
    }

    /// Routes an emission from `src` through all its welded connectors,
    /// notifying monitors per delivery.
    ///
    /// Hot path: names are `Copy` symbols, recipient lists reuse persistent
    /// scratch buffers, and the event is `Arc`-shared across recipients
    /// instead of deep-cloned per hop (a single-recipient delivery moves the
    /// sole reference).
    fn route_emission(&mut self, src: BrickId, event: Event) {
        let src_name = match self.component_slot(src) {
            Some(s) => s.name,
            None => return, // emitter detached mid-pump
        };
        let now = self.now;
        let event = Arc::new(event);
        let mut welded = std::mem::take(&mut self.welded_scratch);
        welded.clear();
        welded.extend(
            self.component_slot(src)
                .expect("checked above")
                .welded
                .iter()
                .copied(),
        );
        let mut recipients = std::mem::take(&mut self.route_scratch);
        recipients.clear();
        for &conn_id in &welded {
            let start = recipients.len();
            {
                let Some(conn) = self.connector_slot(conn_id) else {
                    continue;
                };
                for dst in conn.attached() {
                    if dst == src {
                        continue;
                    }
                    if let Some(slot) = self.component_slot(dst) {
                        recipients.push((dst, slot.name));
                    }
                }
            }
            if let Some(conn) = self.connector_slot_mut(conn_id) {
                for &(_, dst_name) in &recipients[start..] {
                    for m in conn.monitors_mut() {
                        m.observe(src_name.as_str(), dst_name.as_str(), &event, now);
                    }
                }
            }
        }
        for &(dst, _) in &recipients {
            self.queue
                .push_back(Delivery::Handle(dst, Arc::clone(&event)));
        }
        recipients.clear();
        self.route_scratch = recipients;
        self.welded_scratch = welded;
    }

    /// Drains the delivery queue, running component callbacks. Returns the
    /// number of deliveries processed.
    ///
    /// `now` stamps the contexts handed to components (and monitors).
    pub fn pump(&mut self, now: SimTime) -> u64 {
        self.now = now;
        let mut processed = 0;
        while let Some(delivery) = self.queue.pop_front() {
            processed += 1;
            self.events_processed += 1;
            type Work = Box<dyn FnOnce(&mut dyn ComponentBehavior, &mut ComponentCtx<'_>)>;
            let (id, work): (BrickId, Work) = match delivery {
                Delivery::Attach(id) => (id, Box::new(|b, ctx| b.on_attach(ctx))),
                Delivery::Handle(id, event) => (id, Box::new(move |b, ctx| b.handle(ctx, &event))),
                Delivery::Timer(id, token) => (id, Box::new(move |b, ctx| b.on_timer(ctx, token))),
            };
            let Some(mut slot) = self
                .components
                .get_mut(id.raw() as usize)
                .and_then(Option::take)
            else {
                continue; // component detached while the delivery was queued
            };
            let mut actions = std::mem::take(&mut self.scratch);
            actions.clear();
            {
                let mut ctx = ComponentCtx::new(slot.name, self.host, now, &mut actions);
                work(slot.behavior.as_mut(), &mut ctx);
            }
            let name = slot.name;
            self.components[id.raw() as usize] = Some(slot);
            for action in actions.drain(..) {
                match action {
                    ComponentAction::Emit(event) => self.route_emission(id, event),
                    ComponentAction::SendRemote {
                        host,
                        to_component,
                        event,
                    } => self.host_actions.push(HostAction::SendRemote {
                        host,
                        to_component,
                        event,
                    }),
                    ComponentAction::SendNamed {
                        to_component,
                        event,
                    } => self.host_actions.push(HostAction::SendNamed {
                        to_component,
                        event,
                    }),
                    ComponentAction::SetTimer { delay, token } => {
                        self.host_actions.push(HostAction::SetTimer {
                            component: name,
                            delay,
                            token,
                        })
                    }
                }
            }
            self.scratch = actions;
        }
        processed
    }

    /// Takes the host-level effects accumulated by pumping.
    pub(crate) fn take_host_actions(&mut self) -> Vec<HostAction> {
        std::mem::take(&mut self.host_actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::EventFrequencyMonitor;

    /// Records received event names; re-emits events named "relay me".
    #[derive(Default)]
    struct Recorder {
        seen: Vec<String>,
        attached: u32,
    }
    impl ComponentBehavior for Recorder {
        fn type_name(&self) -> &str {
            "recorder"
        }
        fn on_attach(&mut self, _ctx: &mut ComponentCtx<'_>) {
            self.attached += 1;
        }
        fn handle(&mut self, ctx: &mut ComponentCtx<'_>, event: &Event) {
            self.seen.push(event.name().to_owned());
            if event.name() == "relay me" {
                ctx.emit(Event::notification("relayed"));
            }
        }
        fn snapshot(&self) -> Vec<u8> {
            self.seen.join(",").into_bytes()
        }
    }

    fn arch() -> Architecture {
        Architecture::new("test", HostId::new(0))
    }

    #[test]
    fn on_attach_runs_at_first_pump() {
        let mut a = arch();
        a.add_component("r", Recorder::default()).unwrap();
        assert_eq!(a.component_ref::<Recorder>("r").unwrap().attached, 0);
        a.pump(SimTime::ZERO);
        assert_eq!(a.component_ref::<Recorder>("r").unwrap().attached, 1);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut a = arch();
        a.add_component("r", Recorder::default()).unwrap();
        assert!(matches!(
            a.add_component("r", Recorder::default()),
            Err(PrismError::DuplicateComponent(_))
        ));
    }

    #[test]
    fn connector_routes_to_all_other_attached() {
        let mut a = arch();
        let x = a.add_component("x", Recorder::default()).unwrap();
        let y = a.add_component("y", Recorder::default()).unwrap();
        let z = a.add_component("z", Recorder::default()).unwrap();
        let bus = a.add_connector("bus");
        a.weld(x, bus).unwrap();
        a.weld(y, bus).unwrap();
        a.weld(z, bus).unwrap();
        a.publish("x", Event::notification("relay me")).unwrap();
        a.pump(SimTime::ZERO);
        // x received "relay me" and emitted "relayed" to y and z only.
        assert_eq!(a.component_ref::<Recorder>("x").unwrap().seen, ["relay me"]);
        assert_eq!(a.component_ref::<Recorder>("y").unwrap().seen, ["relayed"]);
        assert_eq!(a.component_ref::<Recorder>("z").unwrap().seen, ["relayed"]);
    }

    #[test]
    fn unwelded_component_receives_nothing() {
        let mut a = arch();
        let x = a.add_component("x", Recorder::default()).unwrap();
        let y = a.add_component("y", Recorder::default()).unwrap();
        let bus = a.add_connector("bus");
        a.weld(x, bus).unwrap();
        a.weld(y, bus).unwrap();
        a.unweld(y, bus).unwrap();
        a.publish("x", Event::notification("relay me")).unwrap();
        a.pump(SimTime::ZERO);
        assert!(a.component_ref::<Recorder>("y").unwrap().seen.is_empty());
    }

    #[test]
    fn weld_requires_component_and_connector() {
        let mut a = arch();
        let x = a.add_component("x", Recorder::default()).unwrap();
        let y = a.add_component("y", Recorder::default()).unwrap();
        assert!(matches!(a.weld(x, y), Err(PrismError::InvalidWeld(_, _))));
        let bus = a.add_connector("bus");
        assert!(matches!(a.weld(bus, x), Err(PrismError::InvalidWeld(_, _))));
    }

    #[test]
    fn publish_to_unknown_component_errors() {
        let mut a = arch();
        assert!(matches!(
            a.publish("ghost", Event::notification("n")),
            Err(PrismError::UnknownComponent(_))
        ));
    }

    #[test]
    fn detach_returns_type_and_snapshot_and_stops_delivery() {
        let mut a = arch();
        let x = a.add_component("x", Recorder::default()).unwrap();
        let y = a.add_component("y", Recorder::default()).unwrap();
        let bus = a.add_connector("bus");
        a.weld(x, bus).unwrap();
        a.weld(y, bus).unwrap();
        a.publish("y", Event::notification("first")).unwrap();
        a.pump(SimTime::ZERO);

        let (ty, state) = a.detach_component("y").unwrap();
        assert_eq!(ty, "recorder");
        assert_eq!(state, b"first");
        assert!(!a.contains_component("y"));
        // Emissions no longer reach the detached component.
        a.publish("x", Event::notification("relay me")).unwrap();
        a.pump(SimTime::ZERO);
        assert_eq!(a.component_count(), 1);
    }

    #[test]
    fn queued_deliveries_for_detached_component_are_dropped() {
        let mut a = arch();
        a.add_component("x", Recorder::default()).unwrap();
        a.publish("x", Event::notification("n")).unwrap();
        a.detach_component("x").unwrap();
        assert_eq!(a.pump(SimTime::ZERO), 0);
    }

    #[test]
    fn timer_delivery_reaches_component() {
        #[derive(Default)]
        struct TimerSink {
            tokens: Vec<u64>,
        }
        impl ComponentBehavior for TimerSink {
            fn type_name(&self) -> &str {
                "timer-sink"
            }
            fn on_timer(&mut self, _ctx: &mut ComponentCtx<'_>, token: u64) {
                self.tokens.push(token);
            }
        }
        let mut a = arch();
        a.add_component("t", TimerSink::default()).unwrap();
        a.deliver_timer("t", 9).unwrap();
        a.pump(SimTime::ZERO);
        assert_eq!(a.component_ref::<TimerSink>("t").unwrap().tokens, [9]);
    }

    #[test]
    fn remote_sends_surface_as_host_actions() {
        struct RemoteCaller;
        impl ComponentBehavior for RemoteCaller {
            fn type_name(&self) -> &str {
                "remote-caller"
            }
            fn on_attach(&mut self, ctx: &mut ComponentCtx<'_>) {
                ctx.send_remote(HostId::new(7), "peer", Event::request("hi"));
            }
        }
        let mut a = arch();
        a.add_component("rc", RemoteCaller).unwrap();
        a.pump(SimTime::ZERO);
        let actions = a.take_host_actions();
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            HostAction::SendRemote {
                host,
                to_component,
                event,
            } => {
                assert_eq!(*host, HostId::new(7));
                assert_eq!(to_component, "peer");
                assert_eq!(event.name(), "hi");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Actions are drained.
        assert!(a.take_host_actions().is_empty());
    }

    #[test]
    fn frequency_monitor_sees_connector_traffic() {
        let mut a = arch();
        let x = a.add_component("x", Recorder::default()).unwrap();
        let y = a.add_component("y", Recorder::default()).unwrap();
        let bus = a.add_connector("bus");
        a.weld(x, bus).unwrap();
        a.weld(y, bus).unwrap();
        a.attach_monitor(
            bus,
            EventFrequencyMonitor::new(Duration::from_secs_f64(1.0)),
        )
        .unwrap();
        a.publish("x", Event::notification("relay me")).unwrap();
        a.pump(SimTime::ZERO);
        let m = a.monitor_mut::<EventFrequencyMonitor>(bus).unwrap();
        let w = m.roll_window(SimTime::from_secs_f64(1.0));
        assert!(w.frequency("x", "y") > 0.0);
    }

    #[test]
    fn inventory_lists_components_in_name_order() {
        let mut a = arch();
        a.add_component("zeta", Recorder::default()).unwrap();
        a.add_component("alpha", Recorder::default()).unwrap();
        let inv = a.component_inventory();
        assert_eq!(
            inv,
            vec![
                ("alpha".to_owned(), "recorder".to_owned()),
                ("zeta".to_owned(), "recorder".to_owned())
            ]
        );
    }
}
